//! HDFS audit-log text format — emit and parse logs shaped like the
//! `ydata-hdfs-audit-logs-v1_0` data set the paper analyzed.
//!
//! Real HDFS name nodes log one line per metadata operation:
//!
//! ```text
//! 2010-01-11 00:03:17,123 INFO FSNamesystem.audit: ugi=griduser ip=/10.1.2.3 cmd=open src=/data/part-0042 dst=null perm=null
//! ```
//!
//! [`to_log`] renders a synthetic [`AccessLog`] in that shape (`cmd=create`
//! for file creations — annotated with a `blocks=N` field standing in for
//! the fsimage block counts the paper joined in — and `cmd=open` for
//! reads). [`parse_log`] inverts it, so the Section III analysis pipeline
//! can be pointed at *real* audit logs too. System files (`job.jar`,
//! `job.xml`, `job.split`) are recognized **by path**, exactly the
//! exclusion methodology the paper describes.

use crate::yahoo::{AccessEvent, AccessLog, AccessPattern, LogFile};
use dare_simcore::SimTime;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render a timestamp as the audit-log clock (day offset from epoch 0).
fn fmt_time(t: SimTime) -> String {
    let total_ms = t.as_micros() / 1_000;
    let (ms, total_s) = (total_ms % 1_000, total_ms / 1_000);
    let (s, total_m) = (total_s % 60, total_s / 60);
    let (m, total_h) = (total_m % 60, total_m / 60);
    let (h, d) = (total_h % 24, total_h / 24);
    format!("2010-01-{:02} {h:02}:{m:02}:{s:02},{ms:03}", 11 + d)
}

/// Parse the audit-log clock back into simulated time.
fn parse_time(date: &str, clock: &str) -> Result<SimTime, String> {
    let day: u64 = date
        .rsplit('-')
        .next()
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("bad date {date}"))?;
    let (hms, ms) = clock
        .split_once(',')
        .ok_or_else(|| format!("bad clock {clock}"))?;
    let parts: Vec<&str> = hms.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("bad clock {clock}"));
    }
    let h: u64 = parts[0].parse().map_err(|_| "bad hour")?;
    let m: u64 = parts[1].parse().map_err(|_| "bad minute")?;
    let s: u64 = parts[2].parse().map_err(|_| "bad second")?;
    let ms: u64 = ms.parse().map_err(|_| "bad millis")?;
    let days = day.checked_sub(11).ok_or("date before epoch")?;
    Ok(SimTime::from_micros(
        (((days * 24 + h) * 60 + m) * 60 + s) * 1_000_000 + ms * 1_000,
    ))
}

/// Path used for a file in the rendered log.
fn path_of(f: &LogFile) -> String {
    if f.is_system {
        // Trios of framework files per job: jar/xml/split round-robin.
        let kind = ["job.jar", "job.xml", "job.split"][(f.id % 3) as usize];
        format!("/mapredsystem/job_{:06}/{kind}", f.id / 3)
    } else {
        format!("/data/part-{:05}", f.id)
    }
}

/// True when a path denotes a framework (system) file — the paper's
/// exclusion rule.
pub fn is_system_path(path: &str) -> bool {
    path.ends_with("job.jar") || path.ends_with("job.xml") || path.ends_with("job.split")
}

/// Render an [`AccessLog`] as audit-log text (create lines first at their
/// creation times, then opens, all in timestamp order).
pub fn to_log(log: &AccessLog) -> String {
    #[derive(Clone)]
    enum Line {
        Create { t: SimTime, file: u32 },
        Open { t: SimTime, file: u32 },
    }
    let mut lines: Vec<Line> = Vec::with_capacity(log.files.len() + log.events.len());
    for f in &log.files {
        lines.push(Line::Create {
            t: f.created,
            file: f.id,
        });
    }
    for e in &log.events {
        lines.push(Line::Open {
            t: e.time,
            file: e.file,
        });
    }
    lines.sort_by_key(|l| match l {
        Line::Create { t, file } => (*t, 0u8, *file),
        Line::Open { t, file } => (*t, 1, *file),
    });

    let mut out = String::new();
    for l in lines {
        match l {
            Line::Create { t, file } => {
                let f = &log.files[file as usize];
                let _ = writeln!(
                    out,
                    "{} INFO FSNamesystem.audit: ugi=griduser ip=/10.0.0.1 cmd=create src={} dst=null perm=rw-r--r-- blocks={}",
                    fmt_time(t),
                    path_of(f),
                    f.num_blocks
                );
            }
            Line::Open { t, file } => {
                let f = &log.files[file as usize];
                let _ = writeln!(
                    out,
                    "{} INFO FSNamesystem.audit: ugi=griduser ip=/10.0.0.1 cmd=open src={} dst=null perm=null",
                    fmt_time(t),
                    path_of(f)
                );
            }
        }
    }
    out
}

/// Parse audit-log text back into an [`AccessLog`].
///
/// Files are keyed by `src` path; `cmd=create` lines establish creation
/// time and block count (defaulting to 1 when the annotation is absent,
/// as with real logs lacking the fsimage join); files first seen via
/// `cmd=open` get their creation time from that first open. System files
/// are detected by path. Unknown commands are ignored (real logs carry
/// mkdirs/listStatus/... noise).
pub fn parse_log(text: &str) -> Result<AccessLog, String> {
    let mut by_path: HashMap<String, u32> = HashMap::new();
    let mut files: Vec<LogFile> = Vec::new();
    let mut events: Vec<AccessEvent> = Vec::new();
    let mut max_t = SimTime::ZERO;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let ctx = |m: &str| format!("line {}: {m}", lineno + 1);
        let mut tokens = line.split_whitespace();
        let date = tokens.next().ok_or_else(|| ctx("missing date"))?;
        let clock = tokens.next().ok_or_else(|| ctx("missing time"))?;
        let t = parse_time(date, clock).map_err(|e| ctx(&e))?;

        let mut cmd = None;
        let mut src = None;
        let mut blocks = 1u32;
        for tok in tokens {
            if let Some(v) = tok.strip_prefix("cmd=") {
                cmd = Some(v);
            } else if let Some(v) = tok.strip_prefix("src=") {
                src = Some(v);
            } else if let Some(v) = tok.strip_prefix("blocks=") {
                blocks = v.parse().map_err(|_| ctx("bad blocks="))?;
            }
        }
        let (Some(cmd), Some(src)) = (cmd, src) else {
            continue; // not an audit record we care about
        };
        max_t = max_t.max(t);

        match cmd {
            "create" => {
                let id = *by_path.entry(src.to_string()).or_insert_with(|| {
                    let id = files.len() as u32;
                    files.push(LogFile {
                        id,
                        created: t,
                        num_blocks: blocks,
                        is_system: is_system_path(src),
                        pattern: AccessPattern::Spread,
                    });
                    id
                });
                // A later create of a known path refreshes metadata
                // (overwrite semantics).
                let f = &mut files[id as usize];
                f.created = f.created.min(t);
                f.num_blocks = blocks;
            }
            "open" => {
                let id = *by_path.entry(src.to_string()).or_insert_with(|| {
                    let id = files.len() as u32;
                    files.push(LogFile {
                        id,
                        created: t, // first sighting stands in for creation
                        num_blocks: blocks,
                        is_system: is_system_path(src),
                        pattern: AccessPattern::Spread,
                    });
                    id
                });
                events.push(AccessEvent { time: t, file: id });
            }
            _ => {} // mkdirs, listStatus, delete, ... — ignored
        }
    }

    events.sort_by_key(|e| (e.time, e.file));
    let window_hours = (max_t.as_hours_f64().ceil() as u64).max(1);
    Ok(AccessLog {
        files,
        events,
        window_hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{age_at_access_cdf, rank_frequency, AnalysisOpts};
    use crate::yahoo::{generate, YahooParams};

    fn small() -> AccessLog {
        generate(
            &YahooParams {
                files: 100,
                total_accesses: 5_000,
                system_jobs: 20,
                ..YahooParams::default()
            },
            13,
        )
    }

    #[test]
    fn time_format_round_trips() {
        for us in [0u64, 999_000, 59_999_000, 3_600_000_000, 90_061_123_000] {
            let t = SimTime::from_micros(us);
            let s = fmt_time(t);
            let (date, rest) = s.split_once(' ').expect("two fields");
            let back = parse_time(date, rest).expect("parses");
            // millisecond resolution round trip
            assert_eq!(back.as_micros() / 1_000, us / 1_000, "for {s}");
        }
    }

    #[test]
    fn log_round_trip_preserves_analysis_results() {
        let log = small();
        let text = to_log(&log);
        assert!(text.contains("cmd=open"));
        assert!(text.contains("cmd=create"));
        assert!(text.contains("job.jar"));
        let back = parse_log(&text).expect("parses");

        assert_eq!(back.events.len(), log.events.len());
        assert_eq!(back.files.len(), log.files.len());
        assert_eq!(back.num_data_files(), log.num_data_files());

        // The Section III analyses agree between original and round trip.
        let rf_a = rank_frequency(&log, AnalysisOpts::default());
        let rf_b = rank_frequency(&back, AnalysisOpts::default());
        assert_eq!(rf_a.len(), rf_b.len());
        for (a, b) in rf_a.iter().zip(&rf_b) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
        let cdf_a = age_at_access_cdf(&log, true);
        let cdf_b = age_at_access_cdf(&back, true);
        assert!((cdf_a.inverse(0.5) - cdf_b.inverse(0.5)).abs() < 0.01);
    }

    #[test]
    fn system_files_detected_by_path() {
        assert!(is_system_path("/mapredsystem/job_000001/job.jar"));
        assert!(is_system_path("/x/job.xml"));
        assert!(is_system_path("/x/job.split"));
        assert!(!is_system_path("/data/part-00001"));
        assert!(!is_system_path("/x/jobs.log"));
    }

    #[test]
    fn parser_tolerates_foreign_records_and_noise() {
        let text = "\
2010-01-11 00:00:01,000 INFO FSNamesystem.audit: ugi=u ip=/1 cmd=mkdirs src=/tmp dst=null perm=rwx
2010-01-11 00:00:02,000 INFO FSNamesystem.audit: ugi=u ip=/1 cmd=create src=/data/a dst=null perm=rw blocks=3

2010-01-11 00:00:03,000 INFO FSNamesystem.audit: ugi=u ip=/1 cmd=open src=/data/a dst=null perm=null
2010-01-11 00:00:04,000 INFO FSNamesystem.audit: ugi=u ip=/1 cmd=listStatus src=/data dst=null perm=null
2010-01-12 05:00:00,000 INFO FSNamesystem.audit: ugi=u ip=/1 cmd=open src=/data/b dst=null perm=null
";
        let log = parse_log(text).expect("parses");
        assert_eq!(log.files.len(), 2);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.files[0].num_blocks, 3);
        // /data/b first seen at open: creation = first open.
        assert_eq!(log.files[1].created, log.events[1].time);
        assert_eq!(log.window_hours, 29);
    }

    #[test]
    fn parser_rejects_garbage_timestamps() {
        assert!(parse_log("not-a-date xx INFO cmd=open src=/a").is_err());
        assert!(parse_log("2010-01-11 99:99 INFO cmd=open src=/a").is_err());
    }
}

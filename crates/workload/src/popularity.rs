//! The experiment file-access distribution (Fig. 6).
//!
//! Fig. 6 plots the CDF of the access probability over file ranks used in
//! the Section V experiments: heavy-tailed over ~128 files, with the top
//! 20 files drawing roughly half the accesses. A Zipf law over 128 ranks
//! with exponent ≈ 0.9 reproduces that curve; the exponent and population
//! are configurable so sensitivity studies can stress flatter or steeper
//! skews.

use dare_simcore::dist::Zipf;
use dare_simcore::DetRng;

/// Access-popularity model over a ranked file population.
#[derive(Debug, Clone)]
pub struct FilePopularity {
    zipf: Zipf,
}

impl FilePopularity {
    /// Population of `files` ranks with Zipf exponent `s`.
    pub fn new(files: usize, s: f64) -> Self {
        FilePopularity {
            zipf: Zipf::new(files, s),
        }
    }

    /// The distribution used in the paper's experiments (Fig. 6):
    /// 128 files, exponent 0.9.
    pub fn experiment() -> Self {
        Self::new(128, 0.9)
    }

    /// Number of files in the population.
    pub fn files(&self) -> usize {
        self.zipf.n()
    }

    /// Probability that an access hits the rank-`k` file (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        self.zipf.pmf(k)
    }

    /// Cumulative probability over ranks `1..=k` — the Fig. 6 curve.
    pub fn cdf(&self, k: usize) -> f64 {
        self.zipf.cdf(k)
    }

    /// Draw the rank of the file the next access hits (1-based).
    pub fn sample_rank(&self, rng: &mut DetRng) -> usize {
        self.zipf.sample(rng)
    }

    /// The full `(rank, cdf)` series, ready for the fig6 harness.
    pub fn cdf_series(&self) -> Vec<(usize, f64)> {
        (1..=self.files()).map(|k| (k, self.cdf(k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_curve_matches_fig6_shape() {
        let p = FilePopularity::experiment();
        assert_eq!(p.files(), 128);
        // Fig. 6 anchor points (eyeballed from the plot, generous bands):
        // top-20 files ≈ half the mass, top-80 ≈ 85-95 %.
        let c20 = p.cdf(20);
        let c80 = p.cdf(80);
        assert!((0.40..=0.65).contains(&c20), "cdf(20) = {c20}");
        assert!((0.80..=0.95).contains(&c80), "cdf(80) = {c80}");
        assert!((p.cdf(128) - 1.0).abs() < 1e-12);
        // Heavy tail: the most popular file gets many times the median
        // file's mass.
        assert!(p.pmf(1) > 10.0 * p.pmf(64));
    }

    #[test]
    fn sampling_matches_cdf() {
        let p = FilePopularity::experiment();
        let mut rng = DetRng::new(8);
        let n = 100_000;
        let hits_top20 = (0..n)
            .filter(|_| p.sample_rank(&mut rng) <= 20)
            .count();
        let frac = hits_top20 as f64 / n as f64;
        assert!((frac - p.cdf(20)).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn cdf_series_is_monotone() {
        let p = FilePopularity::new(50, 1.2);
        let s = p.cdf_series();
        assert_eq!(s.len(), 50);
        for w in s.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }
}

//! SWIM-style synthesis of the two Facebook workloads (Section V-A).
//!
//! The paper replays 500-job slices of a Facebook 600-machine trace using
//! SWIM (Chen et al., MASCOTS 2011):
//!
//! * **wl1** (trace jobs 0-499): "a long sequence of small jobs" — small
//!   variance in job sizes, which favours FIFO;
//! * **wl2** (trace jobs 4800-5299): "a pattern of small jobs after large
//!   jobs" — periodic whale jobs whose head-of-line blocking favours the
//!   Fair scheduler.
//!
//! The synthesizer reproduces the three properties the evaluation actually
//! exercises: the job-size mix, Poisson-ish arrivals, and file popularity
//! following the Fig. 6 CDF. Jobs read whole files (one map per block), so
//! repeated accesses to a popular file are exactly the concurrent-hotspot
//! pattern DARE exploits.

use crate::popularity::FilePopularity;
use crate::spec::{FileSpec, JobSpec, Workload};
use dare_simcore::dist::{Exponential, LogNormal};
use dare_simcore::{DetRng, SimDuration, SimTime};

/// Tunables for the SWIM synthesizer.
#[derive(Debug, Clone)]
pub struct SwimParams {
    /// Jobs to generate (paper: 500).
    pub jobs: u32,
    /// Distinct data files (Fig. 6: ~128).
    pub files: usize,
    /// Zipf exponent of the file-popularity law.
    pub zipf_s: f64,
    /// Mean job inter-arrival time, seconds (exponential).
    pub mean_interarrival_secs: f64,
    /// Block size used to express file sizes in blocks.
    pub block_size: u64,
    /// Median small-file size in blocks (lognormal).
    pub small_blocks_median: f64,
    /// Log-space spread of small-file sizes.
    pub small_blocks_sigma: f64,
    /// Cap on small-file size, blocks.
    pub small_blocks_max: u64,
    /// Every `big_every`-th job reads a big file (0 disables big jobs).
    pub big_every: u32,
    /// Big-file size range in blocks (uniform).
    pub big_blocks: (u64, u64),
    /// Fraction of the file population designated big (wl2 only).
    pub big_file_frac: f64,
    /// Median per-task map compute time, seconds (lognormal per job).
    pub map_compute_median_secs: f64,
    /// Log-space spread of map compute time.
    pub map_compute_sigma: f64,
    /// Median output/input ratio (lognormal per job).
    pub output_ratio_median: f64,
    /// Temporal access correlation (Section III: "different types of
    /// analysis on a common time-varying data set", with most of a file's
    /// accesses inside a one-hour window): the trace proceeds in *phases*
    /// of `phase_jobs` jobs; each phase draws `focal_per_phase` focal files
    /// from the popularity law, and every non-whale job reads a focal file
    /// with probability `focal_prob` (else a fresh popularity draw).
    pub phase_jobs: u32,
    /// Concurrently hot files per phase.
    pub focal_per_phase: usize,
    /// Probability a job reads one of the phase's focal files.
    pub focal_prob: f64,
}

impl SwimParams {
    /// Parameters of **wl1**: 500 small jobs, no whales.
    pub fn wl1() -> Self {
        SwimParams {
            jobs: 500,
            files: 128,
            zipf_s: 1.1,
            mean_interarrival_secs: 0.7,
            block_size: 128 * dare_net_mb(),
            small_blocks_median: 1.5,
            small_blocks_sigma: 0.8,
            small_blocks_max: 6,
            big_every: 0,
            big_blocks: (0, 0),
            big_file_frac: 0.0,
            map_compute_median_secs: 3.0,
            map_compute_sigma: 0.5,
            output_ratio_median: 0.3,
            phase_jobs: 170,
            focal_per_phase: 2,
            focal_prob: 0.8,
        }
    }

    /// Parameters of **wl2**: small jobs punctuated by whales every 25 jobs.
    pub fn wl2() -> Self {
        SwimParams {
            big_every: 25,
            big_blocks: (30, 60),
            big_file_frac: 0.08,
            ..Self::wl1()
        }
    }
}

/// `dare_net::MB` without taking a crate dependency for one constant.
const fn dare_net_mb() -> u64 {
    1 << 20
}

/// Synthesize a workload from `params` with deterministic `seed`.
pub fn synthesize(name: &str, params: &SwimParams, seed: u64) -> Workload {
    assert!(params.jobs > 0 && params.files > 0);
    let root = DetRng::new(seed);
    let mut size_rng = root.substream("swim-file-sizes");
    let mut pick_rng = root.substream("swim-file-pick");
    let mut arr_rng = root.substream("swim-arrivals");
    let mut job_rng = root.substream("swim-job-shape");

    // Which popularity ranks are big files (wl2): spread through the middle
    // of the popularity order so whales are popular enough to recur but do
    // not dominate the access stream.
    let num_big = ((params.files as f64) * params.big_file_frac).round() as usize;
    let big_ranks: Vec<usize> = if num_big == 0 {
        Vec::new()
    } else {
        // ranks 4, 4+stride, ... (1-based ranks)
        let stride = params.files.checked_div(num_big).unwrap_or(0).max(1);
        (0..num_big).map(|i| 4 + i * stride).map(|r| r.min(params.files)).collect()
    };

    let small_size = LogNormal::from_median(params.small_blocks_median, params.small_blocks_sigma);
    let files: Vec<FileSpec> = (1..=params.files)
        .map(|rank| {
            let blocks = if big_ranks.contains(&rank) {
                let (lo, hi) = params.big_blocks;
                lo + (size_rng.uniform() * (hi - lo + 1) as f64) as u64
            } else {
                (small_size.sample(&mut size_rng).round() as u64)
                    .clamp(1, params.small_blocks_max)
            };
            FileSpec {
                name: format!("data/f{rank:04}"),
                size_bytes: blocks * params.block_size,
            }
        })
        .collect();

    let pop = FilePopularity::new(params.files, params.zipf_s);
    let interarrival = Exponential::from_mean(params.mean_interarrival_secs);
    let compute = LogNormal::from_median(params.map_compute_median_secs, params.map_compute_sigma);
    let out_ratio = LogNormal::from_median(params.output_ratio_median, 0.8);

    // A fresh popularity draw that avoids the whale files.
    let fresh_small = |rng: &mut DetRng| {
        let mut r = pop.sample_rank(rng);
        let mut guard = 0;
        while big_ranks.contains(&r) && guard < 64 {
            r = pop.sample_rank(rng);
            guard += 1;
        }
        r
    };

    let mut jobs = Vec::with_capacity(params.jobs as usize);
    let mut t = 0.0_f64;
    let mut focal: Vec<usize> = Vec::new();
    for id in 0..params.jobs {
        t += interarrival.sample(&mut arr_rng);
        // Phase boundary: rotate the focal (currently hot) files.
        if id % params.phase_jobs.max(1) == 0 {
            focal.clear();
            for _ in 0..params.focal_per_phase {
                focal.push(fresh_small(&mut pick_rng));
            }
        }
        let is_big = params.big_every > 0 && !big_ranks.is_empty() && id % params.big_every == params.big_every - 1;
        let file_rank = if is_big {
            big_ranks[pick_rng.index(big_ranks.len())]
        } else if !focal.is_empty() && pick_rng.coin(params.focal_prob) {
            focal[pick_rng.index(focal.len())]
        } else {
            fresh_small(&mut pick_rng)
        };
        let file = file_rank - 1; // rank is 1-based, index 0-based
        let input_bytes = files[file].size_bytes;
        let maps = input_bytes.div_ceil(params.block_size);
        let map_compute = SimDuration::from_secs_f64(compute.sample(&mut job_rng).clamp(1.0, 300.0));
        let ratio = out_ratio.sample(&mut job_rng).min(2.0);
        let output_bytes = ((input_bytes as f64) * ratio) as u64;
        let reduces = (maps.div_ceil(8) as u32).clamp(1, 10);
        jobs.push(JobSpec {
            id,
            arrival: SimTime::from_secs_f64(t),
            file,
            map_compute,
            reduces,
            output_bytes,
        });
    }

    let w = Workload {
        name: name.to_string(),
        files,
        jobs,
    };
    w.validate().expect("synthesized workload is valid");
    w
}

/// Scale a parameter set to a different cluster size, the way SWIM scales
/// a trace before replay: job arrival rate grows with the slot count so
/// per-slot load stays constant (the paper replays the same 500 jobs on a
/// 19-worker and a 99-worker cluster; SWIM's methodology rescales
/// inter-arrivals by the cluster-size ratio).
pub fn scale_to_cluster(mut params: SwimParams, base_nodes: u32, target_nodes: u32) -> SwimParams {
    assert!(base_nodes > 0 && target_nodes > 0);
    params.mean_interarrival_secs *= base_nodes as f64 / target_nodes as f64;
    params
}

/// The paper's **wl1** (FIFO-friendly small-job stream).
pub fn wl1(seed: u64) -> Workload {
    synthesize("wl1", &SwimParams::wl1(), seed)
}

/// The paper's **wl2** (Fair-friendly small-after-large pattern).
pub fn wl2(seed: u64) -> Workload {
    synthesize("wl2", &SwimParams::wl2(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: u64 = 128 * (1 << 20);

    #[test]
    fn wl1_is_500_small_jobs() {
        let w = wl1(1);
        assert_eq!(w.num_jobs(), 500);
        assert_eq!(w.files.len(), 128);
        let max_maps = w
            .jobs
            .iter()
            .map(|j| w.maps_of(j, BS))
            .max()
            .expect("jobs exist");
        assert!(max_maps <= 6, "wl1 has no whales (max {max_maps})");
        assert!(w.validate().is_ok());
    }

    #[test]
    fn wl2_has_periodic_whales() {
        let w = wl2(1);
        assert_eq!(w.num_jobs(), 500);
        let whales: Vec<u64> = w
            .jobs
            .iter()
            .map(|j| w.maps_of(j, BS))
            .filter(|&m| m >= 30)
            .collect();
        assert_eq!(whales.len(), 20, "every 25th of 500 jobs is big");
        // Small jobs stay small.
        let smalls = w
            .jobs
            .iter()
            .map(|j| w.maps_of(j, BS))
            .filter(|&m| m <= 6)
            .count();
        assert_eq!(smalls, 480);
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let w = wl1(7);
        let mut counts = vec![0u32; w.files.len()];
        for j in &w.jobs {
            counts[j.file] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = sorted.iter().take(10).sum();
        assert!(
            top10 as f64 / 500.0 > 0.30,
            "top-10 files draw a big share: {top10}"
        );
        // and the tail exists
        assert!(sorted.iter().filter(|&&c| c == 0).count() > 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = wl2(99);
        let b = wl2(99);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.file, y.file);
            assert_eq!(x.map_compute, y.map_compute);
        }
        let c = wl2(100);
        assert!(
            a.jobs.iter().zip(&c.jobs).any(|(x, y)| x.file != y.file),
            "different seeds differ"
        );
    }

    #[test]
    fn arrivals_are_increasing_and_reasonable() {
        let w = wl1(3);
        let last = w.jobs.last().expect("jobs").arrival;
        let mean_gap = last.as_secs_f64() / 500.0;
        assert!(
            (0.4..1.4).contains(&mean_gap),
            "mean inter-arrival {mean_gap}s"
        );
    }

    #[test]
    fn scaling_preserves_per_slot_load() {
        let base = SwimParams::wl1();
        let scaled = scale_to_cluster(base.clone(), 19, 99);
        let ratio = base.mean_interarrival_secs / scaled.mean_interarrival_secs;
        assert!((ratio - 99.0 / 19.0).abs() < 1e-9);
        // Other knobs untouched.
        assert_eq!(scaled.jobs, base.jobs);
        assert_eq!(scaled.files, base.files);
    }

    #[test]
    fn compute_times_within_clamp() {
        let w = wl2(4);
        for j in &w.jobs {
            let s = j.map_compute.as_secs_f64();
            assert!((1.0..=300.0).contains(&s));
            assert!(j.reduces >= 1 && j.reduces <= 10);
        }
    }
}

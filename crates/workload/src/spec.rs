//! File and job specifications — the interface between workload synthesis
//! and the MapReduce simulator.

use dare_simcore::{SimDuration, SimTime};

/// A file in the simulated dataset (created during ingest, before jobs run).
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Path-like name.
    pub name: String,
    /// Logical size in bytes; the DFS splits it into blocks.
    pub size_bytes: u64,
}

/// One MapReduce job from the trace.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Dense id in submission order.
    pub id: u32,
    /// Submission time.
    pub arrival: SimTime,
    /// Index into [`Workload::files`] of the input file. The job runs one
    /// map task per block of that file.
    pub file: usize,
    /// Pure compute time of each map task (after its input is read).
    pub map_compute: SimDuration,
    /// Number of reduce tasks.
    pub reduces: u32,
    /// Total shuffle+output bytes the reduce phase handles.
    pub output_bytes: u64,
}

/// A full experiment workload: the dataset plus the job arrival sequence.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name ("wl1", "wl2", ...).
    pub name: String,
    /// Files ingested before the first job.
    pub files: Vec<FileSpec>,
    /// Jobs in submission order.
    pub jobs: Vec<JobSpec>,
}

impl Workload {
    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total input bytes summed over jobs (each job reads its whole file).
    pub fn total_input_bytes(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| self.files[j.file].size_bytes)
            .sum()
    }

    /// Total dataset size (single copy).
    pub fn dataset_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size_bytes).sum()
    }

    /// Map-task count of one job given the DFS block size.
    pub fn maps_of(&self, job: &JobSpec, block_size: u64) -> u64 {
        let sz = self.files[job.file].size_bytes;
        sz.div_ceil(block_size)
    }

    /// Sanity-check invariants (jobs sorted by arrival, indices in range).
    pub fn validate(&self) -> Result<(), String> {
        for w in self.jobs.windows(2) {
            if w[0].arrival > w[1].arrival {
                return Err(format!(
                    "jobs {} and {} out of arrival order",
                    w[0].id, w[1].id
                ));
            }
        }
        for j in &self.jobs {
            if j.file >= self.files.len() {
                return Err(format!("job {} reads unknown file {}", j.id, j.file));
            }
            if j.reduces == 0 {
                return Err(format!("job {} has zero reduces", j.id));
            }
        }
        if self.files.iter().any(|f| f.size_bytes == 0) {
            return Err("zero-sized file in dataset".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload {
            name: "t".into(),
            files: vec![
                FileSpec {
                    name: "a".into(),
                    size_bytes: 300,
                },
                FileSpec {
                    name: "b".into(),
                    size_bytes: 100,
                },
            ],
            jobs: vec![
                JobSpec {
                    id: 0,
                    arrival: SimTime::ZERO,
                    file: 0,
                    map_compute: SimDuration::from_secs(10),
                    reduces: 1,
                    output_bytes: 10,
                },
                JobSpec {
                    id: 1,
                    arrival: SimTime::from_secs(5),
                    file: 1,
                    map_compute: SimDuration::from_secs(10),
                    reduces: 1,
                    output_bytes: 10,
                },
            ],
        }
    }

    #[test]
    fn totals_and_maps() {
        let w = tiny();
        assert_eq!(w.num_jobs(), 2);
        assert_eq!(w.total_input_bytes(), 400);
        assert_eq!(w.dataset_bytes(), 400);
        assert_eq!(w.maps_of(&w.jobs[0], 128), 3);
        assert_eq!(w.maps_of(&w.jobs[1], 128), 1);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn validate_catches_out_of_order_arrivals() {
        let mut w = tiny();
        w.jobs[1].arrival = SimTime::ZERO;
        w.jobs[0].arrival = SimTime::from_secs(9);
        assert!(w.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_file_index() {
        let mut w = tiny();
        w.jobs[0].file = 99;
        assert!(w.validate().is_err());
    }
}

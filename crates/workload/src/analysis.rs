//! The Section III trace analyses: the exact computations behind Figs. 2-5,
//! runnable over any [`AccessLog`].

use crate::yahoo::AccessLog;
use dare_simcore::stats::{Ecdf, RankFrequency};

/// Options shared by the analyses.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOpts {
    /// Exclude system (job.jar/xml/split) files, as the paper does.
    pub exclude_system: bool,
    /// Weight each access by the file's block count (Fig. 2 bottom panel).
    pub weight_by_blocks: bool,
}

impl Default for AnalysisOpts {
    fn default() -> Self {
        AnalysisOpts {
            exclude_system: true,
            weight_by_blocks: false,
        }
    }
}

/// Fig. 2 — number of accesses per file vs popularity rank.
/// Returns `(rank, weight)` sorted by descending weight (rank is 1-based).
pub fn rank_frequency(log: &AccessLog, opts: AnalysisOpts) -> Vec<(usize, f64)> {
    let mut rf = RankFrequency::new();
    for e in &log.events {
        let f = &log.files[e.file as usize];
        if opts.exclude_system && f.is_system {
            continue;
        }
        let w = if opts.weight_by_blocks {
            f.num_blocks as f64
        } else {
            1.0
        };
        rf.add(e.file as u64, w);
    }
    rf.ranked()
}

/// Fig. 3 — empirical CDF of file age (hours) at time of access.
pub fn age_at_access_cdf(log: &AccessLog, exclude_system: bool) -> Ecdf {
    let ages: Vec<f64> = log
        .events
        .iter()
        .filter(|e| !(exclude_system && log.files[e.file as usize].is_system))
        .map(|e| {
            let f = &log.files[e.file as usize];
            e.time.saturating_since(f.created).as_hours_f64()
        })
        .collect();
    Ecdf::new(ages)
}

/// The per-file burst-window statistic behind Figs. 4-5: the smallest
/// number of consecutive one-hour slots containing at least `coverage`
/// (e.g. 0.8) of the file's accesses.
///
/// Returns `None` when the file had no accesses in the analysis range.
pub fn min_window_hours(access_hours: &[u64], total_slots: usize, coverage: f64) -> Option<usize> {
    if access_hours.is_empty() {
        return None;
    }
    let mut slots = vec![0u64; total_slots];
    for &h in access_hours {
        let idx = (h as usize).min(total_slots - 1);
        slots[idx] += 1;
    }
    let total: u64 = slots.iter().sum();
    let need = (coverage * total as f64).ceil() as u64;
    // Sliding window over slot counts, growing until some window qualifies.
    for w in 1..=total_slots {
        let mut sum: u64 = slots[..w].iter().sum();
        if sum >= need {
            return Some(w);
        }
        for start in 1..=(total_slots - w) {
            sum = sum - slots[start - 1] + slots[start + w - 1];
            if sum >= need {
                return Some(w);
            }
        }
    }
    Some(total_slots)
}

/// One point of the Figs. 4-5 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window size in hours.
    pub window_hours: usize,
    /// Fraction of (possibly weighted) big files whose minimal
    /// 80 %-coverage window is exactly this size.
    pub fraction: f64,
}

/// Figs. 4-5 — distribution of minimal 80 %-coverage window sizes over the
/// "big files" (the most-accessed files jointly covering ≥ 80 % of all
/// accesses), optionally restricted to one day and optionally weighted by
/// each file's access count.
pub fn burst_window_distribution(
    log: &AccessLog,
    coverage: f64,
    day: Option<u64>,
    weighted: bool,
) -> Vec<WindowPoint> {
    assert!((0.0..=1.0).contains(&coverage));
    // Collect per-file access hours (excluding system files; the paper does).
    let mut per_file: std::collections::BTreeMap<u32, Vec<u64>> = std::collections::BTreeMap::new();
    let (lo_h, hi_h) = match day {
        Some(d) => (d * 24, (d + 1) * 24),
        None => (0, log.window_hours),
    };
    for e in &log.events {
        let f = &log.files[e.file as usize];
        if f.is_system {
            continue;
        }
        let h = (e.time.as_secs_f64() / 3600.0) as u64;
        if h >= lo_h && h < hi_h {
            per_file.entry(e.file).or_default().push(h - lo_h);
        }
    }
    if per_file.is_empty() {
        return Vec::new();
    }

    // "Big files": most-accessed files covering >= 80% of total accesses.
    let mut by_count: Vec<(&u32, usize)> =
        per_file.iter().map(|(f, v)| (f, v.len())).collect();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let total: usize = by_count.iter().map(|(_, c)| c).sum();
    let mut acc = 0usize;
    let mut big: Vec<u32> = Vec::new();
    for (f, c) in by_count {
        if acc as f64 >= 0.8 * total as f64 {
            break;
        }
        acc += c;
        big.push(*f);
    }

    let slots = (hi_h - lo_h) as usize;
    let mut hist: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    let mut denom = 0.0;
    for f in big {
        let hours = &per_file[&f];
        if let Some(w) = min_window_hours(hours, slots, coverage) {
            let weight = if weighted { hours.len() as f64 } else { 1.0 };
            *hist.entry(w).or_insert(0.0) += weight;
            denom += weight;
        }
    }
    hist.into_iter()
        .map(|(w, cnt)| WindowPoint {
            window_hours: w,
            fraction: cnt / denom,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yahoo::{generate, YahooParams};

    fn log() -> AccessLog {
        generate(
            &YahooParams {
                files: 300,
                total_accesses: 30_000,
                system_jobs: 60,
                ..YahooParams::default()
            },
            11,
        )
    }

    #[test]
    fn min_window_basics() {
        // 10 accesses all in slot 3: window of 1 suffices.
        assert_eq!(min_window_hours(&[3; 10], 24, 0.8), Some(1));
        // Spread evenly over slots 0..10: need 8 slots for 80 % of 10.
        let hours: Vec<u64> = (0..10).collect();
        assert_eq!(min_window_hours(&hours, 24, 0.8), Some(8));
        // Empty: none.
        assert_eq!(min_window_hours(&[], 24, 0.8), None);
        // Single access: 1.
        assert_eq!(min_window_hours(&[23], 24, 0.8), Some(1));
        // Daily pattern across a week: 7 equal groups, 80 % needs 6 groups
        // => 5*24+1 = 121 slots.
        let daily: Vec<u64> = (0..7).map(|d| d * 24 + 9).collect();
        assert_eq!(min_window_hours(&daily, 168, 0.8), Some(121));
    }

    #[test]
    fn rank_frequency_is_descending_and_excludes_system() {
        let l = log();
        let rf = rank_frequency(&l, AnalysisOpts::default());
        assert!(!rf.is_empty());
        for w in rf.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // system files have huge counts; including them inflates rank 1
        let with_sys = rank_frequency(
            &l,
            AnalysisOpts {
                exclude_system: false,
                ..Default::default()
            },
        );
        assert!(with_sys.len() > rf.len());
    }

    #[test]
    fn weighted_rank_frequency_differs() {
        let l = log();
        let plain = rank_frequency(&l, AnalysisOpts::default());
        let weighted = rank_frequency(
            &l,
            AnalysisOpts {
                weight_by_blocks: true,
                ..Default::default()
            },
        );
        let sum_plain: f64 = plain.iter().map(|(_, w)| w).sum();
        let sum_weighted: f64 = weighted.iter().map(|(_, w)| w).sum();
        assert!(sum_weighted > sum_plain, "block weights inflate mass");
    }

    #[test]
    fn age_cdf_hits_fig3_anchors() {
        let l = log();
        let cdf = age_at_access_cdf(&l, true);
        let median = cdf.inverse(0.5);
        let day_frac = cdf.fraction_leq(24.0);
        assert!((3.0..20.0).contains(&median), "median {median}h");
        assert!(day_frac > 0.55, "within-a-day fraction {day_frac}");
        // Including system files skews much younger.
        let with_sys = age_at_access_cdf(&l, false);
        assert!(with_sys.inverse(0.5) < median);
    }

    #[test]
    fn weekly_windows_show_burst_mode_and_daily_spike() {
        let l = log();
        let dist = burst_window_distribution(&l, 0.8, None, false);
        assert!(!dist.is_empty());
        let total: f64 = dist.iter().map(|p| p.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1: {total}");
        let frac_1h: f64 = dist
            .iter()
            .filter(|p| p.window_hours <= 2)
            .map(|p| p.fraction)
            .sum();
        assert!(frac_1h > 0.3, "burst files dominate: {frac_1h}");
        // Daily-pattern spike: mass at windows of ~97-121+ hours.
        let frac_daily: f64 = dist
            .iter()
            .filter(|p| p.window_hours >= 90)
            .map(|p| p.fraction)
            .sum();
        assert!(frac_daily > 0.02, "daily re-read files exist: {frac_daily}");
    }

    #[test]
    fn day_restricted_windows_fit_in_24h() {
        let l = log();
        let dist = burst_window_distribution(&l, 0.8, Some(1), false);
        for p in &dist {
            assert!(p.window_hours <= 24);
        }
        // Within one day, bursts dominate even harder (Fig. 5).
        let frac_small: f64 = dist
            .iter()
            .filter(|p| p.window_hours <= 2)
            .map(|p| p.fraction)
            .sum();
        assert!(frac_small > 0.5, "within-day windows are small: {frac_small}");
    }

    #[test]
    fn weighted_windows_still_sum_to_one() {
        let l = log();
        let dist = burst_window_distribution(&l, 0.8, None, true);
        let total: f64 = dist.iter().map(|p| p.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

//! Plain-text workload trace format (save/replay).
//!
//! Synthesized workloads can be exported so a run is exactly replayable
//! elsewhere (or edited by hand), in the spirit of SWIM's published trace
//! files. The format is line-oriented and versioned:
//!
//! ```text
//! # dare-workload v1
//! name wl1
//! file <name> <size_bytes>
//! ...
//! job <id> <arrival_us> <file_index> <map_compute_us> <reduces> <output_bytes>
//! ...
//! ```
//!
//! Hand-rolled (no serialization dependency): the format is trivial and
//! the parser doubles as validation of foreign traces.

use crate::spec::{FileSpec, JobSpec, Workload};
use dare_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Magic first line; bump the version when the format changes.
const HEADER: &str = "# dare-workload v1";

/// Serialize a workload to the trace format.
pub fn to_string(w: &Workload) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{HEADER}");
    let _ = writeln!(s, "name {}", w.name);
    for f in &w.files {
        let _ = writeln!(s, "file {} {}", f.name, f.size_bytes);
    }
    for j in &w.jobs {
        let _ = writeln!(
            s,
            "job {} {} {} {} {} {}",
            j.id,
            j.arrival.as_micros(),
            j.file,
            j.map_compute.as_micros(),
            j.reduces,
            j.output_bytes
        );
    }
    s
}

/// Parse a workload from the trace format.
pub fn from_str(input: &str) -> Result<Workload, String> {
    let mut lines = input.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty trace")?;
    if first.trim() != HEADER {
        return Err(format!("bad header: expected '{HEADER}', got '{first}'"));
    }
    let mut name = String::new();
    let mut files = Vec::new();
    let mut jobs: Vec<JobSpec> = Vec::new();

    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line has a token");
        let ctx = |m: &str| format!("line {}: {m}", lineno + 1);
        match kind {
            "name" => {
                name = parts.next().ok_or_else(|| ctx("name missing"))?.to_string();
            }
            "file" => {
                let fname = parts.next().ok_or_else(|| ctx("file name missing"))?;
                let size: u64 = parts
                    .next()
                    .ok_or_else(|| ctx("file size missing"))?
                    .parse()
                    .map_err(|_| ctx("bad file size"))?;
                files.push(FileSpec {
                    name: fname.to_string(),
                    size_bytes: size,
                });
            }
            "job" => {
                let mut num = |what: &str| -> Result<u64, String> {
                    parts
                        .next()
                        .ok_or_else(|| ctx(&format!("{what} missing")))?
                        .parse()
                        .map_err(|_| ctx(&format!("bad {what}")))
                };
                let id = num("id")? as u32;
                let arrival = SimTime::from_micros(num("arrival")?);
                let file = num("file index")? as usize;
                let map_compute = SimDuration::from_micros(num("map compute")?);
                let reduces = num("reduces")? as u32;
                let output_bytes = num("output bytes")?;
                jobs.push(JobSpec {
                    id,
                    arrival,
                    file,
                    map_compute,
                    reduces,
                    output_bytes,
                });
            }
            other => return Err(ctx(&format!("unknown record kind '{other}'"))),
        }
    }

    let w = Workload { name, files, jobs };
    w.validate()?;
    Ok(w)
}

/// Write a workload to a file.
pub fn save(w: &Workload, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_string(w))
}

/// Load a workload from a file.
pub fn load(path: &std::path::Path) -> Result<Workload, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let w = crate::wl2(77);
        let text = to_string(&w);
        let back = from_str(&text).expect("round trip parses");
        assert_eq!(back.name, w.name);
        assert_eq!(back.files.len(), w.files.len());
        assert_eq!(back.jobs.len(), w.jobs.len());
        for (a, b) in w.files.iter().zip(&back.files) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.size_bytes, b.size_bytes);
        }
        for (a, b) in w.jobs.iter().zip(&back.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.file, b.file);
            assert_eq!(a.map_compute, b.map_compute);
            assert_eq!(a.reduces, b.reduces);
            assert_eq!(a.output_bytes, b.output_bytes);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_str("").is_err());
        assert!(from_str("# other format\nname x").is_err());
    }

    #[test]
    fn rejects_malformed_records() {
        let base = format!("{HEADER}\nname t\nfile a 100\n");
        assert!(from_str(&format!("{base}job 0"))
            .unwrap_err()
            .contains("missing"));
        assert!(from_str(&format!("{base}job 0 0 0 10 x 5"))
            .unwrap_err()
            .contains("bad reduces"));
        assert!(from_str(&format!("{base}blob 1 2")).is_err());
        assert!(from_str(&format!("{base}file b"))
            .unwrap_err()
            .contains("file size missing"));
    }

    #[test]
    fn rejects_semantically_invalid_traces() {
        // job references unknown file -> Workload::validate catches it
        let text = format!("{HEADER}\nname t\nfile a 100\njob 0 0 5 1000 1 10\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{HEADER}\n\n# dataset\nname t\nfile a 100\n\n# one job\njob 0 0 0 1000 1 10\n"
        );
        let w = from_str(&text).expect("parses");
        assert_eq!(w.jobs.len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dare-io-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.txt");
        let w = crate::wl1(3);
        save(&w, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.jobs.len(), w.jobs.len());
        std::fs::remove_file(&path).ok();
    }
}

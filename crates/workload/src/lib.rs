//! # dare-workload — workload synthesis and trace analysis
//!
//! The paper evaluates DARE with jobs replayed from a Facebook 600-machine
//! SWIM trace and motivates the design with an analysis of a Yahoo! HDFS
//! audit log. Neither proprietary artifact is available, so this crate
//! synthesizes statistically equivalent stand-ins (see DESIGN.md's
//! substitution table) and implements the analysis code of Section III:
//!
//! * [`popularity`] — the heavy-tailed file-access distribution of Fig. 6
//!   (the CDF actually used in the experiments);
//! * [`spec`] — file/job specifications consumed by the simulator;
//! * [`swim`] — the two SWIM-derived workloads: `wl1` (a long sequence of
//!   small jobs, favouring FIFO) and `wl2` (small jobs after large jobs,
//!   favouring the Fair scheduler), 500 jobs each;
//! * [`yahoo`] — a generative model of a week of HDFS audit-log accesses
//!   with the published properties (Zipf popularity, ~80 % of accesses in
//!   the first day of a file's life with median age ≈ 9h45m, hour-scale
//!   bursts, daily periodicity);
//! * [`analysis`] — rank-frequency tables (Fig. 2), age-at-access CDF
//!   (Fig. 3), and the 80 %-coverage burst-window statistic (Figs. 4-5);
//! * [`io`] — a plain-text trace format so synthesized workloads can be
//!   exported, edited, and replayed exactly;
//! * [`audit`] — HDFS audit-log text emit/parse (the `ydata` format), so
//!   the analyses can be pointed at real name-node logs.

#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod io;
pub mod popularity;
pub mod spec;
pub mod swim;
pub mod yahoo;

pub use popularity::FilePopularity;
pub use spec::{FileSpec, JobSpec, Workload};
pub use swim::{wl1, wl2, SwimParams};
pub use yahoo::{AccessEvent, AccessLog, LogFile, YahooParams};

//! Synthetic Yahoo!-like HDFS audit log (substitute for the proprietary
//! `ydata-hdfs-audit-logs-v1_0` data set the paper analyzes in Section III).
//!
//! The generative model bakes in the four published properties so the
//! Section III analysis code can be demonstrated end-to-end:
//!
//! 1. **Heavy-tailed popularity** (Fig. 2): per-file access counts follow a
//!    Zipf law over the population.
//! 2. **Young-data bias** (Fig. 3): the age of a file at access time has
//!    median ≈ 9h45m and ~80 % of accesses within the first day.
//! 3. **Hour-scale bursts** (Figs. 4-5): most files receive 80 % of their
//!    accesses within a one-hour window of some day.
//! 4. **Daily periodicity** (Fig. 4's spike at a 121-hour window): a
//!    minority of files is re-read every day of the week, so the smallest
//!    window covering 80 % of their accesses spans ~6 days.
//!
//! System files (job.jar / job.xml / job.split) are generated too — they are
//! created, hammered within minutes, and deleted per job — because the
//! analyses must *exclude* them exactly as the paper does.

use dare_simcore::dist::LogNormal;
use dare_simcore::{DetRng, SimTime};

/// Per-file temporal access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// All accesses inside a ±30 min burst at one moment of the file's life.
    Burst,
    /// Equal daily re-reads at a fixed hour for the rest of the week.
    Daily,
    /// Ages drawn i.i.d. from the young-biased age law.
    Spread,
}

/// A file in the synthetic log.
#[derive(Debug, Clone)]
pub struct LogFile {
    /// Dense id.
    pub id: u32,
    /// Creation time.
    pub created: SimTime,
    /// Number of 128 MB blocks (Fig. 2's weighted variant).
    pub num_blocks: u32,
    /// True for job.jar/job.xml/job.split-style framework files.
    pub is_system: bool,
    /// The pattern this file's accesses follow.
    pub pattern: AccessPattern,
}

/// One read access in the audit log.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// When the access happened.
    pub time: SimTime,
    /// Which file was read.
    pub file: u32,
}

/// A synthesized week of audit-log activity.
#[derive(Debug, Clone)]
pub struct AccessLog {
    /// File table.
    pub files: Vec<LogFile>,
    /// Accesses sorted by time.
    pub events: Vec<AccessEvent>,
    /// Length of the observation window in hours.
    pub window_hours: u64,
}

/// Tunables of the generator.
#[derive(Debug, Clone)]
pub struct YahooParams {
    /// Number of data (non-system) files.
    pub files: usize,
    /// Zipf exponent of per-file access counts.
    pub zipf_s: f64,
    /// Total accesses to data files over the week.
    pub total_accesses: u64,
    /// Observation window (paper: one week = 168 h).
    pub window_hours: u64,
    /// Number of MapReduce jobs generating system files.
    pub system_jobs: u32,
    /// Accesses each system file receives (task-start reads).
    pub system_accesses_each: u32,
    /// Mixture weights for (burst, daily, spread) patterns.
    pub pattern_weights: (f64, f64, f64),
}

impl Default for YahooParams {
    fn default() -> Self {
        YahooParams {
            files: 1000,
            zipf_s: 1.1,
            total_accesses: 150_000,
            window_hours: 168,
            system_jobs: 300,
            system_accesses_each: 40,
            pattern_weights: (0.60, 0.20, 0.20),
        }
    }
}

/// The age-at-access law of Fig. 3: lognormal with median 9.75 h and
/// σ chosen so ~80 % of mass falls below 24 h.
pub fn age_law() -> LogNormal {
    // z_{0.8} = 0.8416; sigma = ln(24/9.75) / z = 1.071
    LogNormal::from_median(9.75, 1.071)
}

/// Generate a week of audit-log traffic.
pub fn generate(params: &YahooParams, seed: u64) -> AccessLog {
    let root = DetRng::new(seed);
    let mut meta_rng = root.substream("yahoo-meta");
    let mut time_rng = root.substream("yahoo-times");

    let week = params.window_hours as f64;
    let zipf = dare_simcore::dist::Zipf::new(params.files, params.zipf_s);
    let blocks_dist = LogNormal::from_median(4.0, 1.0);
    let ages = age_law();

    let mut files = Vec::with_capacity(params.files);
    let mut events: Vec<AccessEvent> = Vec::new();

    // Expected accesses per rank from the Zipf pmf.
    for rank in 1..=params.files {
        let id = (rank - 1) as u32;
        // Most data files exist from early in the window; some are created
        // mid-week (their accesses are then age-limited).
        let created_h = if meta_rng.coin(0.6) {
            meta_rng.uniform_range(0.0, 8.0)
        } else {
            meta_rng.uniform_range(0.0, week * 0.6)
        };
        let created = SimTime::from_secs_f64(created_h * 3600.0);
        let num_blocks = (blocks_dist.sample(&mut meta_rng).round() as u32).clamp(1, 2000);
        let (wb, wd, _ws) = params.pattern_weights;
        let u = meta_rng.uniform();
        // The hottest files are the fresh common data set everyone scans
        // (Section III: "a common time-varying data set") — always
        // young-access patterns. Daily re-reads live in the mid-tail.
        let pattern = if rank <= params.files / 16 {
            if u < 0.75 {
                AccessPattern::Burst
            } else {
                AccessPattern::Spread
            }
        } else if u < wb {
            AccessPattern::Burst
        } else if u < wb + wd {
            AccessPattern::Daily
        } else {
            AccessPattern::Spread
        };
        let count = (zipf.pmf(rank) * params.total_accesses as f64).round() as u64;
        let count = count.max(1);

        emit_accesses(
            &mut events,
            id,
            created_h,
            week,
            pattern,
            count,
            &ages,
            &mut time_rng,
        );

        files.push(LogFile {
            id,
            created,
            num_blocks,
            is_system: false,
            pattern,
        });
    }

    // System files: one jar+xml+split trio per job, hammered within minutes
    // of creation.
    for j in 0..params.system_jobs {
        let job_start_h = time_rng.uniform_range(0.0, week - 0.5);
        for part in 0..3 {
            let id = files.len() as u32;
            files.push(LogFile {
                id,
                created: SimTime::from_secs_f64(job_start_h * 3600.0),
                num_blocks: 1,
                is_system: true,
                pattern: AccessPattern::Burst,
            });
            let _ = (j, part);
            for _ in 0..params.system_accesses_each {
                let dt_min = time_rng.uniform_range(0.0, 10.0);
                events.push(AccessEvent {
                    time: SimTime::from_secs_f64((job_start_h * 60.0 + dt_min) * 60.0),
                    file: id,
                });
            }
        }
    }

    events.sort_by_key(|e| (e.time, e.file));
    AccessLog {
        files,
        events,
        window_hours: params.window_hours,
    }
}

/// Emit `count` accesses for one data file according to its pattern.
#[allow(clippy::too_many_arguments)]
fn emit_accesses(
    events: &mut Vec<AccessEvent>,
    id: u32,
    created_h: f64,
    week_h: f64,
    pattern: AccessPattern,
    count: u64,
    ages: &LogNormal,
    rng: &mut DetRng,
) {
    let push = |events: &mut Vec<AccessEvent>, hour: f64| {
        let h = hour.clamp(created_h, week_h - 1e-6);
        events.push(AccessEvent {
            time: SimTime::from_secs_f64(h * 3600.0),
            file: id,
        });
    };
    match pattern {
        AccessPattern::Burst => {
            // Burst center at a young age; the whole burst spans ±30 min.
            let center = created_h + ages.sample(rng).min(week_h - created_h - 0.5);
            for _ in 0..count {
                push(events, center + rng.uniform_range(-0.5, 0.5));
            }
        }
        AccessPattern::Daily => {
            // Fixed hour-of-day; equal shares across the remaining days.
            let base_hour = rng.uniform_range(0.0, 24.0);
            let first_day = (created_h / 24.0).ceil() as u64;
            let days: Vec<u64> = (first_day..(week_h / 24.0) as u64).collect();
            if days.is_empty() {
                // Created too late for daily re-reads: degenerate to burst.
                let center = created_h + 0.5;
                for _ in 0..count {
                    push(events, center + rng.uniform_range(-0.25, 0.25));
                }
                return;
            }
            for i in 0..count {
                let day = days[(i as usize) % days.len()];
                let jitter = rng.uniform_range(-0.3, 0.3);
                push(events, day as f64 * 24.0 + base_hour + jitter);
            }
        }
        AccessPattern::Spread => {
            for _ in 0..count {
                push(events, created_h + ages.sample(rng));
            }
        }
    }
}

impl AccessLog {
    /// Accesses to data files only.
    pub fn data_events(&self) -> impl Iterator<Item = &AccessEvent> {
        self.events
            .iter()
            .filter(|e| !self.files[e.file as usize].is_system)
    }

    /// Number of data (non-system) files.
    pub fn num_data_files(&self) -> usize {
        self.files.iter().filter(|f| !f.is_system).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::SimDuration;

    fn small_log() -> AccessLog {
        generate(
            &YahooParams {
                files: 200,
                total_accesses: 20_000,
                system_jobs: 50,
                ..YahooParams::default()
            },
            42,
        )
    }

    #[test]
    fn log_is_sorted_and_sized() {
        let log = small_log();
        assert_eq!(log.num_data_files(), 200);
        assert_eq!(log.files.len(), 200 + 50 * 3);
        assert!(log.events.len() > 20_000);
        for w in log.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in &log.events {
            assert!(e.time <= SimTime::from_secs(168 * 3600));
            let f = &log.files[e.file as usize];
            assert!(e.time >= f.created, "no access precedes creation");
        }
    }

    #[test]
    fn popularity_is_zipf_like() {
        let log = small_log();
        let mut counts = vec![0u64; log.files.len()];
        for e in log.data_events() {
            counts[e.file as usize] += 1;
        }
        let mut data_counts: Vec<u64> = counts
            .iter()
            .enumerate()
            .filter(|(i, _)| !log.files[*i].is_system)
            .map(|(_, &c)| c)
            .collect();
        data_counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = data_counts.iter().sum();
        let top10: u64 = data_counts.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.35,
            "top-10 share {}",
            top10 as f64 / total as f64
        );
        assert!(data_counts[0] > 50 * data_counts[150].max(1));
    }

    #[test]
    fn ages_are_young_biased() {
        let log = small_log();
        let mut ages_h: Vec<f64> = Vec::new();
        for e in log.data_events() {
            let f = &log.files[e.file as usize];
            ages_h.push(e.time.saturating_since(f.created).as_hours_f64());
        }
        ages_h.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = ages_h[ages_h.len() / 2];
        let frac_day = ages_h.iter().filter(|&&a| a <= 24.0).count() as f64
            / ages_h.len() as f64;
        assert!((4.0..18.0).contains(&median), "median age {median}h");
        assert!(frac_day > 0.55, "fraction within a day {frac_day}");
    }

    #[test]
    fn system_files_are_hammered_young() {
        let log = small_log();
        for e in &log.events {
            let f = &log.files[e.file as usize];
            if f.is_system {
                let age = e.time.saturating_since(f.created);
                assert!(age <= SimDuration::from_secs(11 * 60));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&YahooParams::default(), 7);
        let b = generate(&YahooParams::default(), 7);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[100].time, b.events[100].time);
    }

    #[test]
    fn patterns_all_present() {
        let log = small_log();
        let mut has = [false; 3];
        for f in &log.files {
            if !f.is_system {
                match f.pattern {
                    AccessPattern::Burst => has[0] = true,
                    AccessPattern::Daily => has[1] = true,
                    AccessPattern::Spread => has[2] = true,
                }
            }
        }
        assert_eq!(has, [true; 3]);
    }
}

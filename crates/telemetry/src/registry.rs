//! The metric registry: named counters, gauges and windowed histograms.
//!
//! A registry is a flat, ordered set of metrics; the registration order is
//! the column order of the exported cluster time-series, so a schema is
//! defined once (at engine construction) and every sample row lines up
//! with it byte-for-byte. Three metric families:
//!
//! * **counters** — monotone cumulative totals (maps completed, bytes
//!   fetched); exported as-is each tick.
//! * **gauges** — instantaneous readings (free slots, queue depth), either
//!   integer or float.
//! * **windowed histograms** — P²-backed [`LatencyStat`]s over the samples
//!   pushed since the previous tick (per-link utilization across nodes);
//!   each tick exports `{name}_p50` / `{name}_max` / `{name}_n` and resets
//!   the window.
//!
//! Values are stored as [`Value`] (integer or float); floats are always
//! rendered with six fixed decimals so identical runs serialize
//! identically.

use dare_simcore::stats::LatencyStat;
use dare_simcore::SimTime;

/// Handle to a registered metric (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// The metric families a registry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative total.
    Counter,
    /// Instantaneous integer reading.
    GaugeInt,
    /// Instantaneous float reading.
    GaugeFloat,
    /// Histogram over the samples pushed since the last tick.
    Windowed,
}

/// One sampled cell: integer or fixed-format float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned integer cell.
    U64(u64),
    /// Float cell, rendered with six fixed decimals.
    F64(f64),
}

impl Value {
    /// Render for CSV/JSONL (both use the same textual form).
    pub fn render(&self) -> String {
        match self {
            Value::U64(v) => format!("{v}"),
            Value::F64(v) => format!("{v:.6}"),
        }
    }

    /// The float view of the cell (for summaries and derived figures).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::U64(v) => *v as f64,
            Value::F64(v) => *v,
        }
    }
}

enum Cell {
    Counter(u64),
    GaugeInt(u64),
    GaugeFloat(f64),
    // Boxed: a LatencyStat (three P² estimators) dwarfs the scalar
    // variants, and windowed metrics are rare in a registry.
    Windowed(Box<LatencyStat>),
}

/// One sampled row of the cluster series.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sample time, microseconds of simulated time.
    pub t_us: u64,
    /// Cells in schema (registration/expansion) order, excluding `t_us`.
    pub cells: Vec<Value>,
}

/// The registry: metric definitions, live values, and the accumulated
/// sample rows.
pub struct MetricRegistry {
    names: Vec<&'static str>,
    kinds: Vec<MetricKind>,
    cells: Vec<Cell>,
    rows: Vec<Row>,
    /// Expanded column names (one per exported cell), cached after the
    /// first sample; windowed metrics expand to three columns.
    columns: Vec<String>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricRegistry {
            names: Vec::new(),
            kinds: Vec::new(),
            cells: Vec::new(),
            rows: Vec::new(),
            columns: Vec::new(),
        }
    }

    fn register(&mut self, name: &'static str, kind: MetricKind, cell: Cell) -> MetricId {
        assert!(
            self.rows.is_empty(),
            "register all metrics before the first sample"
        );
        assert!(
            !self.names.contains(&name),
            "duplicate metric name {name:?}"
        );
        self.names.push(name);
        self.kinds.push(kind);
        self.cells.push(cell);
        match kind {
            MetricKind::Windowed => {
                self.columns.push(format!("{name}_p50"));
                self.columns.push(format!("{name}_max"));
                self.columns.push(format!("{name}_n"));
            }
            _ => self.columns.push(name.to_string()),
        }
        MetricId(self.names.len() - 1)
    }

    /// Register a monotone cumulative counter.
    pub fn counter(&mut self, name: &'static str) -> MetricId {
        self.register(name, MetricKind::Counter, Cell::Counter(0))
    }

    /// Register an integer gauge.
    pub fn gauge_int(&mut self, name: &'static str) -> MetricId {
        self.register(name, MetricKind::GaugeInt, Cell::GaugeInt(0))
    }

    /// Register a float gauge.
    pub fn gauge_float(&mut self, name: &'static str) -> MetricId {
        self.register(name, MetricKind::GaugeFloat, Cell::GaugeFloat(0.0))
    }

    /// Register a windowed histogram (reset at every sample tick).
    pub fn windowed(&mut self, name: &'static str) -> MetricId {
        self.register(
            name,
            MetricKind::Windowed,
            Cell::Windowed(Box::new(LatencyStat::new())),
        )
    }

    /// Add to a counter.
    pub fn inc(&mut self, id: MetricId, by: u64) {
        match &mut self.cells[id.0] {
            Cell::Counter(v) => *v += by,
            _ => panic!("inc on a non-counter metric"),
        }
    }

    /// Set a counter to a cumulative total the caller tracks itself
    /// (must be monotone).
    pub fn set_total(&mut self, id: MetricId, total: u64) {
        match &mut self.cells[id.0] {
            Cell::Counter(v) => {
                debug_assert!(total >= *v, "counter {} went backwards", self.names[id.0]);
                *v = total;
            }
            _ => panic!("set_total on a non-counter metric"),
        }
    }

    /// Set an integer gauge.
    pub fn set_int(&mut self, id: MetricId, v: u64) {
        match &mut self.cells[id.0] {
            Cell::GaugeInt(g) => *g = v,
            _ => panic!("set_int on a non-integer-gauge metric"),
        }
    }

    /// Set a float gauge.
    pub fn set_float(&mut self, id: MetricId, v: f64) {
        match &mut self.cells[id.0] {
            Cell::GaugeFloat(g) => *g = v,
            _ => panic!("set_float on a non-float-gauge metric"),
        }
    }

    /// Push one observation into a windowed histogram.
    pub fn observe(&mut self, id: MetricId, x: f64) {
        match &mut self.cells[id.0] {
            Cell::Windowed(h) => h.push(x),
            _ => panic!("observe on a non-windowed metric"),
        }
    }

    /// Seal the current values into one sample row at simulated time `t`
    /// and reset every windowed histogram for the next interval.
    pub fn sample(&mut self, t: SimTime) {
        let mut cells = Vec::with_capacity(self.columns.len());
        for cell in &mut self.cells {
            match cell {
                Cell::Counter(v) | Cell::GaugeInt(v) => cells.push(Value::U64(*v)),
                Cell::GaugeFloat(v) => cells.push(Value::F64(*v)),
                Cell::Windowed(h) => {
                    cells.push(Value::F64(if h.count() == 0 { 0.0 } else { h.p50() }));
                    cells.push(Value::F64(h.max()));
                    cells.push(Value::U64(h.count()));
                    **h = LatencyStat::new();
                }
            }
        }
        self.rows.push(Row {
            t_us: t.as_micros(),
            cells,
        });
    }

    /// The expanded column names, excluding the leading `t_us`.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The accumulated sample rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Tear the registry apart into `(columns, rows)` for sealing into a
    /// [`crate::Telemetry`].
    pub fn into_series(self) -> (Vec<String>, Vec<Row>) {
        (self.columns, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_column_order() {
        let mut r = MetricRegistry::new();
        let c = r.counter("done");
        let g = r.gauge_int("slots");
        let f = r.gauge_float("rate");
        let w = r.windowed("util");
        assert_eq!(
            r.columns(),
            &["done", "slots", "rate", "util_p50", "util_max", "util_n"]
        );
        r.inc(c, 2);
        r.set_total(c, 5);
        r.set_int(g, 7);
        r.set_float(f, 0.25);
        r.observe(w, 0.5);
        r.observe(w, 1.5);
        r.sample(SimTime::from_secs(3));
        let rows = r.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].t_us, 3_000_000);
        assert_eq!(rows[0].cells[0], Value::U64(5));
        assert_eq!(rows[0].cells[1], Value::U64(7));
        assert_eq!(rows[0].cells[2], Value::F64(0.25));
        assert_eq!(rows[0].cells[5], Value::U64(2), "window sample count");
    }

    #[test]
    fn windowed_histograms_reset_between_samples() {
        let mut r = MetricRegistry::new();
        let w = r.windowed("util");
        r.observe(w, 1.0);
        r.sample(SimTime::from_secs(1));
        r.sample(SimTime::from_secs(2));
        let rows = r.rows();
        assert_eq!(rows[0].cells[2], Value::U64(1));
        assert_eq!(rows[1].cells[2], Value::U64(0), "window cleared");
        assert_eq!(rows[1].cells[0], Value::F64(0.0), "empty window p50 is 0");
    }

    #[test]
    fn values_render_fixed_format() {
        assert_eq!(Value::U64(42).render(), "42");
        assert_eq!(Value::F64(0.5).render(), "0.500000");
        assert_eq!(Value::F64(0.5).as_f64(), 0.5);
        assert_eq!(Value::U64(2).as_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_rejected() {
        let mut r = MetricRegistry::new();
        r.counter("x");
        r.gauge_int("x");
    }

    #[test]
    #[should_panic(expected = "before the first sample")]
    fn late_registration_rejected() {
        let mut r = MetricRegistry::new();
        r.counter("x");
        r.sample(SimTime::ZERO);
        r.counter("y");
    }
}

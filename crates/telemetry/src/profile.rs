//! Wall-clock self-profiling of the simulator's event-dispatch arms.
//!
//! The engine wraps each dispatched event in a timing scope tagged with
//! the subsystem that owns the event (scheduling, DFS, network, fault
//! handling). The accumulated per-subsystem wall time lands in
//! `results/BENCH_profile.json` via the `telemetry-smoke` bench
//! experiment, so a hot-path regression in one subsystem is visible
//! across PRs even when end-to-end wall time hides it.
//!
//! Wall-clock times are *not* deterministic and never feed back into the
//! simulation: the profiler observes `std::time::Instant` only, so a
//! profiled run stays bit-identical to an unprofiled one.

/// The event-dispatch arms the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Job arrivals, heartbeats/slot filling, map-compute and reduce
    /// completions.
    Sched,
    /// Local disk reads, proactive-replication epochs.
    Dfs,
    /// Flow-simulator polls (remote-fetch and transfer progress).
    Net,
    /// Crash/rejoin/declare-dead/retry/degrade handling.
    Fault,
    /// Event-queue operations (the pop feeding each dispatch). Separating
    /// queue time from handler time is what lets the report attribute
    /// wall clock to kernel overhead vs. scheduler decisions.
    Queue,
}

impl Subsystem {
    const ALL: [Subsystem; 5] = [
        Subsystem::Sched,
        Subsystem::Dfs,
        Subsystem::Net,
        Subsystem::Fault,
        Subsystem::Queue,
    ];

    fn idx(self) -> usize {
        match self {
            Subsystem::Sched => 0,
            Subsystem::Dfs => 1,
            Subsystem::Net => 2,
            Subsystem::Fault => 3,
            Subsystem::Queue => 4,
        }
    }

    /// Stable name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Sched => "sched",
            Subsystem::Dfs => "dfs",
            Subsystem::Net => "net",
            Subsystem::Fault => "fault",
            Subsystem::Queue => "queue",
        }
    }
}

/// Accumulates per-subsystem wall time while a run is in flight.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    wall_ns: [u64; 5],
    events: [u64; 5],
    peak_slab: u64,
    peak_queue: u64,
}

impl Profiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `elapsed` wall time for one event of `sub`.
    pub fn record(&mut self, sub: Subsystem, elapsed: std::time::Duration) {
        let i = sub.idx();
        self.wall_ns[i] += elapsed.as_nanos() as u64;
        self.events[i] += 1;
    }

    /// Raise the peak-slab-occupancy gauge (live arena entries — flows,
    /// attempts, heartbeat records — at their high-water mark).
    pub fn note_slab_peak(&mut self, occupancy: u64) {
        self.peak_slab = self.peak_slab.max(occupancy);
    }

    /// Raise the peak-event-queue-length gauge.
    pub fn note_queue_peak(&mut self, len: u64) {
        self.peak_queue = self.peak_queue.max(len);
    }

    /// Seal into a report.
    pub fn finish(self) -> ProfileReport {
        ProfileReport {
            wall_ns: self.wall_ns,
            events: self.events,
            peak_slab_occupancy: self.peak_slab,
            peak_queue_len: self.peak_queue,
        }
    }
}

/// Per-subsystem dispatch timings of one finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileReport {
    /// Total wall nanoseconds per subsystem (Sched, Dfs, Net, Fault, Queue).
    pub wall_ns: [u64; 5],
    /// Events dispatched (or, for Queue, pops timed) per subsystem.
    pub events: [u64; 5],
    /// High-water mark of live slab entries across the run's arenas.
    pub peak_slab_occupancy: u64,
    /// High-water mark of the pending event-queue length.
    pub peak_queue_len: u64,
}

impl ProfileReport {
    /// Total events dispatched (the Queue arm times the pops feeding the
    /// same events, so it is excluded to avoid double counting).
    pub fn total_events(&self) -> u64 {
        self.events
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != Subsystem::Queue.idx())
            .map(|(_, &e)| e)
            .sum()
    }

    /// Dispatched events per second of total dispatch+queue wall time.
    pub fn events_per_sec(&self) -> u64 {
        let wall = self.total_wall_ns();
        if wall == 0 {
            return 0;
        }
        (self.total_events() as f64 / (wall as f64 / 1e9)) as u64
    }

    /// Total wall nanoseconds across subsystems.
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns.iter().sum()
    }

    /// Events and wall time of one subsystem.
    pub fn of(&self, sub: Subsystem) -> (u64, u64) {
        (self.events[sub.idx()], self.wall_ns[sub.idx()])
    }

    /// Render the `BENCH_profile.json` report: one object with a schema
    /// tag, the scenario label, end-to-end totals, and one entry per
    /// subsystem (integer nanoseconds only).
    pub fn to_json(&self, scenario: &str) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"dare-profile-v1\",\n");
        s.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        s.push_str(&format!("  \"total_wall_ns\": {},\n", self.total_wall_ns()));
        s.push_str(&format!("  \"events_per_sec\": {},\n", self.events_per_sec()));
        s.push_str(&format!(
            "  \"peak_slab_occupancy\": {},\n",
            self.peak_slab_occupancy
        ));
        s.push_str(&format!("  \"peak_queue_len\": {},\n", self.peak_queue_len));
        s.push_str("  \"subsystems\": [\n");
        for (i, sub) in Subsystem::ALL.iter().enumerate() {
            let (events, wall) = self.of(*sub);
            let mean = wall.checked_div(events).unwrap_or(0);
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"events\": {events}, \"wall_ns\": {wall}, \"mean_ns\": {mean}}}{}\n",
                sub.name(),
                if i + 1 < Subsystem::ALL.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        let total = self.total_wall_ns().max(1) as f64;
        let mut parts = Vec::new();
        for sub in Subsystem::ALL {
            let (events, wall) = self.of(sub);
            parts.push(format!(
                "{}={:.0}% ({} ev)",
                sub.name(),
                wall as f64 / total * 100.0,
                events
            ));
        }
        format!(
            "dispatch {:.1}ms: {}",
            self.total_wall_ns() as f64 / 1e6,
            parts.join(" ")
        )
    }
}

/// Validate a `BENCH_profile.json` document: schema tag, scenario, totals,
/// and all four subsystem entries with integer `events`/`wall_ns`/`mean_ns`
/// fields. This is what the CI `telemetry-smoke` gate runs against the
/// written file.
pub fn validate_profile_json(s: &str) -> Result<(), String> {
    if !s.contains("\"schema\": \"dare-profile-v1\"") {
        return Err("missing or wrong schema tag".into());
    }
    if !s.contains("\"scenario\": \"") {
        return Err("missing scenario".into());
    }
    for key in [
        "total_events",
        "total_wall_ns",
        "events_per_sec",
        "peak_slab_occupancy",
        "peak_queue_len",
    ] {
        let int_after = |k: &str| -> Result<u64, String> {
            let pat = format!("\"{k}\": ");
            let at = s.find(&pat).ok_or_else(|| format!("missing {k:?}"))?;
            let rest = &s[at + pat.len()..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().map_err(|_| format!("non-integer {k:?}"))
        };
        int_after(key)?;
    }
    for sub in Subsystem::ALL {
        let pat = format!("{{\"name\": \"{}\", \"events\": ", sub.name());
        let at = s
            .find(&pat)
            .ok_or_else(|| format!("missing subsystem entry {:?}", sub.name()))?;
        let rest = &s[at + pat.len()..];
        for field in ["", "\"wall_ns\": ", "\"mean_ns\": "] {
            let start = if field.is_empty() {
                0
            } else {
                rest.find(field)
                    .ok_or_else(|| format!("missing {field:?} for {:?}", sub.name()))?
                    + field.len()
            };
            let digits: String = rest[start..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if digits.is_empty() {
                return Err(format!("non-integer field for {:?}", sub.name()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn report_accumulates_and_renders() {
        let mut p = Profiler::new();
        p.record(Subsystem::Sched, Duration::from_nanos(100));
        p.record(Subsystem::Sched, Duration::from_nanos(50));
        p.record(Subsystem::Net, Duration::from_nanos(25));
        let r = p.finish();
        assert_eq!(r.total_events(), 3);
        assert_eq!(r.total_wall_ns(), 175);
        assert_eq!(r.of(Subsystem::Sched), (2, 150));
        assert_eq!(r.of(Subsystem::Fault), (0, 0));
        let json = r.to_json("unit-test");
        validate_profile_json(&json).expect("well-formed report");
        assert!(json.contains("\"scenario\": \"unit-test\""));
        assert!(json.contains("\"name\": \"fault\", \"events\": 0"));
        assert!(r.summary().contains("sched"));
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(validate_profile_json("{}").is_err());
        let r = Profiler::new().finish();
        let good = r.to_json("x");
        validate_profile_json(&good).expect("valid");
        assert!(validate_profile_json(&good.replace("dare-profile-v1", "v0")).is_err());
        assert!(validate_profile_json(&good.replace("\"name\": \"net\"", "\"name\": \"nyet\"")).is_err());
        assert!(
            validate_profile_json(&good.replace("\"total_events\": 0", "\"total_events\": x"))
                .is_err()
        );
    }
}

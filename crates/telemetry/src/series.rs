//! The sealed telemetry time-series and its exporters.
//!
//! A [`Telemetry`] holds three aligned series sampled at the same ticks:
//! the cluster-level rows produced by the [`crate::MetricRegistry`], a
//! per-node breakdown ([`NodeSample`]) and a per-job breakdown
//! ([`JobSample`]). Exports are byte-stable: integers and six-fixed-decimal
//! floats only, fixed column/key order, `\n` line endings — two identical
//! runs serialize identically, which is what the determinism tests pin.

use crate::registry::{Row, Value};

/// Lifecycle phase of a job at a sampling tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Arrived, maps or reduces still outstanding.
    Running,
    /// All maps and reduces committed.
    Done,
    /// Abandoned after a task exhausted its retry budget.
    Failed,
}

impl JobPhase {
    /// Stable textual form used by CSV and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }
}

/// Per-node snapshot at one sampling tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSample {
    /// Sample time, microseconds of simulated time.
    pub t_us: u64,
    /// Node index.
    pub node: u32,
    /// Actually serving work (neither silently crashed nor declared dead).
    pub alive: bool,
    /// Advertising slots from the master's view (not declared dead; a
    /// silently crashed node still advertises until the timeout fires).
    pub advertised: bool,
    /// Occupied map slots (master's view).
    pub map_used: u32,
    /// Advertised map-slot capacity (0 once declared dead).
    pub map_total: u32,
    /// Occupied reduce slots.
    pub reduce_used: u32,
    /// Advertised reduce-slot capacity.
    pub reduce_total: u32,
    /// Dynamic replicas physically held.
    pub dynamic_blocks: u64,
    /// Bytes of dynamic replicas physically held.
    pub dynamic_bytes: u64,
    /// NIC transmit utilization ∈ [0, 1] across active flows.
    pub tx_util: f64,
    /// NIC receive utilization ∈ [0, 1] across active flows.
    pub rx_util: f64,
}

/// Per-job snapshot at one sampling tick. Emitted for every in-flight job
/// at each tick, plus one terminal row per job at the final sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSample {
    /// Sample time, microseconds of simulated time.
    pub t_us: u64,
    /// Job index.
    pub job: u32,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Map tasks in the job.
    pub maps_total: u32,
    /// Maps committed so far.
    pub maps_done: u32,
    /// Committed maps that ran node-local.
    pub node_local: u32,
    /// Committed maps that ran rack-local.
    pub rack_local: u32,
    /// Committed maps that read remotely.
    pub remote: u32,
    /// Reduce tasks committed so far.
    pub reduces_done: u32,
}

/// The sealed time-series a telemetry-enabled run attaches to its
/// `SimResult`.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Sampling interval, microseconds.
    pub interval_us: u64,
    /// Cluster-series column names (excluding the leading `t_us`).
    pub columns: Vec<String>,
    /// Cluster-level rows, one per tick, cells in `columns` order.
    pub cluster: Vec<Row>,
    /// Per-node breakdown (nodes × ticks, node-major within a tick).
    pub nodes: Vec<NodeSample>,
    /// Per-job breakdown (in-flight jobs per tick + terminal rows).
    pub jobs: Vec<JobSample>,
}

const NODE_COLUMNS: &str = "t_us,node,alive,advertised,map_used,map_total,reduce_used,\
    reduce_total,dynamic_blocks,dynamic_bytes,tx_util,rx_util";
const JOB_COLUMNS: &str =
    "t_us,job,phase,maps_total,maps_done,node_local,rack_local,remote,reduces_done";

impl Telemetry {
    /// Number of sampling ticks recorded.
    pub fn ticks(&self) -> usize {
        self.cluster.len()
    }

    /// Index of a cluster-series column, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The value of cluster column `name` at tick `i`.
    pub fn value(&self, i: usize, name: &str) -> Option<Value> {
        let c = self.column(name)?;
        Some(self.cluster.get(i)?.cells[c])
    }

    /// The cluster-level series as CSV (header + one row per tick).
    pub fn cluster_csv(&self) -> String {
        let mut s = String::from("t_us");
        for c in &self.columns {
            s.push(',');
            s.push_str(c);
        }
        s.push('\n');
        for row in &self.cluster {
            s.push_str(&row.t_us.to_string());
            for cell in &row.cells {
                s.push(',');
                s.push_str(&cell.render());
            }
            s.push('\n');
        }
        s
    }

    /// The per-node breakdown as CSV.
    pub fn nodes_csv(&self) -> String {
        let mut s = String::from(NODE_COLUMNS);
        s.push('\n');
        for n in &self.nodes {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{:.6},{:.6}\n",
                n.t_us,
                n.node,
                n.alive as u8,
                n.advertised as u8,
                n.map_used,
                n.map_total,
                n.reduce_used,
                n.reduce_total,
                n.dynamic_blocks,
                n.dynamic_bytes,
                n.tx_util,
                n.rx_util,
            ));
        }
        s
    }

    /// The per-job breakdown as CSV.
    pub fn jobs_csv(&self) -> String {
        let mut s = String::from(JOB_COLUMNS);
        s.push('\n');
        for j in &self.jobs {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                j.t_us,
                j.job,
                j.phase.label(),
                j.maps_total,
                j.maps_done,
                j.node_local,
                j.rack_local,
                j.remote,
                j.reduces_done,
            ));
        }
        s
    }

    /// All three series as JSONL: one object per line, `kind` ∈
    /// `cluster` | `node` | `job`, fixed key order, cluster rows first.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for row in &self.cluster {
            s.push_str(&format!("{{\"kind\":\"cluster\",\"t_us\":{}", row.t_us));
            for (c, cell) in self.columns.iter().zip(&row.cells) {
                s.push_str(&format!(",\"{}\":{}", c, cell.render()));
            }
            s.push_str("}\n");
        }
        for n in &self.nodes {
            s.push_str(&format!(
                "{{\"kind\":\"node\",\"t_us\":{},\"node\":{},\"alive\":{},\"advertised\":{},\
                 \"map_used\":{},\"map_total\":{},\"reduce_used\":{},\"reduce_total\":{},\
                 \"dynamic_blocks\":{},\"dynamic_bytes\":{},\"tx_util\":{:.6},\"rx_util\":{:.6}}}\n",
                n.t_us,
                n.node,
                n.alive as u8,
                n.advertised as u8,
                n.map_used,
                n.map_total,
                n.reduce_used,
                n.reduce_total,
                n.dynamic_blocks,
                n.dynamic_bytes,
                n.tx_util,
                n.rx_util,
            ));
        }
        for j in &self.jobs {
            s.push_str(&format!(
                "{{\"kind\":\"job\",\"t_us\":{},\"job\":{},\"phase\":\"{}\",\"maps_total\":{},\
                 \"maps_done\":{},\"node_local\":{},\"rack_local\":{},\"remote\":{},\
                 \"reduces_done\":{}}}\n",
                j.t_us,
                j.job,
                j.phase.label(),
                j.maps_total,
                j.maps_done,
                j.node_local,
                j.rack_local,
                j.remote,
                j.reduces_done,
            ));
        }
        s
    }

    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} ticks @ {:.0}s ({} cluster cols, {} node rows, {} job rows)",
            self.ticks(),
            self.interval_us as f64 / 1e6,
            self.columns.len(),
            self.nodes.len(),
            self.jobs.len(),
        )
    }

    /// A fixed-width terminal table over up to `max_rows` evenly spaced
    /// ticks of the headline cluster columns (what `dare-sim --telemetry`
    /// prints).
    pub fn summary_table(&self, max_rows: usize) -> String {
        const COLS: [&str; 6] = [
            "map_slots_used",
            "pending_tasks",
            "locality_rate",
            "dynamic_replicas",
            "under_replicated",
            "link_util_max",
        ];
        let mut s = format!(
            "{:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "t_s", "slots", "pending", "locality", "replicas", "underrep", "max_util"
        );
        if self.cluster.is_empty() || max_rows == 0 {
            return s;
        }
        let n = self.cluster.len();
        let step = n.div_ceil(max_rows).max(1);
        let mut picks: Vec<usize> = (0..n).step_by(step).collect();
        if *picks.last().unwrap() != n - 1 {
            picks.push(n - 1);
        }
        for i in picks {
            let row = &self.cluster[i];
            s.push_str(&format!("{:>8.0}", row.t_us as f64 / 1e6));
            for (w, name) in [(10, COLS[0]), (9, COLS[1]), (9, COLS[2]), (9, COLS[3]), (9, COLS[4]), (9, COLS[5])]
            {
                let cell = self
                    .column(name)
                    .map(|c| row.cells[c])
                    .unwrap_or(Value::U64(0));
                let txt = match cell {
                    Value::U64(v) => format!("{v}"),
                    Value::F64(v) => format!("{v:.3}"),
                };
                s.push_str(&format!(" {txt:>w$}", w = w));
            }
            s.push('\n');
        }
        s
    }
}

/// Validate a telemetry JSONL export against the schema: every line is a
/// flat object whose first key is `kind` (one of `cluster`/`node`/`job`)
/// followed by `t_us`; all lines of one kind share an identical key
/// sequence; `t_us` is non-decreasing within each kind; values are
/// unquoted numbers except `phase`, which is one of the job-phase labels.
pub fn validate_jsonl(jsonl: &str) -> Result<(), String> {
    let mut schema: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    let mut last_t: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let inner = line
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .ok_or_else(|| at("not a JSON object"))?;
        let mut keys = Vec::new();
        let mut kind = String::new();
        let mut t_us: Option<u64> = None;
        for (i, field) in inner.split(',').enumerate() {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| at(&format!("malformed field {field:?}")))?;
            let key = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| at(&format!("unquoted key in {field:?}")))?;
            match (i, key) {
                (0, "kind") => {
                    kind = value.trim_matches('"').to_string();
                    if !["cluster", "node", "job"].contains(&kind.as_str()) {
                        return Err(at(&format!("unknown kind {kind:?}")));
                    }
                }
                (0, _) => return Err(at("first key must be \"kind\"")),
                (1, "t_us") => {
                    t_us = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| at(&format!("bad t_us {value:?}")))?,
                    );
                }
                (1, _) => return Err(at("second key must be \"t_us\"")),
                _ => {
                    if key == "phase" {
                        let v = value.trim_matches('"');
                        if !["running", "done", "failed"].contains(&v) {
                            return Err(at(&format!("bad phase {v:?}")));
                        }
                    } else if value.parse::<f64>().is_err() {
                        return Err(at(&format!("non-numeric value for {key:?}: {value:?}")));
                    }
                }
            }
            keys.push(key.to_string());
        }
        let t = t_us.ok_or_else(|| at("missing t_us"))?;
        if let Some(&prev) = last_t.get(&kind) {
            if t < prev {
                return Err(at(&format!("t_us went backwards for kind {kind:?}")));
            }
        }
        last_t.insert(kind.clone(), t);
        match schema.get(&kind) {
            None => {
                schema.insert(kind, keys);
            }
            Some(expect) => {
                if *expect != keys {
                    return Err(at(&format!("key sequence drifted for kind {kind:?}")));
                }
            }
        }
    }
    if !schema.contains_key("cluster") {
        return Err("no cluster rows".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;
    use dare_simcore::SimTime;

    fn sample_telemetry() -> Telemetry {
        let mut reg = MetricRegistry::new();
        let slots = reg.gauge_int("map_slots_used");
        let rate = reg.gauge_float("locality_rate");
        reg.set_int(slots, 3);
        reg.set_float(rate, 0.5);
        reg.sample(SimTime::from_secs(30));
        reg.set_int(slots, 4);
        reg.sample(SimTime::from_secs(60));
        let (columns, cluster) = reg.into_series();
        Telemetry {
            interval_us: 30_000_000,
            columns,
            cluster,
            nodes: vec![NodeSample {
                t_us: 30_000_000,
                node: 0,
                alive: true,
                advertised: true,
                map_used: 1,
                map_total: 2,
                reduce_used: 0,
                reduce_total: 2,
                dynamic_blocks: 1,
                dynamic_bytes: 128,
                tx_util: 0.25,
                rx_util: 0.0,
            }],
            jobs: vec![JobSample {
                t_us: 30_000_000,
                job: 0,
                phase: JobPhase::Running,
                maps_total: 4,
                maps_done: 2,
                node_local: 1,
                rack_local: 1,
                remote: 0,
                reduces_done: 0,
            }],
        }
    }

    #[test]
    fn csv_has_fixed_header_and_rows() {
        let t = sample_telemetry();
        let csv = t.cluster_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_us,map_slots_used,locality_rate"));
        assert_eq!(lines.next(), Some("30000000,3,0.500000"));
        assert_eq!(lines.next(), Some("60000000,4,0.500000"));
        assert!(t.nodes_csv().starts_with("t_us,node,alive"));
        assert!(t.jobs_csv().starts_with("t_us,job,phase"));
    }

    #[test]
    fn jsonl_roundtrips_the_validator() {
        let t = sample_telemetry();
        let jsonl = t.to_jsonl();
        validate_jsonl(&jsonl).expect("schema-valid export");
        assert!(jsonl.starts_with("{\"kind\":\"cluster\",\"t_us\":30000000"));
        assert!(jsonl.contains("\"kind\":\"node\""));
        assert!(jsonl.contains("\"phase\":\"running\""));
    }

    #[test]
    fn validator_rejects_drift() {
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl("{\"kind\":\"bogus\",\"t_us\":1}\n").is_err());
        assert!(validate_jsonl("{\"t_us\":1,\"kind\":\"cluster\"}\n").is_err());
        // t_us going backwards within a kind
        let back = "{\"kind\":\"cluster\",\"t_us\":5,\"x\":1}\n\
                    {\"kind\":\"cluster\",\"t_us\":4,\"x\":1}\n";
        assert!(validate_jsonl(back).is_err());
        // key sequence drift within a kind
        let drift = "{\"kind\":\"cluster\",\"t_us\":5,\"x\":1}\n\
                     {\"kind\":\"cluster\",\"t_us\":6,\"y\":1}\n";
        assert!(validate_jsonl(drift).is_err());
        // no cluster rows at all
        assert!(validate_jsonl("{\"kind\":\"node\",\"t_us\":1,\"node\":0}\n").is_err());
    }

    #[test]
    fn summary_table_picks_spaced_rows() {
        let t = sample_telemetry();
        let table = t.summary_table(10);
        assert!(table.contains("t_s"));
        assert_eq!(table.lines().count(), 3, "header + 2 ticks");
        assert!(t.summary().contains("2 ticks"));
        assert_eq!(t.value(0, "map_slots_used"), Some(Value::U64(3)));
        assert_eq!(t.value(0, "missing"), None);
    }
}

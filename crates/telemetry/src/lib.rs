//! # dare-telemetry — sampled cluster-state time-series
//!
//! `dare-trace` records *events* (what happened, one record per decision);
//! this crate records *state* (what the cluster looked like, one row per
//! sampling tick). The engine schedules a periodic sampler on the simulated
//! clock (`SimConfig::telemetry`) and snapshots slot occupancy, queue
//! depth, cumulative locality, replica overhead, under-replication, link
//! utilization and fault-counter deltas — with per-node and per-job
//! breakdowns — into a [`Telemetry`] value on the run's `SimResult`.
//!
//! Layers:
//! - [`registry`]: the metric registry — named counters, gauges and
//!   windowed histograms (P²-backed via `dare_simcore::stats::LatencyStat`)
//!   whose registration order *is* the cluster-series column schema.
//! - [`series`]: the sealed [`Telemetry`] time-series with byte-stable CSV
//!   and JSONL exporters, a JSONL schema validator, and the terminal
//!   summary table `dare-sim --telemetry` prints.
//! - [`profile`]: the wall-clock self-profiler wrapped around the engine's
//!   event-dispatch arms (sched/dfs/net/fault) and its
//!   `results/BENCH_profile.json` report format.
//!
//! Sampling is observation-only and zero-cost when disabled: the engine
//! guards every telemetry touch behind one `Option` check and the sampler
//! never pushes events into the simulation queue, so an instrumented run
//! is bit-identical to a bare one (proven by `tests/telemetry.rs`).
//!
//! Like `dare-trace`, this crate depends only on `dare-simcore` so every
//! domain crate above it can feed it without cycles.

#![warn(missing_docs)]

pub mod profile;
pub mod registry;
pub mod series;

pub use profile::{validate_profile_json, ProfileReport, Profiler, Subsystem};
pub use registry::{MetricId, MetricKind, MetricRegistry, Value};
pub use series::{validate_jsonl, JobPhase, JobSample, NodeSample, Telemetry};

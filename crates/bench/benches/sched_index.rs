//! Before/after benchmark of the incremental locality index.
//!
//! "Before" is the retained naive-scan scheduler path
//! (`dare_sched::oracle`, O(tasks × replicas) per offer, full deficit
//! sort per Fair offer); "after" is the indexed production path. Both
//! replay the identical offer stream — the differential tests prove them
//! bit-identical — on the paper's 100-node EC2 profile, in a
//! scheduling-dominated configuration (many concurrent jobs, instant
//! task completion, so slot offers are all that costs anything).
//!
//! Also measures, with a counting global allocator, heap allocations per
//! scheduling probe: `classify` and the queue's `pick_best_for` must not
//! allocate at all on the borrow-based lookup path.
//!
//! Emits machine-readable results to `results/BENCH_sched.json` and
//! fails loudly if the indexed path is not at least 2× faster.

use dare_bench::microbench::{black_box, Runner};
use dare_core::PolicyKind;
use dare_dfs::BlockId;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_net::{ClusterProfile, NodeId, Topology};
use dare_sched::locality::classify;
use dare_sched::oracle::{NaiveFairScheduler, NaiveFifoScheduler};
use dare_sched::{
    FairScheduler, FifoScheduler, JobId, JobQueue, PendingTask, Scheduler, TableLookup, TaskId,
};
use dare_simcore::{DetRng, SimTime};
use dare_workload::swim::{synthesize, SwimParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` allocator wrapper that counts allocation events.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const JOBS: u32 = 64;
const TASKS_PER_JOB: usize = 256;
const BLOCKS: u64 = 2048;
const REPLICAS: u32 = 3;
/// Replicas live on this many nodes — the paper's skewed pre-replication
/// placement, where a popular dataset's blocks sit on a small fraction
/// of a big cluster. Most slot offers then come from nodes holding no
/// replica of any pending task: the naive scan's worst case (it only
/// early-exits on a node-local hit) and the scheduling-dominated regime
/// the index exists for.
const HOT_NODES: u32 = 10;

/// The paper's 100-node EC2 topology (99 workers).
fn ec2_topology() -> Topology {
    let mut rng = DetRng::new(0xEC2);
    ClusterProfile::ec2().build_topology(&mut rng)
}

/// Skewed placement: every block's replicas land on the hot subset.
fn layout() -> TableLookup {
    let mut t = TableLookup::new();
    for b in 0..BLOCKS {
        let locs: Vec<u32> = (0..REPLICAS as u64)
            // offsets 0,3,6 are distinct mod HOT_NODES, so no dedup needed
            .map(|i| ((b * 7 + i * 3) % HOT_NODES as u64) as u32)
            .collect();
        t.set(b, &locs);
    }
    t
}

fn fill_queue(lookup: &TableLookup, topo: &Topology) -> JobQueue {
    let mut q = JobQueue::new();
    for j in 0..JOBS {
        let tasks: Vec<PendingTask> = (0..TASKS_PER_JOB)
            .map(|t| PendingTask {
                task: TaskId(t as u32),
                block: BlockId((j as u64 * 131 + t as u64 * 17) % BLOCKS),
            })
            .collect();
        q.add_job(JobId(j), SimTime::from_secs(j as u64), tasks, lookup, topo);
    }
    q
}

/// Offer slots round-robin until every task is handed out; completions
/// are instant so the drain cost is pure scheduling.
fn drain(sched: &mut dyn Scheduler, q: &mut JobQueue, lookup: &TableLookup, topo: &Topology) -> u64 {
    let nodes = topo.nodes();
    let mut n = 0u32;
    let mut assigned = 0u64;
    let mut idle = 0u32;
    while q.has_pending() && idle < 8 * nodes {
        let node = NodeId(n % nodes);
        n += 1;
        match sched.pick_map(q, node, lookup, topo, SimTime::ZERO) {
            Some(a) => {
                q.on_map_complete(a.job);
                assigned += 1;
                idle = 0;
            }
            None => idle += 1,
        }
    }
    assigned
}

struct PairResult {
    scheduler: &'static str,
    naive_ns: f64,
    indexed_ns: f64,
}

impl PairResult {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.indexed_ns
    }
}

fn offer_replay(r: &mut Runner, topo: &Topology, lookup: &TableLookup) -> Vec<PairResult> {
    type MkSched = fn(bool) -> Box<dyn Scheduler>;
    let variants: [(&'static str, MkSched); 2] = [
        ("fifo", |naive| {
            if naive {
                Box::new(NaiveFifoScheduler::new())
            } else {
                Box::new(FifoScheduler::new())
            }
        }),
        ("fair", |naive| {
            if naive {
                Box::new(NaiveFairScheduler::new())
            } else {
                Box::new(FairScheduler::new())
            }
        }),
    ];
    let expected = JOBS as u64 * TASKS_PER_JOB as u64;
    variants
        .into_iter()
        .map(|(name, mk)| {
            let mut measure = |naive: bool| {
                let label = if naive { "naive" } else { "indexed" };
                r.bench_batched(
                    &format!("offer_replay/{name}/{label}"),
                    || (mk(naive), fill_queue(lookup, topo)),
                    |(mut sched, mut q)| {
                        let got = drain(sched.as_mut(), &mut q, lookup, topo);
                        assert_eq!(got, expected, "drain must hand out every task");
                    },
                )
                .median_ns
            };
            let naive_ns = measure(true);
            let indexed_ns = measure(false);
            PairResult {
                scheduler: name,
                naive_ns,
                indexed_ns,
            }
        })
        .collect()
}

/// Allocation events per probe over `n` probes of `f` — must be 0.0 for
/// the zero-allocation acceptance check.
fn allocs_per_probe(n: u64, mut f: impl FnMut(u64)) -> f64 {
    // Warm-up: let any lazily grown scratch reach steady state.
    for i in 0..64 {
        f(i);
    }
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    for i in 0..n {
        f(i);
    }
    (ALLOC_EVENTS.load(Ordering::Relaxed) - before) as f64 / n as f64
}

fn engine_wallclock(r: &mut Runner) -> PairResult {
    let wl = synthesize(
        "bench",
        &SwimParams {
            jobs: if r.quick { 30 } else { 100 },
            ..SwimParams::wl1()
        },
        7,
    );
    let mut measure = |naive: bool| {
        let label = if naive { "naive" } else { "indexed" };
        let wl = &wl;
        r.bench(&format!("engine_ec2/fair/{label}"), move || {
            let mut cfg = SimConfig::ec2(
                PolicyKind::elephant_default(),
                SchedulerKind::fair_default(),
                7,
            );
            cfg.naive_scan = naive;
            black_box(dare_mapred::run(cfg, wl))
        })
        .median_ns
    };
    let naive_ns = measure(true);
    let indexed_ns = measure(false);
    PairResult {
        scheduler: "engine-ec2-fair",
        naive_ns,
        indexed_ns,
    }
}

fn main() {
    let mut r = Runner::from_env();
    let topo = ec2_topology();
    let lookup = layout();

    // -- Scheduling-dominated offer replay: naive scan vs index. --------
    let pairs = offer_replay(&mut r, &topo, &lookup);

    // -- Zero-allocation probes. ----------------------------------------
    let classify_allocs = {
        let lookup = &lookup;
        let topo = &topo;
        allocs_per_probe(100_000, |i| {
            black_box(classify(
                BlockId(i % BLOCKS),
                NodeId((i % topo.nodes() as u64) as u32),
                lookup,
                topo,
            ));
        })
    };
    let q = fill_queue(&lookup, &topo);
    let probe_allocs = allocs_per_probe(100_000, |i| {
        black_box(q.pick_best_for(
            JobId((i % JOBS as u64) as u32),
            NodeId((i % topo.nodes() as u64) as u32),
            &topo,
        ));
    });
    println!("classify allocations/probe:      {classify_allocs}");
    println!("pick_best_for allocations/probe: {probe_allocs}");

    // -- End-to-end engine wall clock on the EC2 profile. ---------------
    let engine = engine_wallclock(&mut r);

    // -- Emit BENCH_sched.json. -----------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"jobs\": {}, \"tasks_per_job\": {}, \"blocks\": {}, \"replicas\": {}, \"hot_nodes\": {}, \"quick\": {}}},\n",
        topo.nodes(), JOBS, TASKS_PER_JOB, BLOCKS, REPLICAS, HOT_NODES, r.quick
    ));
    json.push_str("  \"offer_replay\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"naive_ns\": {:.1}, \"indexed_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            p.scheduler,
            p.naive_ns,
            p.indexed_ns,
            p.speedup(),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"engine_wallclock\": {{\"profile\": \"{}\", \"naive_ns\": {:.1}, \"indexed_ns\": {:.1}, \"speedup\": {:.2}}},\n",
        engine.scheduler, engine.naive_ns, engine.indexed_ns, engine.speedup()
    ));
    json.push_str(&format!(
        "  \"classify_allocs_per_probe\": {classify_allocs},\n  \"pick_probe_allocs_per_probe\": {probe_allocs}\n}}\n"
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_sched.json");
    std::fs::write(&path, &json).expect("write BENCH_sched.json");
    println!("wrote {}", path.display());

    // -- Acceptance gates. ----------------------------------------------
    assert_eq!(classify_allocs, 0.0, "classify must not heap-allocate");
    assert_eq!(probe_allocs, 0.0, "pick_best_for must not heap-allocate");
    for p in &pairs {
        assert!(
            p.speedup() >= 2.0,
            "indexed {} path must be >= 2x the naive scan (got {:.2}x)",
            p.scheduler,
            p.speedup()
        );
    }
    r.finish("sched_index");
}

//! Micro-benchmarks of the core data structures: the ElephantTrap circular
//! list vs the greedy LRU queue — the per-task cost of each policy's hot
//! path, and of the name-node lookup the scheduler hammers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dare_core::{build_policy, CircularTrap, PolicyCtx, PolicyKind};
use dare_dfs::{BlockId, FileId};
use dare_simcore::DetRng;

const BLK: u64 = 128 * (1 << 20);

fn bench_circular_trap(c: &mut Criterion) {
    let mut g = c.benchmark_group("circular_trap");
    for &size in &[16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("touch", size), &size, |b, &n| {
            let mut trap = CircularTrap::new();
            for k in 0..n as u64 {
                trap.insert(k);
            }
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % n as u64;
                black_box(trap.touch(&i))
            });
        });
        g.bench_with_input(BenchmarkId::new("victim_search", size), &size, |b, &n| {
            let mut trap = CircularTrap::new();
            for k in 0..n as u64 {
                trap.insert(k);
                for _ in 0..4 {
                    trap.touch(&k);
                }
            }
            b.iter(|| black_box(trap.find_victim(1, |_| true)));
        });
    }
    g.finish();
}

fn policy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_on_map_task");
    let kinds = [
        ("vanilla", PolicyKind::Vanilla),
        ("lru", PolicyKind::GreedyLru),
        ("elephant", PolicyKind::ElephantTrap { p: 0.3, threshold: 1 }),
        ("lfu", PolicyKind::Lfu),
    ];
    for (name, kind) in kinds {
        g.bench_function(name, |b| {
            let mut policy = build_policy(kind, 64 * BLK);
            let mut rng = DetRng::new(7);
            let mut wl = DetRng::new(8);
            b.iter(|| {
                let block = wl.index(256) as u64;
                black_box(policy.on_map_task(PolicyCtx {
                    block: BlockId(block),
                    file: FileId((block / 4) as u32),
                    block_bytes: BLK,
                    is_local: wl.coin(0.5),
                    rng: &mut rng,
                }))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_circular_trap, policy_throughput);
criterion_main!(benches);

//! Micro-benchmarks of the core data structures: the ElephantTrap circular
//! list vs the greedy LRU queue — the per-task cost of each policy's hot
//! path, and of the name-node lookup the scheduler hammers.

use dare_bench::microbench::{black_box, Runner};
use dare_core::{build_policy, CircularTrap, PolicyCtx, PolicyKind};
use dare_dfs::{BlockId, FileId};
use dare_simcore::DetRng;

const BLK: u64 = 128 * (1 << 20);

fn bench_circular_trap(r: &mut Runner) {
    for &size in &[16usize, 64, 256] {
        let mut trap = CircularTrap::new();
        for k in 0..size as u64 {
            trap.insert(k);
        }
        let mut i = 0u64;
        r.bench(&format!("circular_trap/touch/{size}"), move || {
            i = (i + 7) % size as u64;
            black_box(trap.touch(&i))
        });

        let mut trap = CircularTrap::new();
        for k in 0..size as u64 {
            trap.insert(k);
            for _ in 0..4 {
                trap.touch(&k);
            }
        }
        r.bench(&format!("circular_trap/victim_search/{size}"), move || {
            black_box(trap.find_victim(1, |_| true))
        });
    }
}

fn policy_throughput(r: &mut Runner) {
    let kinds = [
        ("vanilla", PolicyKind::Vanilla),
        ("lru", PolicyKind::GreedyLru),
        ("elephant", PolicyKind::ElephantTrap { p: 0.3, threshold: 1 }),
        ("lfu", PolicyKind::Lfu),
    ];
    for (name, kind) in kinds {
        let mut policy = build_policy(kind, 64 * BLK);
        let mut rng = DetRng::new(7);
        let mut wl = DetRng::new(8);
        r.bench(&format!("policy_on_map_task/{name}"), move || {
            let block = wl.index(256) as u64;
            black_box(policy.on_map_task(PolicyCtx {
                block: BlockId(block),
                file: FileId((block / 4) as u32),
                block_bytes: BLK,
                is_local: wl.coin(0.5),
                rng: &mut rng,
            }))
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_circular_trap(&mut r);
    policy_throughput(&mut r);
    r.finish("structures");
}

//! End-to-end simulation throughput: how fast the engine replays a
//! reduced trace under each policy. This is the cost of one cell of the
//! Figs. 7-10 matrices and bounds how large a parameter sweep stays
//! interactive.

use dare_bench::microbench::{black_box, Runner};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_workload::swim::{synthesize, SwimParams};

fn main() {
    let mut r = Runner::from_env();
    let wl = synthesize(
        "bench",
        &SwimParams {
            jobs: 100,
            ..SwimParams::wl1()
        },
        7,
    );
    for (name, policy) in [
        ("vanilla", PolicyKind::Vanilla),
        ("lru", PolicyKind::GreedyLru),
        ("elephant", PolicyKind::elephant_default()),
    ] {
        for (sname, sched) in [
            ("fifo", SchedulerKind::Fifo),
            ("fair", SchedulerKind::fair_default()),
        ] {
            let wl = &wl;
            r.bench(&format!("endtoend_sim/{name}/{sname}"), move || {
                let cfg = SimConfig::cct(policy, sched, 7);
                black_box(dare_mapred::run(cfg, wl))
            });
        }
    }
    r.finish("endtoend");
}

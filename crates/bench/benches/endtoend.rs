//! End-to-end simulation throughput: how fast the engine replays a
//! reduced trace under each policy. This is the cost of one cell of the
//! Figs. 7-10 matrices and bounds how large a parameter sweep stays
//! interactive.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_workload::swim::{synthesize, SwimParams};

fn endtoend(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend_sim");
    g.sample_size(20);
    let wl = synthesize(
        "bench",
        &SwimParams {
            jobs: 100,
            ..SwimParams::wl1()
        },
        7,
    );
    for (name, policy) in [
        ("vanilla", PolicyKind::Vanilla),
        ("lru", PolicyKind::GreedyLru),
        ("elephant", PolicyKind::elephant_default()),
    ] {
        for (sname, sched) in [
            ("fifo", SchedulerKind::Fifo),
            ("fair", SchedulerKind::fair_default()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, sname),
                &(policy, sched),
                |b, &(policy, sched)| {
                    b.iter(|| {
                        let cfg = SimConfig::cct(policy, sched, 7);
                        black_box(dare_mapred::run(cfg, &wl))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, endtoend);
criterion_main!(benches);

//! Micro-benchmarks of the simulator substrates: scheduler slot-offer hot
//! path, name-node location lookups and report processing, and flow-level
//! network churn.

use dare_bench::microbench::{black_box, Runner};
use dare_dfs::{BlockId, DefaultPlacement, Dfs, DfsConfig};
use dare_mapred::DfsLookup;
use dare_net::flow::FlowSim;
use dare_net::{NodeId, Topology, MB};
use dare_sched::{
    FairScheduler, FifoScheduler, JobId, JobQueue, PendingTask, Scheduler, TaskId,
};
use dare_simcore::{DetRng, SimTime};

fn build_dfs(nodes: u32, files: u32, blocks: u64) -> Dfs {
    let mut rng = DetRng::new(1);
    let mut dfs = Dfs::new(DfsConfig::default(), Topology::single_rack(nodes));
    for i in 0..files {
        dfs.create_file(
            SimTime::ZERO,
            format!("f{i}"),
            blocks * 128 * MB,
            None,
            &DefaultPlacement,
            &mut rng,
            false,
        );
    }
    dfs
}

fn fill_queue(dfs: &Dfs, jobs: u32, tasks_per_job: usize) -> JobQueue {
    let mut q = JobQueue::new();
    let nblocks = dfs.namenode().num_blocks() as u64;
    for j in 0..jobs {
        let tasks: Vec<PendingTask> = (0..tasks_per_job)
            .map(|t| PendingTask {
                task: TaskId(t as u32),
                block: BlockId((j as u64 * 31 + t as u64 * 7) % nblocks),
            })
            .collect();
        q.add_job(
            JobId(j),
            SimTime::from_secs(j as u64),
            tasks,
            &DfsLookup(dfs),
            dfs.topology(),
        );
    }
    q
}

fn scheduler_pick(r: &mut Runner) {
    let dfs = build_dfs(19, 64, 4);
    type MkSched = fn() -> Box<dyn Scheduler>;
    let variants: [(&str, MkSched); 2] = [
        ("fifo", || Box::new(FifoScheduler::new())),
        ("fair", || Box::new(FairScheduler::new())),
    ];
    for (name, mk) in variants {
        for &jobs in &[4u32, 32] {
            r.bench_batched(
                &format!("scheduler_pick_map/{name}/{jobs}"),
                || (mk(), fill_queue(&dfs, jobs, 8)),
                |(mut sched, mut q)| {
                    let lookup = DfsLookup(&dfs);
                    let mut node = 0u32;
                    while let Some(a) = sched.pick_map(
                        &mut q,
                        NodeId(node % 19),
                        &lookup,
                        dfs.topology(),
                        SimTime::ZERO,
                    ) {
                        black_box(a);
                        node += 1;
                    }
                },
            );
        }
    }
}

fn namenode_ops(r: &mut Runner) {
    let dfs = build_dfs(19, 128, 4);
    let nblocks = dfs.namenode().num_blocks() as u64;
    let mut i = 0u64;
    r.bench("namenode/locations_lookup", move || {
        i = (i.wrapping_mul(2862933555777941757).wrapping_add(3037000493)) % nblocks;
        black_box(dfs.visible_locations(BlockId(i)).len())
    });
    r.bench_batched(
        "namenode/dynamic_report_cycle",
        || build_dfs(19, 16, 4),
        |mut dfs| {
            let n = dfs.namenode().num_blocks() as u64;
            for i in 0..n {
                let b = BlockId(i);
                let node = (0..19)
                    .map(NodeId)
                    .find(|&nd| !dfs.is_physically_present(nd, b));
                if let Some(node) = node {
                    dfs.insert_dynamic(SimTime::ZERO, node, b);
                }
            }
            dfs.process_reports(SimTime::from_secs(10));
            black_box(dfs.total_dynamic_bytes())
        },
    );
}

fn flow_churn(r: &mut Runner) {
    for &nodes in &[20usize, 100] {
        r.bench_batched(
            &format!("flowsim/churn/{nodes}"),
            || FlowSim::new(vec![100.0; nodes], 1.5),
            move |mut sim| {
                let n = nodes;
                let mut t = SimTime::ZERO;
                let mut rng = DetRng::new(3);
                for i in 0..200u64 {
                    let src = NodeId(rng.index(n) as u32);
                    let mut dst = NodeId(rng.index(n) as u32);
                    if dst == src {
                        dst = NodeId(((src.0 as usize + 1) % n) as u32);
                    }
                    sim.start(t, src, dst, 16 * MB, i % 3 == 0);
                    if let Some((tc, _)) = sim.next_completion() {
                        if i % 4 == 0 {
                            t = tc;
                            black_box(sim.collect_completed(t));
                        }
                    }
                }
                while let Some((tc, _)) = sim.next_completion() {
                    t = tc;
                    sim.collect_completed(t);
                }
                black_box(sim.total_started())
            },
        );
    }
}

fn main() {
    let mut r = Runner::from_env();
    scheduler_pick(&mut r);
    namenode_ops(&mut r);
    flow_churn(&mut r);
    r.finish("subsystems");
}

//! Overhead guard for the chunked `parallel_map_threads` dispatch.
//!
//! The original implementation round-tripped every item through its own
//! `Mutex<Option<T>>`, so dispatch cost scaled with the item count. The
//! chunked rewrite takes two lock operations per *chunk* and
//! `chunk_count` caps chunks at `8 × threads` — these tests pin both the
//! structural bound and (with a deliberately generous wall-clock margin,
//! since CI runners can be single-core and noisy) the end-to-end cost of
//! pushing 100 000 trivial items through the fan-out.

use dare_bench::microbench::Runner;
use dare_simcore::parallel::{chunk_count, parallel_map_threads};

#[test]
fn lock_traffic_scales_with_threads_not_items() {
    // 100k trivial items at 4 workers: 32 chunks → 64 lock operations,
    // regardless of n. Under per-item locking this would be 200 000.
    assert_eq!(chunk_count(100_000, 4), 32);
    assert_eq!(chunk_count(1_000_000, 4), 32);
    assert_eq!(chunk_count(1_000_000, 16), 128);
    // Small inputs never get more chunks than items.
    assert_eq!(chunk_count(5, 4), 5);
}

#[test]
fn hundred_k_trivial_items_not_dominated_by_dispatch() {
    const N: u64 = 100_000;
    let work = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7);

    // Quick mode: 3 rounds, ~20 ms measurement windows — enough to get
    // a stable median without slowing the suite down.
    let mut r = Runner::new(true);
    let seq = r
        .bench("map/sequential/100k", || {
            (0..N).map(work).collect::<Vec<_>>()
        })
        .median_ns;
    let par = r
        .bench("parallel_map_threads/4/100k", || {
            parallel_map_threads((0..N).collect(), 4, work)
        })
        .median_ns;

    // Thread spawn + chunk handoff must stay a bounded multiple of the
    // raw sequential map. The bound is deliberately loose (single-core
    // CI, scheduler jitter); per-item locking regressions blow through
    // it by orders of magnitude on top of the structural guard above.
    let budget_ns = seq * 100.0 + 50e6;
    assert!(
        par <= budget_ns,
        "parallel dispatch overhead regressed: {par:.0} ns/iter parallel \
         vs {seq:.0} ns/iter sequential (budget {budget_ns:.0} ns)"
    );
}

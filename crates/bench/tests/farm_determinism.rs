//! End-to-end determinism of the experiment farm through the *real*
//! engine: the quick farm matrix, run single-threaded and with eight
//! workers, must merge to byte-identical CSV and JSON. This is the
//! acceptance criterion of the sweep harness — per-cell results are a
//! pure function of (coordinates, derived seed), never of thread count
//! or completion order.

use dare_bench::experiments::farm;
use dare_farm::{aggregate_csv, cell_seed, merged_json, per_cell_csv, run_sweep, RunOptions};

#[test]
fn quick_farm_matrix_is_byte_stable_across_thread_counts() {
    // 2 schedulers x 2 policies x 1 profile x 2 fault levels x 2 seeds
    // = 16 engine runs per pass; quick cells use 6-job workloads.
    let spec = farm::spec(20110926, 2, true);
    let one = run_sweep(&spec, &farm::METRICS, RunOptions::quiet(1), |c| {
        farm::run_cell(c, true)
    });
    let eight = run_sweep(&spec, &farm::METRICS, RunOptions::quiet(8), |c| {
        farm::run_cell(c, true)
    });

    assert_eq!(
        per_cell_csv(&one),
        per_cell_csv(&eight),
        "per-cell CSV depends on thread count"
    );
    assert_eq!(
        aggregate_csv(&one),
        aggregate_csv(&eight),
        "aggregate CSV depends on thread count"
    );
    assert_eq!(
        merged_json(&one),
        merged_json(&eight),
        "merged JSON depends on thread count"
    );

    // Sanity on the content itself: every cell produced the full metric
    // vector and the calm cells completed all jobs without failures.
    let jobs_failed = farm::METRICS
        .iter()
        .position(|m| *m == "jobs_failed")
        .unwrap();
    for run in &one.runs {
        assert_eq!(run.values.len(), farm::METRICS.len());
        if run.cell.coord("faults") == Some("calm") {
            assert_eq!(
                run.values[jobs_failed], 0.0,
                "calm cell {} failed jobs",
                run.cell.key()
            );
        }
    }
}

#[test]
fn farm_seeds_anchor_to_the_legacy_single_seed_runs() {
    // Replicate 0 of an all-treatment coordinate must reuse the base
    // seed verbatim — that is what keeps `--seeds 1` output aligned
    // with the historical single-seed tables.
    assert_eq!(cell_seed(20110926, "", 0), 20110926);
    // The farm spec has seeded axes (profile, faults), so its cells hash
    // them in: same coordinate, different replicate → different seeds.
    let spec = farm::spec(7, 3, true);
    let cells = spec.expand();
    let first_key = cells[0].key();
    let seeds: Vec<u64> = cells
        .iter()
        .filter(|c| c.key() == first_key)
        .map(|c| c.seed)
        .collect();
    assert_eq!(seeds.len(), 3);
    assert_ne!(seeds[0], seeds[1]);
    assert_ne!(seeds[1], seeds[2]);
}

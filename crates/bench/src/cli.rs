//! Command-line driver shared by the `experiments` binary and the
//! `dare-sim experiments` subcommand.
//!
//! ```text
//! experiments [ids...] [--seed N] [--seeds N]
//! ```
//!
//! `--seed` sets the base seed (default [`DEFAULT_SEED`]); `--seeds`
//! replicates every sweep over N derived seeds, turning each value
//! column into a mean with appended `_std`/`_ci95` columns. A leading
//! literal `--` is skipped so `dare-sim experiments -- all --seeds 5`
//! works the same as passing the ids directly.

use crate::experiments::*;
use crate::harness::DEFAULT_SEED;

/// Parse `args` (not including the program name) and run the requested
/// experiments. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut which: Vec<String> = Vec::new();
    let mut seed = DEFAULT_SEED;
    let mut seeds: u32 = 1;
    let mut it = args.iter().enumerate().peekable();
    while let Some((i, a)) = it.next() {
        match a.as_str() {
            // Allow `experiments -- all` (cargo/forwarding idiom).
            "--" if i == 0 => {}
            "--seed" => match it.next().and_then(|(_, s)| s.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--seeds" => match it.next().and_then(|(_, s)| s.parse().ok()) {
                Some(v) if v >= 1 => seeds = v,
                _ => return usage("--seeds needs an integer >= 1"),
            },
            "--help" | "-h" => return usage(""),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }

    let t0 = std::time::Instant::now();
    for w in &which {
        let code = run_one(w, seed, seeds);
        if code != 0 {
            return code;
        }
    }
    eprintln!("\n[experiments] done in {:.1}s", t0.elapsed().as_secs_f64());
    0
}

fn run_one(which: &str, seed: u64, seeds: u32) -> i32 {
    match which {
        "table1" => tables::table1(seed, seeds),
        "table2" => tables::table2(seed, seeds),
        "fig1" => fig1::run(seed, seeds),
        "fig2" => fig2::run(seed, seeds),
        "fig3" => fig3::run(seed, seeds),
        "fig4" => fig45::fig4(seed, seeds),
        "fig5" => fig45::fig5(seed, seeds),
        "fig6" => fig6::run(seed, seeds),
        "fig7" => fig7::run(seed, seeds),
        "fig8" => fig8::run(seed, seeds),
        "fig9" => fig9::run(seed, seeds),
        "fig10" => fig10::run(seed, seeds),
        "fig11" => fig11::run(seed, seeds),
        "ablation" => ablation::run(seed, seeds),
        "resilience" => resilience::run(seed, seeds),
        "durability" => durability::run(seed, seeds),
        "farm" => farm::run(seed, seeds),
        "verify" => {
            if verify::run_all(seed) > 0 {
                return 1;
            }
        }
        "trace-smoke" => {
            if trace_smoke::run(seed) > 0 {
                return 1;
            }
        }
        "attribution" => {
            if attribution::run(seed, seeds) > 0 {
                return 1;
            }
        }
        "telemetry-smoke" => {
            if telemetry_smoke::run(seed) > 0 {
                return 1;
            }
        }
        "throughput" => {
            if throughput::run(seed) > 0 {
                return 1;
            }
        }
        "plots" => {
            let dir = crate::harness::csv_path("x");
            let dir = dir.parent().expect("csv dir").to_path_buf();
            let n = crate::plot::write_all(&dir);
            println!("[plots] wrote {n} gnuplot scripts to {}", dir.display());
        }
        "all" => {
            for id in [
                "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8", "fig9", "fig10", "fig11", "ablation", "resilience", "durability",
                "farm", "plots", "verify",
            ] {
                eprintln!("[experiments] running {id} (seed {seed}, seeds {seeds})");
                let code = run_one(id, seed, seeds);
                if code != 0 {
                    return code;
                }
            }
        }
        other => return usage(&format!("unknown experiment id: {other}")),
    }
    0
}

fn usage(err: &str) -> i32 {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments [ids...] [--seed N] [--seeds N]\n\
         ids: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 ablation resilience durability farm plots trace-smoke telemetry-smoke throughput attribution verify all\n\
         --seeds N replicates every sweep over N derived seeds (CI columns in the CSVs)"
    );
    if err.is_empty() {
        0
    } else {
        2
    }
}

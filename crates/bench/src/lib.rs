//! # dare-bench — experiment harness shared utilities
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper (see DESIGN.md's per-experiment index). This library holds the
//! pieces the experiment modules share: console table rendering, CSV
//! output under `results/`, and the standard run matrix
//! (policy × scheduler × workload) used by Figs. 7 and 10.

#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod microbench;
pub mod plot;

pub mod experiments {
    //! One module per paper artifact.
    pub mod ablation;
    pub mod attribution;
    pub mod durability;
    pub mod farm;
    pub mod fig1;
    pub mod fig10;
    pub mod fig11;
    pub mod fig2;
    pub mod fig3;
    pub mod fig45;
    pub mod fig6;
    pub mod fig7;
    pub mod fig8;
    pub mod fig9;
    pub mod resilience;
    pub mod tables;
    pub mod telemetry_smoke;
    pub mod throughput;
    pub mod trace_smoke;
    pub mod verify;
}

pub use harness::{csv_path, write_csv, Table};
pub use plot::{all_specs, PlotSpec};

//! Console tables, CSV output, and the shared run matrix.

use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig, SimResult};
use dare_simcore::stats::{summarize, Summary};
use dare_workload::Workload;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple fixed-width console table that doubles as a CSV buffer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            line(r);
        }
    }

    /// Serialize as CSV.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Where CSV results land (`results/` next to the workspace root, or the
/// current directory as a fallback).
pub fn csv_path(name: &str) -> PathBuf {
    let dir = if std::path::Path::new("results").is_dir() {
        PathBuf::from("results")
    } else {
        let candidate = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if candidate.is_dir() {
            candidate
        } else {
            PathBuf::from(".")
        }
    };
    dir.join(format!("{name}.csv"))
}

/// Write a table's CSV to `results/<name>.csv` (best effort; prints the
/// destination).
pub fn write_csv(name: &str, table: &Table) {
    let path = csv_path(name);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if f.write_all(table.to_csv().as_bytes()).is_ok() {
                println!("[csv] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[csv] could not write {}: {e}", path.display()),
    }
}

/// The paper's default seed for experiment runs; change with `--seed`.
pub const DEFAULT_SEED: u64 = 20110926;

/// One numeric column of a replicated experiment table.
#[derive(Debug, Clone, Copy)]
pub struct MetricCol {
    /// Column name (header cell).
    pub name: &'static str,
    /// Decimal places for the mean (spread columns get at least 3).
    pub prec: usize,
}

/// Shorthand [`MetricCol`] constructor.
pub const fn metric(name: &'static str, prec: usize) -> MetricCol {
    MetricCol { name, prec }
}

/// How to order the merged rows of a replicated experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOrder {
    /// Order of first appearance across replicates (fixed-structure
    /// experiments: the first replicate defines the rows).
    FirstAppearance,
    /// Sort by the first label parsed as a number — for experiments
    /// whose row set varies per seed (e.g. popularity ranks, burst
    /// windows), so late-appearing rows still land in axis order.
    NumericFirstLabel,
}

/// A replicated experiment's merged result: the printable/CSV table
/// (mean columns in the legacy positions, `_std`/`_ci95` appended) plus
/// the numeric summaries for JSON writers.
pub struct SeedTable {
    /// Console/CSV table.
    pub table: Table,
    /// Per-row label values and per-metric summaries, in table order.
    pub rows: Vec<(Vec<String>, Vec<Summary>)>,
    /// Replicates requested.
    pub seeds: u32,
}

/// Run `collect` once per replicate seed and merge the rows into means
/// with appended `<metric>_std` / `<metric>_ci95` columns.
///
/// Replicate seeds follow the farm's derivation rule
/// ([`dare_farm::cell_seed`] with no seeded coordinates), so replicate 0
/// *is* `base_seed` — a `--seeds 1` run reproduces the repo's historical
/// single-seed tables byte-for-byte except for the appended (empty)
/// spread columns. Rows are matched across replicates by their label
/// columns; spread columns are empty strings when a row has fewer than
/// two replicates. Mean columns keep their legacy positions so the
/// committed gnuplot scripts' 1-based column indices stay valid.
pub fn replicate_experiment<F>(
    title: &str,
    labels: &[&str],
    metrics: &[MetricCol],
    order: RowOrder,
    base_seed: u64,
    seeds: u32,
    collect: F,
) -> SeedTable
where
    F: Fn(u64) -> Vec<(Vec<String>, Vec<f64>)>,
{
    let seeds = seeds.max(1);
    // label-key -> (first-appearance index, per-metric samples)
    let mut merged: Vec<(Vec<String>, Vec<Vec<f64>>)> = Vec::new();
    let mut index: std::collections::HashMap<Vec<String>, usize> =
        std::collections::HashMap::new();
    for rep in 0..seeds {
        let seed = dare_farm::cell_seed(base_seed, "", rep);
        for (row_labels, values) in collect(seed) {
            assert_eq!(row_labels.len(), labels.len(), "label arity in {title}");
            assert_eq!(values.len(), metrics.len(), "metric arity in {title}");
            let at = *index.entry(row_labels.clone()).or_insert_with(|| {
                merged.push((row_labels, vec![Vec::new(); metrics.len()]));
                merged.len() - 1
            });
            for (samples, v) in merged[at].1.iter_mut().zip(values) {
                samples.push(v);
            }
        }
    }
    if order == RowOrder::NumericFirstLabel {
        merged.sort_by(|a, b| {
            let x: f64 = a.0[0].parse().unwrap_or(f64::MAX);
            let y: f64 = b.0[0].parse().unwrap_or(f64::MAX);
            x.total_cmp(&y)
        });
    }

    let mut header: Vec<&str> = labels.to_vec();
    for m in metrics {
        header.push(m.name);
    }
    let spread_names: Vec<(String, String)> = metrics
        .iter()
        .map(|m| (format!("{}_std", m.name), format!("{}_ci95", m.name)))
        .collect();
    for (s, c) in &spread_names {
        header.push(s);
        header.push(c);
    }
    let mut table = Table::new(title, &header);
    let mut rows = Vec::with_capacity(merged.len());
    for (row_labels, samples) in merged {
        let sums: Vec<Summary> = samples.iter().map(|s| summarize(s)).collect();
        let mut cells = row_labels.clone();
        for (m, s) in metrics.iter().zip(&sums) {
            cells.push(format!("{:.prec$}", s.mean, prec = m.prec));
        }
        for (m, s) in metrics.iter().zip(&sums) {
            if s.has_spread() {
                let p = m.prec.max(3);
                cells.push(format!("{:.p$}", s.std, p = p));
                cells.push(format!("{:.p$}", s.ci95, p = p));
            } else {
                cells.push(String::new());
                cells.push(String::new());
            }
        }
        table.row(cells);
        rows.push((row_labels, sums));
    }
    SeedTable { table, rows, seeds }
}

impl SeedTable {
    /// Print the table and write it to `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        self.table.print();
        write_csv(name, &self.table);
    }
}

/// One cell of the Figs. 7/10 matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Scheduler used.
    pub scheduler: SchedulerKind,
    /// Policy used.
    pub policy: PolicyKind,
    /// Workload name.
    pub workload: String,
    /// The run's results.
    pub result: SimResult,
}

/// Run the {vanilla, LRU, ElephantTrap} × scheduler matrix for one
/// workload on one base configuration, in parallel.
pub fn run_matrix(
    base: &SimConfig,
    workload: &Workload,
    schedulers: &[SchedulerKind],
) -> Vec<MatrixCell> {
    let policies = [
        PolicyKind::Vanilla,
        PolicyKind::GreedyLru,
        PolicyKind::elephant_default(),
    ];
    let mut cells: Vec<(SchedulerKind, PolicyKind)> = Vec::new();
    for &s in schedulers {
        for &p in &policies {
            cells.push((s, p));
        }
    }
    
    dare_simcore::parallel::parallel_map(cells, |(s, p)| {
        let mut cfg = base.clone();
        cfg.scheduler = s;
        cfg.policy = p;
        let result = dare_mapred::run(cfg, workload);
        MatrixCell {
            scheduler: s,
            policy: p,
            workload: workload.name.clone(),
            result,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["2".into(), "y".into()]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,x\n2,y\n");
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_path_resolves() {
        let p = csv_path("zzz");
        assert!(p.to_string_lossy().ends_with("zzz.csv"));
    }

    #[test]
    fn replicate_experiment_single_seed_matches_legacy_layout() {
        // seeds = 1: replicate 0 is the base seed itself, the mean
        // column carries the single run's value, and the appended
        // spread columns are empty — never NaN.
        let st = replicate_experiment(
            "t",
            &["k"],
            &[metric("v", 3)],
            RowOrder::FirstAppearance,
            77,
            1,
            |seed| {
                assert_eq!(seed, 77, "replicate 0 must be the base seed");
                vec![(vec!["a".into()], vec![1.5])]
            },
        );
        assert_eq!(st.table.to_csv(), "k,v,v_std,v_ci95\na,1.500,,\n");
        assert_eq!(st.rows[0].1[0].n, 1);
    }

    #[test]
    fn replicate_experiment_means_and_spread() {
        // Two replicates returning 1.0 and 3.0: mean 2, std √2,
        // ci95 = 1.96·√2/√2 = 1.96.
        let st = replicate_experiment(
            "t",
            &["k"],
            &[metric("v", 3)],
            RowOrder::FirstAppearance,
            77,
            2,
            |seed| vec![(vec!["a".into()], vec![if seed == 77 { 1.0 } else { 3.0 }])],
        );
        let s = st.rows[0].1[0];
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 2f64.sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96).abs() < 1e-12);
        assert!(st.table.to_csv().contains("a,2.000,1.414,1.960"));
    }

    #[test]
    fn replicate_experiment_aligns_variable_rows_numerically() {
        // Replicates disagree on the row set; merged rows sort by the
        // numeric first label and carry per-row replicate counts.
        let st = replicate_experiment(
            "t",
            &["rank"],
            &[metric("v", 1)],
            RowOrder::NumericFirstLabel,
            77,
            2,
            |seed| {
                if seed == 77 {
                    vec![
                        (vec!["1".into()], vec![10.0]),
                        (vec!["10".into()], vec![1.0]),
                    ]
                } else {
                    vec![
                        (vec!["1".into()], vec![12.0]),
                        (vec!["2".into()], vec![5.0]),
                    ]
                }
            },
        );
        let labels: Vec<&str> = st.rows.iter().map(|(l, _)| l[0].as_str()).collect();
        assert_eq!(labels, ["1", "2", "10"]);
        assert_eq!(st.rows[0].1[0].n, 2);
        assert_eq!(st.rows[1].1[0].n, 1);
    }
}

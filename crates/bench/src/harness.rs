//! Console tables, CSV output, and the shared run matrix.

use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig, SimResult};
use dare_workload::Workload;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple fixed-width console table that doubles as a CSV buffer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            line(r);
        }
    }

    /// Serialize as CSV.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Where CSV results land (`results/` next to the workspace root, or the
/// current directory as a fallback).
pub fn csv_path(name: &str) -> PathBuf {
    let dir = if std::path::Path::new("results").is_dir() {
        PathBuf::from("results")
    } else {
        let candidate = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if candidate.is_dir() {
            candidate
        } else {
            PathBuf::from(".")
        }
    };
    dir.join(format!("{name}.csv"))
}

/// Write a table's CSV to `results/<name>.csv` (best effort; prints the
/// destination).
pub fn write_csv(name: &str, table: &Table) {
    let path = csv_path(name);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if f.write_all(table.to_csv().as_bytes()).is_ok() {
                println!("[csv] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[csv] could not write {}: {e}", path.display()),
    }
}

/// The paper's default seed for experiment runs; change with `--seed`.
pub const DEFAULT_SEED: u64 = 20110926;

/// Mean, standard deviation, and 95 % confidence half-width over
/// replicated runs (normal approximation; fine for the ~10-seed
/// replications the `fig7ci` experiment uses).
#[derive(Debug, Clone, Copy)]
pub struct Replicated {
    /// Mean over seeds.
    pub mean: f64,
    /// Sample standard deviation over seeds.
    pub std: f64,
    /// 95 % confidence half-width (1.96 σ/√n).
    pub ci95: f64,
}

/// Summarize one metric across replicated runs.
pub fn replicate(values: &[f64]) -> Replicated {
    let mut st = dare_simcore::stats::OnlineStats::new();
    for &v in values {
        st.push(v);
    }
    let n = values.len().max(1) as f64;
    // sample std from population std
    let std = if values.len() > 1 {
        (st.variance() * n / (n - 1.0)).sqrt()
    } else {
        0.0
    };
    Replicated {
        mean: st.mean(),
        std,
        ci95: 1.96 * std / n.sqrt(),
    }
}

/// One cell of the Figs. 7/10 matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Scheduler used.
    pub scheduler: SchedulerKind,
    /// Policy used.
    pub policy: PolicyKind,
    /// Workload name.
    pub workload: String,
    /// The run's results.
    pub result: SimResult,
}

/// Run the {vanilla, LRU, ElephantTrap} × scheduler matrix for one
/// workload on one base configuration, in parallel.
pub fn run_matrix(
    base: &SimConfig,
    workload: &Workload,
    schedulers: &[SchedulerKind],
) -> Vec<MatrixCell> {
    let policies = [
        PolicyKind::Vanilla,
        PolicyKind::GreedyLru,
        PolicyKind::elephant_default(),
    ];
    let mut cells: Vec<(SchedulerKind, PolicyKind)> = Vec::new();
    for &s in schedulers {
        for &p in &policies {
            cells.push((s, p));
        }
    }
    
    dare_simcore::parallel::parallel_map(cells, |(s, p)| {
        let mut cfg = base.clone();
        cfg.scheduler = s;
        cfg.policy = p;
        let result = dare_mapred::run(cfg, workload);
        MatrixCell {
            scheduler: s,
            policy: p,
            workload: workload.name.clone(),
            result,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["2".into(), "y".into()]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,x\n2,y\n");
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_path_resolves() {
        let p = csv_path("zzz");
        assert!(p.to_string_lossy().ends_with("zzz.csv"));
    }
}

//! Telemetry smoke test: run the Fair + DARE-LRU golden scenario with
//! sampling and self-profiling on, validate the JSONL export against the
//! telemetry schema, check the exports are deterministic (two identical
//! runs serialize byte-for-byte), and drop the cluster time-series CSV
//! plus the per-subsystem `BENCH_profile.json` under `results/` (CI
//! uploads the CSV as an artifact and gates on the profile report).
//!
//! Runnable as `experiments -- telemetry-smoke`; exits non-zero through
//! the dispatcher when any check fails.

use dare_mapred::golden::{golden_scenarios, golden_workload};
use dare_mapred::{SimResult, TelemetryConfig};
use dare_telemetry::{validate_jsonl, validate_profile_json};

/// The golden scenario the smoke test samples: the one with the most
/// moving parts (delay scheduling + dynamic replication).
const SCENARIO: &str = "fair-dare-lru";

fn run_sampled() -> SimResult {
    let cfg = golden_scenarios()
        .into_iter()
        .find(|(n, _)| *n == SCENARIO)
        .expect("known golden scenario")
        .1
        .with_telemetry(TelemetryConfig::default())
        .with_self_profile();
    dare_mapred::run(cfg, &golden_workload())
}

/// Run the smoke test. Returns the number of failed checks (0 = the
/// telemetry is schema-valid, deterministic, and both artifacts landed).
pub fn run(_seed: u64) -> usize {
    // Golden scenarios are seed-pinned by design; `--seed` is ignored.
    let mut failed = 0usize;
    let r = run_sampled();
    let t = r.telemetry.as_ref().expect("telemetry recorded");
    println!("[telemetry-smoke] {SCENARIO}: {}", t.summary());

    let jsonl = t.to_jsonl();
    match validate_jsonl(&jsonl) {
        Ok(()) => println!("[telemetry-smoke] JSONL schema ... ok"),
        Err(e) => {
            eprintln!("[telemetry-smoke] invalid JSONL: {e}");
            failed += 1;
        }
    }

    // Byte-stable determinism: an identical second run must serialize
    // identically (CSV and JSONL).
    let r2 = run_sampled();
    let t2 = r2.telemetry.as_ref().expect("telemetry recorded");
    if t.cluster_csv() == t2.cluster_csv() && jsonl == t2.to_jsonl() {
        println!("[telemetry-smoke] determinism ... ok");
    } else {
        eprintln!("[telemetry-smoke] exports differ between identical runs");
        failed += 1;
    }

    let results = crate::harness::csv_path("x");
    let results = results.parent().expect("csv dir").to_path_buf();

    let csv_out = results.join(format!("telemetry_{SCENARIO}.csv"));
    match std::fs::write(&csv_out, t.cluster_csv()) {
        Ok(()) => println!(
            "[telemetry-smoke] wrote {} ({} ticks)",
            csv_out.display(),
            t.ticks()
        ),
        Err(e) => {
            eprintln!("[telemetry-smoke] could not write {}: {e}", csv_out.display());
            failed += 1;
        }
    }

    let profile = r.profile.expect("self-profile recorded");
    println!("[telemetry-smoke] profile: {}", profile.summary());
    let report = profile.to_json(SCENARIO);
    if let Err(e) = validate_profile_json(&report) {
        eprintln!("[telemetry-smoke] malformed profile report: {e}");
        failed += 1;
    }
    let profile_out = results.join("BENCH_profile.json");
    match std::fs::write(&profile_out, &report) {
        Ok(()) => println!("[telemetry-smoke] wrote {}", profile_out.display()),
        Err(e) => {
            eprintln!(
                "[telemetry-smoke] could not write {}: {e}",
                profile_out.display()
            );
            failed += 1;
        }
    }
    failed
}

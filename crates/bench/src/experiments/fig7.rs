//! Fig. 7 — data locality, normalized GMTT, and mean slowdown on the
//! 20-node CCT cluster, for wl1 and wl2 under FIFO and Fair scheduling,
//! comparing vanilla Hadoop, DARE/LRU, and DARE/ElephantTrap
//! (p = 0.3, threshold = 1, budget = 0.2).
//!
//! With `--seeds N` the whole matrix is replicated over N derived seeds;
//! the table's value columns become means and `_std`/`_ci95` columns are
//! appended. GMTT is normalized against the *same seed's* vanilla run of
//! the same (workload, scheduler) cell — the common-random-numbers
//! pairing the farm's seed rule guarantees — before averaging.

use crate::harness::{metric, replicate_experiment, run_matrix, MetricCol, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};

/// Paper reference points for the README/EXPERIMENTS comparison.
pub const PAPER_NOTES: &str = "paper: FIFO locality improves >7x; Fair reaches ~100% on wl2; \
GMTT -16%, slowdown -20% (CCT)";

/// Label columns shared with Fig. 10.
pub(crate) const LABELS: [&str; 3] = ["workload", "scheduler", "policy"];

/// Metric columns shared with Fig. 10.
pub(crate) const METRICS: [MetricCol; 7] = [
    metric("job_locality", 3),
    metric("task_locality", 3),
    metric("gmtt_s", 1),
    metric("gmtt_norm", 3),
    metric("slowdown", 3),
    metric("blocks_per_job", 2),
    metric("replicas", 0),
];

/// One seed's matrix rows for a set of workloads on a base-config
/// builder; shared with Fig. 10 (which runs wl1 on the EC2 profile).
pub(crate) fn collect_matrix(
    seed: u64,
    workloads: &[dare_workload::Workload],
    base: &dyn Fn(u64) -> SimConfig,
) -> Vec<(Vec<String>, Vec<f64>)> {
    let schedulers = [SchedulerKind::Fifo, SchedulerKind::fair_default()];
    let mut rows = Vec::new();
    for wl in workloads {
        let cells = run_matrix(&base(seed), wl, &schedulers);
        for c in &cells {
            // Normalize GMTT against the vanilla run of the same
            // (workload, scheduler) cell at this seed.
            let vanilla = cells
                .iter()
                .find(|v| {
                    v.workload == c.workload
                        && v.scheduler.label() == c.scheduler.label()
                        && v.policy == PolicyKind::Vanilla
                })
                .expect("matrix includes vanilla");
            let norm = dare_metrics::normalized_gmtt(&c.result.run, &vanilla.result.run);
            rows.push((
                vec![
                    c.workload.clone(),
                    c.scheduler.label().to_string(),
                    c.policy.label(),
                ],
                vec![
                    c.result.run.job_locality,
                    c.result.run.locality,
                    c.result.run.gmtt_secs,
                    norm,
                    c.result.run.mean_slowdown,
                    c.result.blocks_per_job,
                    c.result.replicas_created as f64,
                ],
            ));
        }
    }
    rows
}

/// Run the experiment over `seeds` replicates and emit the table.
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        &format!("fig7: locality / GMTT (normalized) / slowdown ({seeds} seed(s))"),
        &LABELS,
        &METRICS,
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |s| {
            collect_matrix(
                s,
                &[dare_workload::wl1(s), dare_workload::wl2(s)],
                &|s| SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, s),
            )
        },
    );
    st.emit("fig7");
}

//! Fig. 7 — data locality, normalized GMTT, and mean slowdown on the
//! 20-node CCT cluster, for wl1 and wl2 under FIFO and Fair scheduling,
//! comparing vanilla Hadoop, DARE/LRU, and DARE/ElephantTrap
//! (p = 0.3, threshold = 1, budget = 0.2).

use crate::harness::{replicate, run_matrix, write_csv, MatrixCell, Table};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;

/// Paper reference points for the README/EXPERIMENTS comparison.
pub const PAPER_NOTES: &str = "paper: FIFO locality improves >7x; Fair reaches ~100% on wl2; \
GMTT -16%, slowdown -20% (CCT)";

/// Run the experiment and print/emit its three panels.
pub fn run(seed: u64) -> Vec<MatrixCell> {
    let schedulers = [SchedulerKind::Fifo, SchedulerKind::fair_default()];
    let mut all = Vec::new();
    for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
        let base = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed);
        all.extend(run_matrix(&base, &wl, &schedulers));
    }
    print_tables("fig7", &all);
    all
}

/// Render the three panels (locality / normalized GMTT / slowdown) for a
/// matrix of runs; shared with Fig. 10.
pub fn print_tables(name: &str, cells: &[MatrixCell]) {
    let mut t = Table::new(
        &format!("{name}: locality / GMTT (normalized) / slowdown"),
        &[
            "workload",
            "scheduler",
            "policy",
            "job_locality",
            "task_locality",
            "gmtt_s",
            "gmtt_norm",
            "slowdown",
            "blocks/job",
            "replicas",
        ],
    );
    for c in cells {
        // Normalize GMTT against the vanilla run of the same (wl, sched).
        let vanilla = cells
            .iter()
            .find(|v| {
                v.workload == c.workload
                    && v.scheduler.label() == c.scheduler.label()
                    && v.policy == PolicyKind::Vanilla
            })
            .expect("matrix includes vanilla");
        let norm = dare_metrics::normalized_gmtt(&c.result.run, &vanilla.result.run);
        t.row(vec![
            c.workload.clone(),
            c.scheduler.label().to_string(),
            c.policy.label(),
            format!("{:.3}", c.result.run.job_locality),
            format!("{:.3}", c.result.run.locality),
            format!("{:.1}", c.result.run.gmtt_secs),
            format!("{:.3}", norm),
            format!("{:.3}", c.result.run.mean_slowdown),
            format!("{:.2}", c.result.blocks_per_job),
            format!("{}", c.result.replicas_created),
        ]);
    }
    t.print();
    write_csv(name, &t);
}

/// Fig. 7 replicated over `seeds` independent seeds: mean ± 95 % CI of the
/// three panels per matrix cell. This is the statistical-robustness check
/// the single-seed figure can't give.
pub fn run_replicated(base_seed: u64, seeds: u32) {
    let schedulers = [SchedulerKind::Fifo, SchedulerKind::fair_default()];
    let policies = [
        PolicyKind::Vanilla,
        PolicyKind::GreedyLru,
        PolicyKind::elephant_default(),
    ];
    let mut t = Table::new(
        &format!("fig7ci: mean ± 95% CI over {seeds} seeds"),
        &[
            "workload",
            "scheduler",
            "policy",
            "job_locality",
            "gmtt_norm",
            "slowdown",
        ],
    );
    for wl_id in ["wl1", "wl2"] {
        for sched in schedulers {
            // One parallel batch: every (policy, seed) run of this cell row.
            let mut runs = Vec::new();
            for (pi, &policy) in policies.iter().enumerate() {
                for k in 0..seeds {
                    runs.push((pi, policy, base_seed.wrapping_add(k as u64)));
                }
            }
            let results = parallel_map(runs, |(pi, policy, seed)| {
                let wl = if wl_id == "wl1" {
                    dare_workload::wl1(seed)
                } else {
                    dare_workload::wl2(seed)
                };
                let mut cfg = SimConfig::cct(policy, sched, seed);
                cfg.scheduler = sched;
                (pi, seed, dare_mapred::run(cfg, &wl))
            });
            for (pi, policy) in policies.iter().enumerate() {
                let mine: Vec<_> = results.iter().filter(|(i, _, _)| *i == pi).collect();
                let loc: Vec<f64> = mine.iter().map(|(_, _, r)| r.run.job_locality).collect();
                let slow: Vec<f64> = mine.iter().map(|(_, _, r)| r.run.mean_slowdown).collect();
                // normalize each seed's GMTT by that seed's vanilla run
                let norm: Vec<f64> = mine
                    .iter()
                    .map(|(_, seed, r)| {
                        let vanilla = results
                            .iter()
                            .find(|(i, s2, _)| *i == 0 && s2 == seed)
                            .expect("vanilla run for seed");
                        r.run.gmtt_secs / vanilla.2.run.gmtt_secs
                    })
                    .collect();
                let (l, n, s) = (replicate(&loc), replicate(&norm), replicate(&slow));
                t.row(vec![
                    wl_id.to_string(),
                    sched.label().to_string(),
                    policy.label(),
                    format!("{:.3} ± {:.3}", l.mean, l.ci95),
                    format!("{:.3} ± {:.3}", n.mean, n.ci95),
                    format!("{:.3} ± {:.3}", s.mean, s.ci95),
                ]);
            }
        }
    }
    t.print();
    write_csv("fig7ci", &t);
}

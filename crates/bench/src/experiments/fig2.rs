//! Fig. 2 — file popularity in the (synthetic) Yahoo! audit log: number of
//! accesses per file vs popularity rank, plain and weighted by each file's
//! 128 MB block count. Both series are heavy-tailed straight-ish lines on
//! log-log axes.

use crate::harness::{write_csv, Table};
use dare_workload::analysis::{rank_frequency, AnalysisOpts};
use dare_workload::yahoo::{generate, YahooParams};

/// Regenerate Fig. 2 (downsampled rank series; full series in the CSV).
pub fn run(seed: u64) {
    let log = generate(&YahooParams::default(), seed);
    let plain = rank_frequency(&log, AnalysisOpts::default());
    let weighted = rank_frequency(
        &log,
        AnalysisOpts {
            weight_by_blocks: true,
            ..Default::default()
        },
    );

    let mut t = Table::new(
        "Fig. 2: file popularity vs rank (log-log; heavy tail)",
        &["rank", "accesses", "accesses_block_weighted"],
    );
    for (i, (rank, w)) in plain.iter().enumerate() {
        let bw = weighted.get(i).map(|(_, w)| *w).unwrap_or(0.0);
        t.row(vec![
            rank.to_string(),
            format!("{:.0}", w),
            format!("{:.0}", bw),
        ]);
    }
    // Console: print the decades only; CSV holds everything.
    let mut console = Table::new(
        "Fig. 2 (sampled ranks): accesses per file vs rank",
        &["rank", "accesses", "accesses_block_weighted"],
    );
    for &r in &[1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
        if r <= plain.len() {
            console.row(vec![
                r.to_string(),
                format!("{:.0}", plain[r - 1].1),
                format!("{:.0}", weighted[r - 1].1),
            ]);
        }
    }
    console.print();
    write_csv("fig2", &t);

    let top = plain.first().expect("non-empty log").1;
    let mid = plain[plain.len() / 2].1;
    println!(
        "skew check: rank-1 file has {:.0}x the accesses of the median file",
        top / mid.max(1.0)
    );
}

//! Fig. 2 — file popularity in the (synthetic) Yahoo! audit log: number of
//! accesses per file vs popularity rank, plain and weighted by each file's
//! 128 MB block count. Both series are heavy-tailed straight-ish lines on
//! log-log axes.

use crate::harness::{metric, replicate_experiment, RowOrder, Table};
use dare_workload::analysis::{rank_frequency, AnalysisOpts};
use dare_workload::yahoo::{generate, YahooParams};

/// Regenerate Fig. 2 over `seeds` synthetic logs (downsampled console
/// ranks; full series in the CSV).
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 2: file popularity vs rank (log-log; heavy tail)",
        &["rank"],
        &[metric("accesses", 0), metric("accesses_block_weighted", 0)],
        // The rank range can differ across logs; merge by rank value.
        RowOrder::NumericFirstLabel,
        seed,
        seeds,
        |seed| {
            let log = generate(&YahooParams::default(), seed);
            let plain = rank_frequency(&log, AnalysisOpts::default());
            let weighted = rank_frequency(
                &log,
                AnalysisOpts {
                    weight_by_blocks: true,
                    ..Default::default()
                },
            );
            plain
                .iter()
                .enumerate()
                .map(|(i, (rank, w))| {
                    let bw = weighted.get(i).map(|(_, w)| *w).unwrap_or(0.0);
                    (vec![rank.to_string()], vec![*w, bw])
                })
                .collect()
        },
    );

    // Console: print the decades only; the CSV holds everything.
    let mut console = Table::new(
        "Fig. 2 (sampled ranks): mean accesses per file vs rank",
        &["rank", "accesses", "accesses_block_weighted"],
    );
    for &r in &[1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
        if let Some((_, sums)) = st.rows.iter().find(|(l, _)| l[0] == r.to_string()) {
            console.row(vec![
                r.to_string(),
                format!("{:.0}", sums[0].mean),
                format!("{:.0}", sums[1].mean),
            ]);
        }
    }
    console.print();
    st.emit("fig2");

    let top = st.rows.first().expect("non-empty log").1[0].mean;
    let mid = st.rows[st.rows.len() / 2].1[0].mean;
    println!(
        "skew check: rank-1 file has {:.0}x the accesses of the median file",
        top / mid.max(1.0)
    );
}

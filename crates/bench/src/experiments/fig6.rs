//! Fig. 6 — the file-access CDF driving the Section V experiments, plus the
//! empirical CDF actually realized by the synthesized workloads.

use crate::harness::{metric, replicate_experiment, RowOrder, Table};
use dare_workload::FilePopularity;

/// Regenerate Fig. 6 over `seeds` synthesized wl1 traces.
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 6: access-probability CDF over file ranks (model + realized wl1 trace)",
        &["rank"],
        &[metric("model_cdf", 4), metric("wl1_empirical_cdf", 4)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let pop = FilePopularity::experiment();
            let wl = dare_workload::wl1(seed);

            // Empirical access counts per file in the synthesized trace,
            // ranked.
            let mut counts = vec![0u32; wl.files.len()];
            for j in &wl.jobs {
                counts[j.file] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let total: u32 = counts.iter().sum();
            let mut empirical_cdf = Vec::with_capacity(counts.len());
            let mut acc = 0u32;
            for &c in &counts {
                acc += c;
                empirical_cdf.push(acc as f64 / total as f64);
            }

            pop.cdf_series()
                .into_iter()
                .map(|(rank, model_cdf)| {
                    (
                        vec![rank.to_string()],
                        vec![
                            model_cdf,
                            empirical_cdf.get(rank - 1).copied().unwrap_or(1.0),
                        ],
                    )
                })
                .collect()
        },
    );
    // CSV only; the console gets the sampled-rank digest below.
    crate::harness::write_csv("fig6", &st.table);

    let mut console = Table::new(
        "Fig. 6 (sampled ranks)",
        &["rank", "model_cdf", "wl1_empirical_cdf"],
    );
    for &r in &[1usize, 5, 10, 20, 40, 60, 80, 100, 128] {
        if let Some((_, sums)) = st.rows.iter().find(|(l, _)| l[0] == r.to_string()) {
            console.row(vec![
                r.to_string(),
                format!("{:.3}", sums[0].mean),
                format!("{:.3}", sums[1].mean),
            ]);
        }
    }
    console.print();
}

//! Fig. 6 — the file-access CDF driving the Section V experiments, plus the
//! empirical CDF actually realized by the synthesized workloads.

use crate::harness::{write_csv, Table};
use dare_workload::FilePopularity;

/// Regenerate Fig. 6.
pub fn run(seed: u64) {
    let pop = FilePopularity::experiment();
    let wl = dare_workload::wl1(seed);

    // Empirical access counts per file in the synthesized trace, ranked.
    let mut counts = vec![0u32; wl.files.len()];
    for j in &wl.jobs {
        counts[j.file] += 1;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u32 = counts.iter().sum();
    let mut empirical_cdf = Vec::with_capacity(counts.len());
    let mut acc = 0u32;
    for &c in &counts {
        acc += c;
        empirical_cdf.push(acc as f64 / total as f64);
    }

    let mut t = Table::new(
        "Fig. 6: access-probability CDF over file ranks (model + realized wl1 trace)",
        &["rank", "model_cdf", "wl1_empirical_cdf"],
    );
    for (rank, model_cdf) in pop.cdf_series() {
        t.row(vec![
            rank.to_string(),
            format!("{model_cdf:.4}"),
            format!("{:.4}", empirical_cdf.get(rank - 1).copied().unwrap_or(1.0)),
        ]);
    }
    write_csv("fig6", &t);

    let mut console = Table::new(
        "Fig. 6 (sampled ranks)",
        &["rank", "model_cdf", "wl1_empirical_cdf"],
    );
    for &r in &[1usize, 5, 10, 20, 40, 60, 80, 100, 128] {
        console.row(vec![
            r.to_string(),
            format!("{:.3}", pop.cdf(r)),
            format!("{:.3}", empirical_cdf.get(r - 1).copied().unwrap_or(1.0)),
        ]);
    }
    console.print();
}

//! Durability sweep: silent-corruption rate × replication policy.
//!
//! Exercises the data-integrity layer end to end — rate-generated
//! [`FaultEvent::CorruptReplica`](dare_mapred::FaultEvent) events, the
//! read-path checksum, the background block scanner, quarantine, and the
//! repair queue — and contrasts a vanilla cluster with DARE-LRU as the
//! bit-rot rate climbs. Corruption losses are reported on their own
//! ledger (`blocks_lost_corruption`), disjoint from the crash-path
//! `blocks_lost`, so the table separates "data rotted faster than the
//! scrubber+repair pipeline" from "a node died holding the last copy".
//!
//! Runtime invariant checking is enabled for every cell. Emits
//! `results/durability.csv` plus machine-readable
//! `results/BENCH_durability.json`. Set `BENCH_QUICK=1` for the CI smoke
//! configuration (fewer jobs, same corruption rates).

use crate::harness::{csv_path, write_csv, Table};
use dare_core::PolicyKind;
use dare_mapred::{FaultPlan, FaultSpec, ScannerConfig, SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;
use dare_simcore::{DetRng, SimDuration};
use dare_workload::swim::{synthesize, SwimParams};

/// One corruption-intensity level of the sweep.
#[derive(Clone, Copy)]
struct Level {
    label: &'static str,
    /// Expected corruption events per node-hour of simulated time.
    rate: f64,
}

const LEVELS: [Level; 3] = [
    Level { label: "pristine", rate: 0.0 },
    Level { label: "rot-low", rate: 20.0 },
    Level { label: "rot-high", rate: 120.0 },
];

/// Corruption rate × policy sweep on the EC2 profile.
pub fn run(seed: u64) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let jobs: u32 = if quick { 30 } else { 100 };

    let wl = synthesize("wl1-durability", &SwimParams { jobs, ..SwimParams::wl1() }, seed);
    let span = wl.jobs.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0) as u64;
    let horizon = span.max(30) * 3 / 4;
    let base = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::fair_default(), seed);
    let racks = base
        .profile
        .build_topology(&mut DetRng::new(seed).substream("topology"))
        .racks();
    let nodes = base.profile.nodes;
    // The corruption generator samples block ids over the ingested
    // namespace; derive the block count exactly as ingest will.
    let bs = base.dfs.block_size;
    let blocks: u64 = wl.files.iter().map(|f| f.size_bytes.div_ceil(bs)).sum();

    let policies = [PolicyKind::Vanilla, PolicyKind::GreedyLru];
    let mut cells = Vec::new();
    for (li, level) in LEVELS.into_iter().enumerate() {
        let plan = (level.rate > 0.0).then(|| {
            let spec = FaultSpec {
                horizon_secs: horizon,
                kills: 0,
                crashes: 0,
                mean_down_secs: 0,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                corruption_rate_per_node_hour: level.rate,
            };
            FaultPlan::generate_with_blocks(&spec, nodes, racks, blocks, seed ^ ((li as u64) << 32))
        });
        for &policy in &policies {
            cells.push((level.label, plan.clone(), policy));
        }
    }

    let results = parallel_map(cells, |(label, plan, policy)| {
        let mut cfg = base
            .clone()
            .with_scanner(ScannerConfig {
                period: SimDuration::from_secs(15),
                bytes_per_sec: 32 << 20,
            })
            .with_invariant_checks();
        cfg.policy = policy;
        if let Some(p) = plan {
            cfg = cfg.with_faults(p);
        }
        (label, policy, dare_mapred::run(cfg, &wl))
    });

    let mut t = Table::new(
        "Durability: silent-corruption rate x policy (ec2, fair, background scanner; read-path checksums, quarantine + repair)",
        &[
            "level",
            "policy",
            "jobs_ok",
            "jobs_failed",
            "job_locality",
            "gmtt_s",
            "corrupted",
            "cksum_fail",
            "scrub_hits",
            "quarantined",
            "scrub_GB",
            "repaired",
            "recovery_MB",
            "lost_crash",
            "lost_corrupt",
        ],
    );
    const MB: f64 = (1u64 << 20) as f64;
    for (label, policy, r) in &results {
        t.row(vec![
            label.to_string(),
            policy.label(),
            r.run.jobs.to_string(),
            r.run.failed_jobs.to_string(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.1}", r.run.gmtt_secs),
            r.faults.replicas_corrupted.to_string(),
            r.faults.checksum_failures.to_string(),
            r.faults.scrub_detections.to_string(),
            r.faults.replicas_quarantined.to_string(),
            format!("{:.1}", r.faults.scrub_bytes as f64 / (MB * 1024.0)),
            r.faults.blocks_re_replicated.to_string(),
            format!("{:.1}", r.faults.recovery_bytes as f64 / MB),
            r.faults.blocks_lost.to_string(),
            r.faults.blocks_lost_corruption.to_string(),
        ]);
    }
    t.print();
    write_csv("durability", &t);
    write_json(seed, jobs, quick, &results);
}

/// Machine-readable companion of the CSV, mirroring `BENCH_resilience.json`.
fn write_json(seed: u64, jobs: u32, quick: bool, results: &[(&str, PolicyKind, dare_mapred::SimResult)]) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"profile\": \"ec2\", \"scheduler\": \"fair\", \"scanner\": true, \"jobs\": {jobs}, \"seed\": {seed}, \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, (label, policy, r)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"level\": \"{label}\", \"policy\": \"{}\", \"jobs_ok\": {}, \"jobs_failed\": {}, \
             \"job_locality\": {:.6}, \"gmtt_secs\": {:.3}, \
             \"replicas_corrupted\": {}, \"checksum_failures\": {}, \"scrub_detections\": {}, \
             \"replicas_quarantined\": {}, \"scrub_bytes\": {}, \
             \"blocks_re_replicated\": {}, \"recovery_bytes\": {}, \
             \"blocks_lost\": {}, \"blocks_lost_corruption\": {}}}{}\n",
            policy.label(),
            r.run.jobs,
            r.run.failed_jobs,
            r.run.job_locality,
            r.run.gmtt_secs,
            r.faults.replicas_corrupted,
            r.faults.checksum_failures,
            r.faults.scrub_detections,
            r.faults.replicas_quarantined,
            r.faults.scrub_bytes,
            r.faults.blocks_re_replicated,
            r.faults.recovery_bytes,
            r.faults.blocks_lost,
            r.faults.blocks_lost_corruption,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut path = csv_path("BENCH_durability");
    path.set_extension("json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] wrote {}", path.display()),
        Err(e) => eprintln!("[json] could not write {}: {e}", path.display()),
    }
}

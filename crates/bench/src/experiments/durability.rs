//! Durability sweep: silent-corruption rate × replication policy.
//!
//! Exercises the data-integrity layer end to end — rate-generated
//! [`FaultEvent::CorruptReplica`](dare_mapred::FaultEvent) events, the
//! read-path checksum, the background block scanner, quarantine, and the
//! repair queue — and contrasts a vanilla cluster with DARE-LRU as the
//! bit-rot rate climbs. Corruption losses are reported on their own
//! ledger (`blocks_lost_corruption`), disjoint from the crash-path
//! `blocks_lost`, so the table separates "data rotted faster than the
//! scrubber+repair pipeline" from "a node died holding the last copy".
//!
//! Runtime invariant checking is enabled for every cell. With `--seeds N`
//! workload synthesis and corruption plans replicate over N derived
//! seeds; CSV value columns become means with appended `_std`/`_ci95`,
//! and the JSON rows carry mean/ci95 pairs. Emits
//! `results/durability.csv` plus machine-readable
//! `results/BENCH_durability.json`. Set `BENCH_QUICK=1` for the CI smoke
//! configuration (fewer jobs, same corruption rates).

use crate::harness::{csv_path, metric, replicate_experiment, MetricCol, RowOrder, SeedTable};
use dare_core::PolicyKind;
use dare_mapred::{FaultPlan, FaultSpec, ScannerConfig, SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;
use dare_simcore::{DetRng, SimDuration};
use dare_workload::swim::{synthesize, SwimParams};

/// One corruption-intensity level of the sweep.
#[derive(Clone, Copy)]
struct Level {
    label: &'static str,
    /// Expected corruption events per node-hour of simulated time.
    rate: f64,
}

const LEVELS: [Level; 3] = [
    Level { label: "pristine", rate: 0.0 },
    Level { label: "rot-low", rate: 20.0 },
    Level { label: "rot-high", rate: 120.0 },
];

const METRICS: [MetricCol; 13] = [
    metric("jobs_ok", 0),
    metric("jobs_failed", 0),
    metric("job_locality", 3),
    metric("gmtt_s", 1),
    metric("corrupted", 0),
    metric("cksum_fail", 0),
    metric("scrub_hits", 0),
    metric("quarantined", 0),
    metric("scrub_GB", 1),
    metric("repaired", 0),
    metric("recovery_MB", 1),
    metric("lost_crash", 0),
    metric("lost_corrupt", 0),
];

/// One seed's sweep: fresh workload, fresh corruption plans, all cells.
fn collect(seed: u64, jobs: u32) -> Vec<(Vec<String>, Vec<f64>)> {
    let wl = synthesize("wl1-durability", &SwimParams { jobs, ..SwimParams::wl1() }, seed);
    let span = wl.jobs.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0) as u64;
    let horizon = span.max(30) * 3 / 4;
    let base = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::fair_default(), seed);
    let racks = base
        .profile
        .build_topology(&mut DetRng::new(seed).substream("topology"))
        .racks();
    let nodes = base.profile.nodes;
    // The corruption generator samples block ids over the ingested
    // namespace; derive the block count exactly as ingest will.
    let bs = base.dfs.block_size;
    let blocks: u64 = wl.files.iter().map(|f| f.size_bytes.div_ceil(bs)).sum();

    let policies = [PolicyKind::Vanilla, PolicyKind::GreedyLru];
    let mut cells = Vec::new();
    for (li, level) in LEVELS.into_iter().enumerate() {
        let plan = (level.rate > 0.0).then(|| {
            let spec = FaultSpec {
                horizon_secs: horizon,
                kills: 0,
                crashes: 0,
                mean_down_secs: 0,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                corruption_rate_per_node_hour: level.rate,
            };
            FaultPlan::generate_with_blocks(&spec, nodes, racks, blocks, seed ^ ((li as u64) << 32))
        });
        for &policy in &policies {
            cells.push((level.label, plan.clone(), policy));
        }
    }

    const MB: f64 = (1u64 << 20) as f64;
    parallel_map(cells, |(label, plan, policy)| {
        let mut cfg = base
            .clone()
            .with_scanner(ScannerConfig {
                period: SimDuration::from_secs(15),
                bytes_per_sec: 32 << 20,
            })
            .with_invariant_checks();
        cfg.policy = policy;
        if let Some(p) = plan {
            cfg = cfg.with_faults(p);
        }
        let r = dare_mapred::run(cfg, &wl);
        (
            vec![label.to_string(), policy.label()],
            vec![
                r.run.jobs as f64,
                r.run.failed_jobs as f64,
                r.run.job_locality,
                r.run.gmtt_secs,
                r.faults.replicas_corrupted as f64,
                r.faults.checksum_failures as f64,
                r.faults.scrub_detections as f64,
                r.faults.replicas_quarantined as f64,
                r.faults.scrub_bytes as f64 / (MB * 1024.0),
                r.faults.blocks_re_replicated as f64,
                r.faults.recovery_bytes as f64 / MB,
                r.faults.blocks_lost as f64,
                r.faults.blocks_lost_corruption as f64,
            ],
        )
    })
}

/// Corruption rate × policy sweep on the EC2 profile.
pub fn run(seed: u64, seeds: u32) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let jobs: u32 = if quick { 30 } else { 100 };

    let st = replicate_experiment(
        "Durability: silent-corruption rate x policy (ec2, fair, background scanner; read-path checksums, quarantine + repair)",
        &["level", "policy"],
        &METRICS,
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |s| collect(s, jobs),
    );
    st.emit("durability");
    write_json(seed, jobs, quick, &st);
}

/// Machine-readable companion of the CSV, mirroring `BENCH_resilience.json`:
/// per-row mean and 95 % CI half-width of every metric across seeds.
fn write_json(seed: u64, jobs: u32, quick: bool, st: &SeedTable) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"profile\": \"ec2\", \"scheduler\": \"fair\", \"scanner\": true, \"jobs\": {jobs}, \"seed\": {seed}, \"seeds\": {}, \"quick\": {quick}}},\n",
        st.seeds
    ));
    json.push_str("  \"rows\": [\n");
    for (i, (labels, sums)) in st.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"level\": \"{}\", \"policy\": \"{}\"",
            labels[0], labels[1]
        ));
        for (m, s) in METRICS.iter().zip(sums.iter()) {
            json.push_str(&format!(", \"{}\": {:.6}, \"{}_ci95\": {:.6}", m.name, s.mean, m.name, s.ci95));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < st.rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut path = csv_path("BENCH_durability");
    path.set_extension("json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] wrote {}", path.display()),
        Err(e) => eprintln!("[json] could not write {}: {e}", path.display()),
    }
}

//! Self-verifying reproduction: run the headline experiments and check
//! each of the paper's claims against explicit acceptance bands, printing
//! a PASS/FAIL table. `cargo run -p dare-bench --bin experiments -- verify`
//! is the one-command answer to "does this reproduction still hold?".

use crate::harness::{write_csv, Table};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig, SimResult};
use dare_simcore::parallel::parallel_map;

/// One checked claim.
struct Claim {
    id: &'static str,
    paper: &'static str,
    measured: String,
    pass: bool,
}

fn run(policy: PolicyKind, sched: SchedulerKind, wl: &dare_workload::Workload, seed: u64) -> SimResult {
    dare_mapred::run(SimConfig::cct(policy, sched, seed), wl)
}

/// Run the verification suite; returns the number of failed claims.
pub fn run_all(seed: u64) -> usize {
    let wl1 = dare_workload::wl1(seed);
    let wl2 = dare_workload::wl2(seed);

    // All base runs in parallel.
    let configs = [
        ("v-fifo-1", PolicyKind::Vanilla, SchedulerKind::Fifo, 1u8),
        ("l-fifo-1", PolicyKind::GreedyLru, SchedulerKind::Fifo, 1),
        ("e-fifo-1", PolicyKind::elephant_default(), SchedulerKind::Fifo, 1),
        ("v-fair-1", PolicyKind::Vanilla, SchedulerKind::fair_default(), 1),
        ("v-fifo-2", PolicyKind::Vanilla, SchedulerKind::Fifo, 2),
        ("l-fifo-2", PolicyKind::GreedyLru, SchedulerKind::Fifo, 2),
        ("e-fifo-2", PolicyKind::elephant_default(), SchedulerKind::Fifo, 2),
        ("v-fair-2", PolicyKind::Vanilla, SchedulerKind::fair_default(), 2),
        ("l-fair-2", PolicyKind::GreedyLru, SchedulerKind::fair_default(), 2),
        ("e-fair-2", PolicyKind::elephant_default(), SchedulerKind::fair_default(), 2),
    ];
    let results = parallel_map(configs.to_vec(), |(key, policy, sched, which)| {
        let wl = if which == 1 { &wl1 } else { &wl2 };
        (key, run(policy, sched, wl, seed))
    });
    let get = |key: &str| {
        &results
            .iter()
            .find(|(k, _)| *k == key)
            .expect("configured run")
            .1
    };

    let mut claims: Vec<Claim> = Vec::new();
    let mut claim = |id: &'static str, paper: &'static str, measured: String, pass: bool| {
        claims.push(Claim {
            id,
            paper,
            measured,
            pass,
        });
    };

    // 1. FIFO locality multiplier.
    let mult1 = get("l-fifo-1").run.job_locality / get("v-fifo-1").run.job_locality;
    claim(
        "fifo-locality-multiplier",
        ">7x (we accept >=3x)",
        format!("{mult1:.1}x (wl1, lru)"),
        mult1 >= 3.0,
    );
    // 2. ElephantTrap also multiplies FIFO locality.
    let mult_et = get("e-fifo-1").run.job_locality / get("v-fifo-1").run.job_locality;
    claim(
        "fifo-locality-et",
        "large improvement at p=0.3",
        format!("{mult_et:.1}x (wl1, et)"),
        mult_et >= 2.0,
    );
    // 3. Fair + DARE approaches full locality on wl2.
    let fair_dare = get("l-fair-2").run.job_locality;
    claim(
        "fair-dare-near-full",
        "close to 100% (we accept >=0.85)",
        format!("{fair_dare:.3} (wl2, fair, lru)"),
        fair_dare >= 0.85,
    );
    // 4. GMTT reduction.
    let gmtt_red = 1.0 - get("l-fifo-2").run.gmtt_secs / get("v-fifo-2").run.gmtt_secs;
    claim(
        "gmtt-reduction",
        "-16%..-19% (we accept >=5%)",
        format!("{:.1}% (wl2, fifo, lru)", gmtt_red * 100.0),
        gmtt_red >= 0.05,
    );
    // 5. Slowdown reduction.
    let slow_red = 1.0 - get("l-fifo-2").run.mean_slowdown / get("v-fifo-2").run.mean_slowdown;
    claim(
        "slowdown-reduction",
        "-20%..-25% (we accept >=5%)",
        format!("{:.1}% (wl2, fifo, lru)", slow_red * 100.0),
        slow_red >= 0.05,
    );
    // 6. ET disk writes ~50% of LRU at comparable locality.
    let write_ratio =
        get("e-fifo-2").replicas_created as f64 / get("l-fifo-2").replicas_created.max(1) as f64;
    let loc_ratio = get("e-fifo-2").run.job_locality / get("l-fifo-2").run.job_locality;
    claim(
        "et-half-the-writes",
        "~50% of LRU's disk writes, comparable locality",
        format!(
            "{:.0}% writes at {:.0}% of lru locality (wl2)",
            write_ratio * 100.0,
            loc_ratio * 100.0
        ),
        write_ratio <= 0.65 && loc_ratio >= 0.6,
    );
    // 7. DARE consumes no extra network (remote bytes strictly drop).
    let net_v = get("v-fifo-2").remote_bytes_fetched;
    let net_d = get("e-fifo-2").remote_bytes_fetched;
    claim(
        "no-extra-network",
        "piggybacks on existing fetches; total remote bytes fall",
        format!(
            "{:.1} GB -> {:.1} GB",
            net_v as f64 / (1u64 << 30) as f64,
            net_d as f64 / (1u64 << 30) as f64
        ),
        net_d < net_v,
    );
    // 8. Placement uniformity (Fig. 11).
    let r = get("e-fifo-1");
    claim(
        "placement-uniformity",
        "cv drops after DARE at p>=0.2",
        format!("{:.2} -> {:.2} (wl1)", r.cv_before, r.cv_after),
        r.cv_after < r.cv_before,
    );
    // 9. Fair scheduler ordering on wl2 (the workload chosen to favour it).
    let fair_better = get("v-fair-2").run.gmtt_secs < get("v-fifo-2").run.gmtt_secs;
    claim(
        "wl2-favours-fair",
        "Fair produces lower completion times for wl2",
        format!(
            "fair {:.1}s vs fifo {:.1}s",
            get("v-fair-2").run.gmtt_secs,
            get("v-fifo-2").run.gmtt_secs
        ),
        fair_better,
    );

    let mut t = Table::new(
        "verify: paper claims vs this build",
        &["claim", "paper", "measured", "status"],
    );
    let mut failed = 0;
    for c in &claims {
        if !c.pass {
            failed += 1;
        }
        t.row(vec![
            c.id.to_string(),
            c.paper.to_string(),
            c.measured.clone(),
            if c.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.print();
    write_csv("verify", &t);
    println!(
        "\n{}/{} claims hold at seed {seed}",
        claims.len() - failed,
        claims.len()
    );
    failed
}

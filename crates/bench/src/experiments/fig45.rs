//! Figs. 4 and 5 — the 80 %-coverage burst-window distributions.
//!
//! For each "big file" (the most-accessed files jointly covering ≥ 80 % of
//! accesses, system files excluded) we find the smallest number of
//! consecutive one-hour slots containing ≥ 80 % of its accesses. Fig. 4
//! runs over the whole week (the spike at ~121 h marks daily re-read
//! files); Fig. 5 restricts to day 2, where almost all files burst within
//! an hour.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_workload::analysis::burst_window_distribution;
use dare_workload::yahoo::{generate, YahooParams};

fn emit(name: &str, title: &str, day: Option<u64>, seed: u64, seeds: u32) {
    let st = replicate_experiment(
        title,
        &["window_hours"],
        &[metric("fraction_plain", 4), metric("fraction_weighted", 4)],
        // The set of observed window sizes varies per log; merge by size.
        RowOrder::NumericFirstLabel,
        seed,
        seeds,
        |seed| {
            let log = generate(&YahooParams::default(), seed);
            let plain = burst_window_distribution(&log, 0.8, day, false);
            let weighted = burst_window_distribution(&log, 0.8, day, true);

            // Merge the two series over the union of window sizes.
            let mut windows: Vec<usize> = plain
                .iter()
                .map(|p| p.window_hours)
                .chain(weighted.iter().map(|p| p.window_hours))
                .collect();
            windows.sort_unstable();
            windows.dedup();
            windows
                .into_iter()
                .map(|w| {
                    let f1 = plain
                        .iter()
                        .find(|p| p.window_hours == w)
                        .map(|p| p.fraction)
                        .unwrap_or(0.0);
                    let f2 = weighted
                        .iter()
                        .find(|p| p.window_hours == w)
                        .map(|p| p.fraction)
                        .unwrap_or(0.0);
                    (vec![w.to_string()], vec![f1, f2])
                })
                .collect()
        },
    );
    st.emit(name);

    let burst_mass: f64 = st
        .rows
        .iter()
        .filter(|(l, _)| l[0].parse::<usize>().is_ok_and(|w| w <= 1))
        .map(|(_, s)| s[0].mean)
        .sum();
    let daily_mass: f64 = st
        .rows
        .iter()
        .filter(|(l, _)| l[0].parse::<usize>().is_ok_and(|w| w >= 97))
        .map(|(_, s)| s[0].mean)
        .sum();
    println!(
        "mass at 1h windows: {:.1}%; mass at >=97h windows (daily re-readers): {:.1}%",
        burst_mass * 100.0,
        daily_mass * 100.0
    );
}

/// Regenerate Fig. 4 (whole week).
pub fn fig4(seed: u64, seeds: u32) {
    emit(
        "fig4",
        "Fig. 4: 80%-coverage window sizes over the week (spike near 121h = daily re-reads)",
        None,
        seed,
        seeds,
    );
}

/// Regenerate Fig. 5 (day 2 only).
pub fn fig5(seed: u64, seeds: u32) {
    emit(
        "fig5",
        "Fig. 5: 80%-coverage window sizes within day 2 (bursts within one hour dominate)",
        Some(1),
        seed,
        seeds,
    );
}

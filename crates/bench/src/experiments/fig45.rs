//! Figs. 4 and 5 — the 80 %-coverage burst-window distributions.
//!
//! For each "big file" (the most-accessed files jointly covering ≥ 80 % of
//! accesses, system files excluded) we find the smallest number of
//! consecutive one-hour slots containing ≥ 80 % of its accesses. Fig. 4
//! runs over the whole week (the spike at ~121 h marks daily re-read
//! files); Fig. 5 restricts to day 2, where almost all files burst within
//! an hour.

use crate::harness::{write_csv, Table};
use dare_workload::analysis::burst_window_distribution;
use dare_workload::yahoo::{generate, YahooParams};

fn emit(name: &str, title: &str, day: Option<u64>, seed: u64) {
    let log = generate(&YahooParams::default(), seed);
    let plain = burst_window_distribution(&log, 0.8, day, false);
    let weighted = burst_window_distribution(&log, 0.8, day, true);

    let mut t = Table::new(title, &["window_hours", "fraction_plain", "fraction_weighted"]);
    // Merge the two series over the union of window sizes.
    let mut windows: Vec<usize> = plain
        .iter()
        .map(|p| p.window_hours)
        .chain(weighted.iter().map(|p| p.window_hours))
        .collect();
    windows.sort_unstable();
    windows.dedup();
    for w in windows {
        let f1 = plain
            .iter()
            .find(|p| p.window_hours == w)
            .map(|p| p.fraction)
            .unwrap_or(0.0);
        let f2 = weighted
            .iter()
            .find(|p| p.window_hours == w)
            .map(|p| p.fraction)
            .unwrap_or(0.0);
        t.row(vec![w.to_string(), format!("{f1:.4}"), format!("{f2:.4}")]);
    }
    t.print();
    write_csv(name, &t);

    let burst_mass: f64 = plain
        .iter()
        .filter(|p| p.window_hours <= 1)
        .map(|p| p.fraction)
        .sum();
    let daily_mass: f64 = plain
        .iter()
        .filter(|p| p.window_hours >= 97)
        .map(|p| p.fraction)
        .sum();
    println!(
        "mass at 1h windows: {:.1}%; mass at >=97h windows (daily re-readers): {:.1}%",
        burst_mass * 100.0,
        daily_mass * 100.0
    );
}

/// Regenerate Fig. 4 (whole week).
pub fn fig4(seed: u64) {
    emit(
        "fig4",
        "Fig. 4: 80%-coverage window sizes over the week (spike near 121h = daily re-reads)",
        None,
        seed,
    );
}

/// Regenerate Fig. 5 (day 2 only).
pub fn fig5(seed: u64) {
    emit(
        "fig5",
        "Fig. 5: 80%-coverage window sizes within day 2 (bursts within one hour dominate)",
        Some(1),
        seed,
    );
}

//! Trace smoke test: run the golden scenarios with tracing on, validate
//! the JSONL export against the event schema, diff it against the
//! checked-in golden files under `tests/golden/`, and drop a
//! Perfetto-openable Chrome trace under `results/` for inspection (CI
//! uploads it as an artifact).
//!
//! This is the out-of-`cargo-test` twin of `tests/golden_trace.rs`: the
//! same scenarios and the same differ, runnable as
//! `experiments -- trace-smoke` so a pipeline can gate on it and keep the
//! rendered trace even when the gate fails.

use dare_mapred::golden::{golden_scenarios, run_golden};
use dare_trace::{diff_golden, to_chrome, to_jsonl, validate_jsonl};
use std::path::PathBuf;

/// Where the checked-in golden JSONL files live (workspace-root
/// `tests/golden/`, or the same path relative to the bench crate when run
/// from elsewhere).
fn golden_dir() -> PathBuf {
    let local = PathBuf::from("tests/golden");
    if local.is_dir() {
        return local;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Run the smoke test. Returns the number of failing scenarios (0 = the
/// traces are schema-valid and byte-identical to the golden files).
pub fn run(_seed: u64) -> usize {
    // The golden scenarios are seed-pinned by design: a drifting seed
    // would diff against the wrong baseline, so `--seed` is ignored here.
    let dir = golden_dir();
    let mut failed = 0usize;
    for (name, _) in golden_scenarios() {
        let r = run_golden(name);
        let trace = r.trace.expect("golden scenarios record traces");
        print!("[trace-smoke] {name}: {} ... ", trace.summary());
        let jsonl = to_jsonl(&trace);
        if let Err(e) = validate_jsonl(&jsonl) {
            println!("SCHEMA FAIL");
            eprintln!("[trace-smoke] {name}: invalid JSONL: {e}");
            failed += 1;
            continue;
        }
        let path = dir.join(format!("{name}.jsonl"));
        match std::fs::read_to_string(&path) {
            Ok(golden) => {
                if let Some(d) = diff_golden(&golden, &jsonl) {
                    println!("GOLDEN DRIFT");
                    eprintln!("[trace-smoke] {name}: trace drifted from {}:\n{d}", path.display());
                    failed += 1;
                } else {
                    println!("ok");
                }
            }
            Err(e) => {
                println!("NO GOLDEN");
                eprintln!("[trace-smoke] {name}: cannot read {}: {e}", path.display());
                failed += 1;
            }
        }
    }

    // One rendered Chrome trace for eyeballs / the CI artifact: the
    // scenario with the most moving parts (fair scheduler + DARE-LRU).
    let show = "fair-dare-lru";
    let trace = run_golden(show).trace.expect("traced");
    let out = crate::harness::csv_path("x");
    let out = out
        .parent()
        .expect("csv dir")
        .join(format!("trace_smoke_{show}.json"));
    match std::fs::write(&out, to_chrome(&trace)) {
        Ok(()) => println!(
            "[trace-smoke] wrote {} ({} events; open at ui.perfetto.dev)",
            out.display(),
            trace.records().len()
        ),
        Err(e) => eprintln!("[trace-smoke] could not write {}: {e}", out.display()),
    }
    if failed > 0 {
        eprintln!(
            "[trace-smoke] {failed} scenario(s) failed; refresh on purpose with \
             `UPDATE_GOLDEN=1 cargo test --test golden_trace`"
        );
    }
    failed
}

//! Fig. 3 — CDF of file age at time of access. The paper's annotations:
//! 50 % of accesses happen before age ≈ 9h45m, ~80 % within the first day.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_workload::analysis::age_at_access_cdf;
use dare_workload::yahoo::{generate, YahooParams};

/// Regenerate Fig. 3 over `seeds` synthetic logs.
pub fn run(seed: u64, seeds: u32) {
    let points_h: Vec<f64> = vec![
        0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 9.75, 12.0, 18.0, 24.0, 48.0, 72.0, 96.0, 120.0, 168.0,
    ];
    let st = replicate_experiment(
        "Fig. 3: CDF of file age at access (paper: 50% by 9h45m, ~80% within 1 day)",
        &["age_hours"],
        &[metric("fraction_of_accesses", 3)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let log = generate(&YahooParams::default(), seed);
            let cdf = age_at_access_cdf(&log, true);
            cdf.series(&points_h)
                .into_iter()
                .map(|(x, f)| (vec![format!("{x}")], vec![f]))
                .collect()
        },
    );
    st.emit("fig3");

    // Headline annotations from the base-seed log (the committed replicate).
    let cdf = age_at_access_cdf(&generate(&YahooParams::default(), seed), true);
    println!(
        "median access age: {:.1}h (paper: 9.75h); within one day: {:.1}% (paper: ~80%)",
        cdf.inverse(0.5),
        cdf.fraction_leq(24.0) * 100.0
    );
}

//! Fig. 3 — CDF of file age at time of access. The paper's annotations:
//! 50 % of accesses happen before age ≈ 9h45m, ~80 % within the first day.

use crate::harness::{write_csv, Table};
use dare_workload::analysis::age_at_access_cdf;
use dare_workload::yahoo::{generate, YahooParams};

/// Regenerate Fig. 3.
pub fn run(seed: u64) {
    let log = generate(&YahooParams::default(), seed);
    let cdf = age_at_access_cdf(&log, true);

    let points_h: Vec<f64> = vec![
        0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 9.75, 12.0, 18.0, 24.0, 48.0, 72.0, 96.0, 120.0, 168.0,
    ];
    let mut t = Table::new(
        "Fig. 3: CDF of file age at access (paper: 50% by 9h45m, ~80% within 1 day)",
        &["age_hours", "fraction_of_accesses"],
    );
    for (x, f) in cdf.series(&points_h) {
        t.row(vec![format!("{x}"), format!("{f:.3}")]);
    }
    t.print();
    write_csv("fig3", &t);

    println!(
        "median access age: {:.1}h (paper: 9.75h); within one day: {:.1}% (paper: ~80%)",
        cdf.inverse(0.5),
        cdf.fraction_leq(24.0) * 100.0
    );
}

//! Fig. 10 — DARE on the virtualized 100-node EC2 cluster, wl1, both
//! schedulers, three policies. The paper's headline: for comparable
//! locality gains, GMTT and slowdown improve *more* than on CCT (−19 % and
//! −25 %) because EC2's network/disk bandwidth ratio is lower.

use crate::experiments::fig7::{collect_matrix, LABELS, METRICS};
use crate::harness::{replicate_experiment, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};

/// Run the experiment over `seeds` replicates and emit the table.
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        &format!("fig10: EC2 locality / GMTT (normalized) / slowdown ({seeds} seed(s))"),
        &LABELS,
        &METRICS,
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |s| {
            collect_matrix(s, &[dare_workload::wl1(s)], &|s| {
                SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, s)
            })
        },
    );
    st.emit("fig10");
}

//! Fig. 10 — DARE on the virtualized 100-node EC2 cluster, wl1, both
//! schedulers, three policies. The paper's headline: for comparable
//! locality gains, GMTT and slowdown improve *more* than on CCT (−19 % and
//! −25 %) because EC2's network/disk bandwidth ratio is lower.

use crate::experiments::fig7::print_tables;
use crate::harness::{run_matrix, MatrixCell};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};

/// Regenerate Fig. 10.
pub fn run(seed: u64) -> Vec<MatrixCell> {
    let schedulers = [SchedulerKind::Fifo, SchedulerKind::fair_default()];
    let wl = dare_workload::wl1(seed);
    let base = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, seed);
    let cells = run_matrix(&base, &wl, &schedulers);
    print_tables("fig10", &cells);
    cells
}

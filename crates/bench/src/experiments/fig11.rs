//! Fig. 11 — uniformity of replica placement: coefficient of variation of
//! the per-node popularity indices before dynamic replication (after
//! ingest) and after a full 500-job wl1 run with DARE/ElephantTrap
//! (budget = 0.2, threshold = 1), FIFO scheduler, sweeping `p`.
//! Smaller cv = more uniform spread of popular bytes.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;

/// Regenerate Fig. 11 over `seeds` replicates.
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 11: popularity-index coefficient of variation vs p (before vs after DARE; smaller = more uniform)",
        &["p"],
        &[metric("cv_before", 3), metric("cv_after", 3)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl1(seed);
            let ps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
            parallel_map(ps, |p| {
                let mut cfg = SimConfig::cct(
                    PolicyKind::ElephantTrap { p, threshold: 1 },
                    SchedulerKind::Fifo,
                    seed,
                );
                cfg.budget_frac = 0.2;
                let r = dare_mapred::run(cfg, &wl);
                (vec![format!("{p:.1}")], vec![r.cv_before, r.cv_after])
            })
        },
    );
    st.emit("fig11");
}

//! Fig. 1 — distribution of traceroute hop counts between node pairs in a
//! 20-node EC2 allocation. The paper found most pairs 4 hops apart (a
//! same-size in-house cluster would be 1-2 hops everywhere).

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_net::{ClusterProfile, NodeId};
use dare_simcore::DetRng;

/// Regenerate Fig. 1, replicated over `seeds` topology/probe draws.
pub fn run(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 1: hop-count distribution, 20-node EC2 cluster (paper: mode at 4 hops)",
        &["hops"],
        &[metric("proportion_of_node_pairs", 3)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let root = DetRng::new(seed);
            let mut topo_rng = root.substream("fig1-topo");
            let mut probe_rng = root.substream("fig1-probe");
            let profile = ClusterProfile::ec2_small();
            let topo = profile.build_topology(&mut topo_rng);

            let n = topo.nodes();
            let mut counts = [0u32; 11];
            let mut pairs = 0u32;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let h = topo.measured_hops(NodeId(a), NodeId(b), &mut probe_rng) as usize;
                    counts[h.min(10)] += 1;
                    pairs += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .map(|(h, &c)| (vec![h.to_string()], vec![c as f64 / pairs as f64]))
                .collect()
        },
    );
    st.emit("fig1");
}

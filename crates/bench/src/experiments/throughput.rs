//! Event-kernel throughput benchmark (`experiments -- throughput`).
//!
//! Drives the full engine — not a synthetic queue microbench — on the
//! scale-out cluster profile and measures logical simulation events per
//! wall-clock second under three configurations of the same scenario:
//!
//! * `heap-staggered` — the original binary-heap kernel with per-node
//!   heartbeat chains: the pre-calendar-queue engine, kept as the
//!   baseline every speedup is quoted against;
//! * `calendar-staggered` — the calendar-queue kernel alone (this leg is
//!   bit-identical to the baseline run; only wall time changes);
//! * `calendar-batched` — calendar queue plus batched heartbeats: the
//!   configuration the 10k-node headline runs use.
//!
//! "Logical events" is [`dare_mapred::SimResult::logical_events`]: one
//! per dispatched event, with a batched heartbeat tick counted once per
//! node it services, so the batched and per-node legs are charged for the
//! same simulated work and the ratio measures engine efficiency, not
//! metric redefinition.
//!
//! Output is `results/BENCH_throughput.json`. The run fails (non-zero
//! through the dispatcher) when the optimized configuration is less than
//! 5× the heap baseline on the 1k-node profile, or when its speedup
//! ratio regresses more than 20% below the committed report's — ratios,
//! not absolute rates, so the gate holds across machines.
//!
//! `BENCH_QUICK=1` (or `--quick`) skips only the 10,000-node ×
//! 1,000,000-map-task headline run; the 1k-node legs are identical in
//! both modes, so the quick-mode speedup is directly comparable to the
//! committed full-mode report the regression gate reads. The full run
//! additionally performs the headline and records its wall clock and
//! events/sec.

use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig, SimResult};
use dare_net::ClusterProfile;
use dare_simcore::{SimDuration, SimTime};
use dare_workload::{FileSpec, JobSpec, Workload};

const MB: u64 = 1024 * 1024;
const BLOCK: u64 = 128 * MB;

/// Minimum optimized-vs-heap speedup on the 1k-node profile.
const MIN_SPEEDUP: f64 = 5.0;
/// Largest tolerated relative drop below the committed report's speedup.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// A scale workload: `jobs` jobs round-robin over `files` files of
/// `blocks_per_file` blocks (= map tasks per job), arrivals spread
/// uniformly over `window_secs`, `map_secs` of compute per map.
fn scale_workload(
    files: usize,
    blocks_per_file: u64,
    jobs: u32,
    window_secs: u64,
    map_secs: u64,
) -> Workload {
    let file_specs: Vec<FileSpec> = (0..files)
        .map(|i| FileSpec {
            name: format!("s{i}"),
            size_bytes: blocks_per_file * BLOCK,
        })
        .collect();
    let job_specs: Vec<JobSpec> = (0..jobs)
        .map(|id| JobSpec {
            id,
            arrival: SimTime::from_secs(window_secs * id as u64 / jobs.max(1) as u64),
            file: id as usize % files,
            map_compute: SimDuration::from_secs(map_secs),
            reduces: 1,
            output_bytes: 10 * MB,
        })
        .collect();
    Workload {
        name: "scale".into(),
        files: file_specs,
        jobs: job_specs,
    }
}

/// Base configuration of one leg: vanilla policy with delay scheduling
/// on the scale profile. Delay scheduling keeps most reads node-local,
/// so the measurement is dominated by the event kernel and heartbeat
/// machinery — the things this benchmark exists to compare — rather
/// than by remote-fetch flow recomputation.
fn scale_cfg(nodes: u32) -> SimConfig {
    let mut cfg = SimConfig::cct(
        PolicyKind::Vanilla,
        SchedulerKind::fair_default(),
        20110926,
    );
    cfg.profile = ClusterProfile::scale(nodes);
    cfg
}

struct Leg {
    name: &'static str,
    /// Wall seconds of the event loop (`Engine::run` after construction);
    /// `events_per_sec` is quoted against this, because it is the event
    /// kernel and dispatch machinery under test — setup is identical
    /// work across legs and reported separately.
    wall_secs: f64,
    setup_secs: f64,
    logical_events: u64,
    events_per_sec: f64,
    makespan_secs: f64,
}

fn run_leg_with(name: &'static str, rounds: u32, cfg: &SimConfig, wl: &Workload) -> Leg {
    // Diagnostic: attribute each leg's wall time to queue ops vs
    // scheduler decisions via the engine's self-profiler. Off by default
    // because the two `Instant` reads per event skew the wall clock the
    // leg itself reports.
    let profile = std::env::var_os("DARE_BENCH_PROFILE").is_some_and(|v| v != "0");
    // Best-of-`rounds`: the runs are deterministic, so the fastest
    // repetition is the least-perturbed measurement of the same work.
    let mut best: Option<(f64, f64)> = None;
    let mut last: Option<SimResult> = None;
    for _ in 0..rounds {
        let mut cfg = cfg.clone();
        cfg.self_profile = profile;
        let t0 = std::time::Instant::now();
        let engine = dare_mapred::Engine::new(cfg, wl);
        let setup_secs = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let r: SimResult = engine.run();
        let wall_secs = t1.elapsed().as_secs_f64().max(1e-9);
        if best.is_none_or(|(w, _)| wall_secs < w) {
            best = Some((wall_secs, setup_secs));
        }
        last = Some(r);
    }
    let (wall_secs, setup_secs) = best.expect("at least one round");
    let r = last.expect("at least one round");
    if let Some(p) = &r.profile {
        println!("[throughput]   profile {name}: {}", p.summary());
    }
    let leg = Leg {
        name,
        wall_secs,
        setup_secs,
        logical_events: r.logical_events,
        events_per_sec: r.logical_events as f64 / wall_secs,
        makespan_secs: r.run.makespan_secs,
    };
    println!(
        "[throughput] {:<18} {:>12} logical events in {:>7.2}s wall (+{:.2}s setup) = {:>12.0} ev/s (makespan {:.0}s, {} jobs)",
        leg.name, leg.logical_events, leg.wall_secs, leg.setup_secs, leg.events_per_sec, leg.makespan_secs, r.run.jobs
    );
    leg
}

fn run_leg(name: &'static str, cfg: SimConfig, wl: &Workload) -> Leg {
    run_leg_with(name, 3, &cfg, wl)
}

/// Pull `"key": <number>` out of the committed report (hand-rolled like
/// every other JSON reader in this offline workspace).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn leg_json(l: &Leg) -> String {
    format!(
        "    {{\"name\": \"{}\", \"wall_secs\": {:.3}, \"setup_secs\": {:.3}, \"logical_events\": {}, \"events_per_sec\": {:.0}, \"makespan_secs\": {:.1}}}",
        l.name, l.wall_secs, l.setup_secs, l.logical_events, l.events_per_sec, l.makespan_secs
    )
}

/// Run the benchmark. Returns the number of failed gates.
pub fn run(_seed: u64) -> usize {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick");
    let mut failed = 0usize;

    // --- 1k-node profile: heap baseline vs calendar vs calendar+batched.
    // A cluster-scale-dominated scenario: long maps on a big cluster, so
    // the event stream is mostly heartbeat machinery — the regime the
    // 10k-node runs live in, and the one the kernel work targets.
    let nodes = 1_000;
    // Same scenario in quick and full mode: the 1k legs cost a few
    // seconds, and an identical scenario keeps the quick-mode speedup
    // directly comparable to the committed full-mode ratio the
    // regression gate checks against. Quick mode only skips the
    // 10k-node headline.
    let (files, blocks, jobs, window, map_secs) = (40, 250, 40, 3_600, 600);
    let wl = scale_workload(files, blocks, jobs, window, map_secs);
    let tasks = blocks * jobs as u64;
    println!(
        "[throughput] 1k-node profile: {nodes} nodes, {tasks} map tasks{}",
        if quick { " (quick)" } else { "" }
    );

    let heap = run_leg("heap-staggered", scale_cfg(nodes).with_heap_queue(), &wl);
    let cal = run_leg("calendar-staggered", scale_cfg(nodes), &wl);
    let opt = run_leg(
        "calendar-batched",
        scale_cfg(nodes).with_batched_heartbeats(),
        &wl,
    );

    // The calendar-staggered leg simulates the identical event stream as
    // the heap leg, so its logical count must match exactly — a drifted
    // count means the kernels disagree, which the golden harness should
    // have caught first.
    if heap.logical_events != cal.logical_events {
        eprintln!(
            "[throughput] kernel divergence: heap processed {} logical events, calendar {}",
            heap.logical_events, cal.logical_events
        );
        failed += 1;
    }

    let speedup = opt.events_per_sec / heap.events_per_sec;
    println!("[throughput] optimized speedup vs heap baseline: {speedup:.2}x");
    if speedup < MIN_SPEEDUP {
        eprintln!("[throughput] FAIL: speedup {speedup:.2}x < required {MIN_SPEEDUP:.1}x");
        failed += 1;
    }

    // --- Regression gate against the committed report (ratio-based).
    let results = crate::harness::csv_path("x");
    let results = results.parent().expect("csv dir").to_path_buf();
    let report_path = results.join("BENCH_throughput.json");
    if let Ok(committed) = std::fs::read_to_string(&report_path) {
        if let Some(prev) = json_number(&committed, "speedup_vs_heap") {
            let floor = prev * (1.0 - REGRESSION_TOLERANCE);
            if speedup < floor {
                eprintln!(
                    "[throughput] FAIL: speedup {speedup:.2}x regressed >20% below committed {prev:.2}x (floor {floor:.2}x)"
                );
                failed += 1;
            } else {
                println!(
                    "[throughput] regression gate ... ok ({speedup:.2}x vs committed {prev:.2}x, floor {floor:.2}x)"
                );
            }
        }
    }

    // --- Headline run: 10k nodes, one million map tasks (full mode only).
    let headline = if quick {
        println!("[throughput] quick mode: skipping the 10k-node headline run");
        None
    } else {
        // 100 big jobs of 10,000 maps each — the classic shape of a
        // million-task run. Big files mean dense replica coverage
        // (each node holds ~3 blocks of every file), so delay
        // scheduling keeps reads node-local and the run measures the
        // event kernel rather than remote-fetch flow recomputation.
        // See `examples/headline_probe.rs` for the profiling harness
        // used to pick this shape.
        let wl = scale_workload(100, 10_000, 100, 600, 300);
        println!("[throughput] headline: 10000 nodes, 1000000 map tasks");
        Some(run_leg_with(
            "headline-10k",
            1,
            &scale_cfg(10_000).with_batched_heartbeats(),
            &wl,
        ))
    };

    // --- Report.
    let mut json = String::from("{\n  \"schema\": \"dare-throughput-v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"profile_1k\": {{\n    \"nodes\": {nodes},\n    \"map_tasks\": {tasks},\n"
    ));
    json.push_str("  \"legs\": [\n");
    json.push_str(&leg_json(&heap));
    json.push_str(",\n");
    json.push_str(&leg_json(&cal));
    json.push_str(",\n");
    json.push_str(&leg_json(&opt));
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"speedup_vs_heap\": {speedup:.3}\n  }}"));
    if let Some(h) = &headline {
        json.push_str(",\n  \"headline\": {\n    \"nodes\": 10000,\n    \"map_tasks\": 1000000,\n");
        json.push_str(&format!(
            "    \"wall_secs\": {:.3},\n    \"setup_secs\": {:.3},\n    \"logical_events\": {},\n    \"events_per_sec\": {:.0}\n  }}",
            h.wall_secs, h.setup_secs, h.logical_events, h.events_per_sec
        ));
    }
    json.push_str("\n}\n");

    match std::fs::write(&report_path, &json) {
        Ok(()) => println!("[throughput] wrote {}", report_path.display()),
        Err(e) => {
            eprintln!("[throughput] could not write {}: {e}", report_path.display());
            failed += 1;
        }
    }
    failed
}

//! Fig. 8 — sensitivity of DARE/ElephantTrap to the sampling probability
//! `p` (panel a: threshold = 1, budget = 0.2) and to the aging threshold
//! (panel b: p = 0.9, budget = 0.5), on wl2, under both schedulers.
//! Top panels: data locality; bottom panels: blocks replicated per job.

use crate::harness::{write_csv, Table};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;

/// Regenerate Fig. 8a: the `p` sweep.
pub fn sweep_p(seed: u64) {
    let wl = dare_workload::wl2(seed);
    let ps: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    let mut runs = Vec::new();
    for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
        for &p in &ps {
            runs.push((sched, p));
        }
    }
    let results = parallel_map(runs, |(sched, p)| {
        let mut cfg = SimConfig::cct(
            PolicyKind::ElephantTrap { p, threshold: 1 },
            sched,
            seed,
        );
        cfg.budget_frac = 0.2;
        let r = dare_mapred::run(cfg, &wl);
        (sched, p, r)
    });

    let mut t = Table::new(
        "Fig. 8a: locality and blocks/job vs ElephantTrap probability p (thr=1, budget=0.2, wl2)",
        &["scheduler", "p", "job_locality", "blocks_per_job"],
    );
    for (sched, p, r) in &results {
        t.row(vec![
            sched.label().to_string(),
            format!("{p:.1}"),
            format!("{:.3}", r.run.job_locality),
            format!("{:.2}", r.blocks_per_job),
        ]);
    }
    t.print();
    write_csv("fig8a", &t);
}

/// Regenerate Fig. 8b: the threshold sweep. The paper runs at budget 0.5
/// where the threshold barely matters ("not too sensitive"); we also sweep
/// at a binding budget of 0.05 where the aging discipline actually has to
/// choose victims, so the mechanism is visible.
pub fn sweep_threshold(seed: u64) {
    let wl = dare_workload::wl2(seed);
    let thresholds: Vec<u64> = vec![1, 2, 3, 4, 5];
    let mut runs = Vec::new();
    for &budget in &[0.5f64, 0.05] {
        for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
            for &thr in &thresholds {
                runs.push((budget, sched, thr));
            }
        }
    }
    let results = parallel_map(runs, |(budget, sched, thr)| {
        let mut cfg = SimConfig::cct(
            PolicyKind::ElephantTrap {
                p: 0.9,
                threshold: thr,
            },
            sched,
            seed,
        );
        cfg.budget_frac = budget;
        let r = dare_mapred::run(cfg, &wl);
        (budget, sched, thr, r)
    });

    let mut t = Table::new(
        "Fig. 8b: locality and blocks/job vs aging threshold (p=0.9; paper budget=0.5 plus binding budget=0.05; wl2)",
        &["budget", "scheduler", "threshold", "job_locality", "blocks_per_job", "evictions"],
    );
    for (budget, sched, thr, r) in &results {
        t.row(vec![
            format!("{budget:.2}"),
            sched.label().to_string(),
            thr.to_string(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.2}", r.blocks_per_job),
            r.evictions.to_string(),
        ]);
    }
    t.print();
    write_csv("fig8b", &t);
}

/// Both panels.
pub fn run(seed: u64) {
    sweep_p(seed);
    sweep_threshold(seed);
}

//! Fig. 8 — sensitivity of DARE/ElephantTrap to the sampling probability
//! `p` (panel a: threshold = 1, budget = 0.2) and to the aging threshold
//! (panel b: p = 0.9, budget = 0.5), on wl2, under both schedulers.
//! Top panels: data locality; bottom panels: blocks replicated per job.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;

/// Regenerate Fig. 8a: the `p` sweep, over `seeds` replicates.
pub fn sweep_p(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 8a: locality and blocks/job vs ElephantTrap probability p (thr=1, budget=0.2, wl2)",
        &["scheduler", "p"],
        &[metric("job_locality", 3), metric("blocks_per_job", 2)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            let ps: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
            let mut runs = Vec::new();
            for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
                for &p in &ps {
                    runs.push((sched, p));
                }
            }
            parallel_map(runs, |(sched, p)| {
                let mut cfg =
                    SimConfig::cct(PolicyKind::ElephantTrap { p, threshold: 1 }, sched, seed);
                cfg.budget_frac = 0.2;
                let r = dare_mapred::run(cfg, &wl);
                (
                    vec![sched.label().to_string(), format!("{p:.1}")],
                    vec![r.run.job_locality, r.blocks_per_job],
                )
            })
        },
    );
    st.emit("fig8a");
}

/// Regenerate Fig. 8b: the threshold sweep. The paper runs at budget 0.5
/// where the threshold barely matters ("not too sensitive"); we also sweep
/// at a binding budget of 0.05 where the aging discipline actually has to
/// choose victims, so the mechanism is visible.
pub fn sweep_threshold(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Fig. 8b: locality and blocks/job vs aging threshold (p=0.9; paper budget=0.5 plus binding budget=0.05; wl2)",
        &["budget", "scheduler", "threshold"],
        &[
            metric("job_locality", 3),
            metric("blocks_per_job", 2),
            metric("evictions", 0),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            let thresholds: Vec<u64> = vec![1, 2, 3, 4, 5];
            let mut runs = Vec::new();
            for &budget in &[0.5f64, 0.05] {
                for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
                    for &thr in &thresholds {
                        runs.push((budget, sched, thr));
                    }
                }
            }
            parallel_map(runs, |(budget, sched, thr)| {
                let mut cfg = SimConfig::cct(
                    PolicyKind::ElephantTrap { p: 0.9, threshold: thr },
                    sched,
                    seed,
                );
                cfg.budget_frac = budget;
                let r = dare_mapred::run(cfg, &wl);
                (
                    vec![
                        format!("{budget:.2}"),
                        sched.label().to_string(),
                        thr.to_string(),
                    ],
                    vec![r.run.job_locality, r.blocks_per_job, r.evictions as f64],
                )
            })
        },
    );
    st.emit("fig8b");
}

/// Both panels.
pub fn run(seed: u64, seeds: u32) {
    sweep_p(seed, seeds);
    sweep_threshold(seed, seeds);
}

//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! * **writes** — the Section I claim: ElephantTrap matches greedy-LRU
//!   locality at roughly half the disk writes (replica creations).
//! * **lfu** — Section IV's LRU-vs-LFU remark: profile both eviction
//!   disciplines on both workloads.
//! * **delay** — interaction of DARE with the Fair scheduler's delay
//!   thresholds (how much scheduler patience is still needed once data is
//!   replicated adaptively?).

use crate::harness::{write_csv, Table};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_sched::fair::FairConfig;
use dare_simcore::parallel::parallel_map;

/// ElephantTrap vs LRU: locality per disk write.
pub fn writes(seed: u64) {
    let runs: Vec<(String, PolicyKind)> = vec![
        ("lru".into(), PolicyKind::GreedyLru),
        ("et-p0.9".into(), PolicyKind::ElephantTrap { p: 0.9, threshold: 1 }),
        ("et-p0.5".into(), PolicyKind::ElephantTrap { p: 0.5, threshold: 1 }),
        ("et-p0.3".into(), PolicyKind::ElephantTrap { p: 0.3, threshold: 1 }),
    ];
    let mut t = Table::new(
        "Ablation: thrashing — locality per disk write (wl2, FIFO; paper claim: ET ~= LRU locality at ~50% of the writes)",
        &["policy", "workload", "job_locality", "replicas(disk writes)", "evictions", "writes_vs_lru"],
    );
    for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
        let results = parallel_map(runs.clone(), |(label, policy)| {
            let cfg = SimConfig::cct(policy, SchedulerKind::Fifo, seed);
            (label, dare_mapred::run(cfg, &wl))
        });
        let lru_writes = results
            .iter()
            .find(|(l, _)| l == "lru")
            .map(|(_, r)| r.replicas_created)
            .expect("lru run present") as f64;
        for (label, r) in &results {
            t.row(vec![
                label.clone(),
                wl.name.clone(),
                format!("{:.3}", r.run.job_locality),
                r.replicas_created.to_string(),
                r.evictions.to_string(),
                format!("{:.0}%", r.replicas_created as f64 / lru_writes.max(1.0) * 100.0),
            ]);
        }
    }
    t.print();
    write_csv("ablation_writes", &t);
}

/// LRU vs LFU eviction (greedy admission for both).
pub fn lfu(seed: u64) {
    let mut t = Table::new(
        "Ablation: LRU vs LFU eviction (Section IV: 'choice should be made after profiling')",
        &["workload", "scheduler", "policy", "job_locality", "gmtt_s", "evictions"],
    );
    for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
        let mut runs = Vec::new();
        for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
            for &policy in &[PolicyKind::GreedyLru, PolicyKind::Lfu] {
                runs.push((sched, policy));
            }
        }
        let results = parallel_map(runs, |(sched, policy)| {
            let cfg = SimConfig::cct(policy, sched, seed);
            (sched, policy, dare_mapred::run(cfg, &wl))
        });
        for (sched, policy, r) in &results {
            t.row(vec![
                wl.name.clone(),
                sched.label().to_string(),
                policy.label(),
                format!("{:.3}", r.run.job_locality),
                format!("{:.1}", r.run.gmtt_secs),
                r.evictions.to_string(),
            ]);
        }
    }
    t.print();
    write_csv("ablation_lfu", &t);
}

/// Delay-scheduling skip-threshold sweep, with and without DARE.
pub fn delay(seed: u64) {
    let wl = dare_workload::wl2(seed);
    let ds: Vec<u32> = vec![0, 1, 2, 4, 8, 16];
    let mut runs = Vec::new();
    for &d in &ds {
        for &policy in &[PolicyKind::Vanilla, PolicyKind::elephant_default()] {
            runs.push((d, policy));
        }
    }
    let results = parallel_map(runs, |(d, policy)| {
        let sched = SchedulerKind::Fair(FairConfig { d1: d, d2: 2 * d });
        let cfg = SimConfig::cct(policy, sched, seed);
        (d, policy, dare_mapred::run(cfg, &wl))
    });

    let mut t = Table::new(
        "Ablation: delay-scheduling patience (d1; d2=2*d1) x DARE (wl2) — DARE shrinks the patience needed for locality",
        &["d1", "policy", "job_locality", "gmtt_s", "slowdown"],
    );
    for (d, policy, r) in &results {
        t.row(vec![
            d.to_string(),
            policy.label(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.1}", r.run.gmtt_secs),
            format!("{:.3}", r.run.mean_slowdown),
        ]);
    }
    t.print();
    write_csv("ablation_delay", &t);
}

/// DARE (reactive) vs Scarlett (proactive, epoch-based) — the Section VI
/// comparison made measurable. On a *drifting* workload (hot set rotating
/// every ~40 jobs) the reactive scheme tracks the hot set at zero network
/// cost, while the epoch scheme both lags (long epochs) and pays explicit
/// replication traffic.
pub fn scarlett(seed: u64) {
    use dare_mapred::scarlett::ScarlettConfig;
    use dare_simcore::SimDuration;
    use dare_workload::swim::{synthesize, SwimParams};

    let stable = dare_workload::wl1(seed);
    let drifting = synthesize(
        "wl1-drifting",
        &SwimParams {
            phase_jobs: 40,
            ..SwimParams::wl1()
        },
        seed,
    );

    #[derive(Clone, Copy)]
    enum Scheme {
        Vanilla,
        Dare,
        Scarlett(u64),
    }
    let schemes = [
        ("vanilla", Scheme::Vanilla),
        ("dare-et(p=0.3)", Scheme::Dare),
        ("scarlett(30s)", Scheme::Scarlett(30)),
        ("scarlett(300s)", Scheme::Scarlett(300)),
    ];

    let mut t = Table::new(
        "Ablation: reactive DARE vs proactive Scarlett (FIFO) — locality, turnaround, and network cost",
        &[
            "workload",
            "scheme",
            "job_locality",
            "gmtt_s",
            "fetch_GB",
            "proactive_GB",
            "total_net_GB",
        ],
    );
    for wl in [&stable, &drifting] {
        let results = parallel_map(schemes.to_vec(), |(label, scheme)| {
            let cfg = match scheme {
                Scheme::Vanilla => SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed),
                Scheme::Dare => {
                    SimConfig::cct(PolicyKind::elephant_default(), SchedulerKind::Fifo, seed)
                }
                Scheme::Scarlett(epoch) => {
                    SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed).with_scarlett(
                        ScarlettConfig {
                            epoch: SimDuration::from_secs(epoch),
                            accesses_per_replica: 3.0,
                            max_extra_replicas: 18,
                        },
                    )
                }
            };
            (label, dare_mapred::run(cfg, wl))
        });
        const GB: f64 = (1u64 << 30) as f64;
        for (label, r) in &results {
            let fetch = r.remote_bytes_fetched as f64 / GB;
            let pro = r.proactive.map(|p| p.bytes_moved).unwrap_or(0) as f64 / GB;
            t.row(vec![
                wl.name.clone(),
                label.to_string(),
                format!("{:.3}", r.run.job_locality),
                format!("{:.1}", r.run.gmtt_secs),
                format!("{fetch:.1}"),
                format!("{pro:.1}"),
                format!("{:.1}", fetch + pro),
            ]);
        }
    }
    t.print();
    write_csv("ablation_scarlett", &t);
}

/// Resilience: node failures mid-trace and Hadoop-style speculative
/// execution, with and without DARE. Dynamic replicas both survive
/// failures (first-order replicas) and give re-executed/backup attempts
/// more local placements.
pub fn resilience(seed: u64) {
    let wl = dare_workload::wl2(seed);
    #[derive(Clone, Copy)]
    struct Case {
        label: &'static str,
        policy: PolicyKind,
        failures: bool,
        speculation: bool,
    }
    let cases = vec![
        Case { label: "vanilla", policy: PolicyKind::Vanilla, failures: false, speculation: false },
        Case { label: "vanilla+fail", policy: PolicyKind::Vanilla, failures: true, speculation: false },
        Case { label: "dare+fail", policy: PolicyKind::elephant_default(), failures: true, speculation: false },
        Case { label: "vanilla+fail+spec", policy: PolicyKind::Vanilla, failures: true, speculation: true },
        Case { label: "dare+fail+spec", policy: PolicyKind::elephant_default(), failures: true, speculation: true },
    ];
    let results = parallel_map(cases, |c| {
        let mut cfg = SimConfig::cct(c.policy, SchedulerKind::Fifo, seed);
        if c.failures {
            cfg = cfg.with_failures(vec![(60, 2), (150, 9), (260, 15)]);
        }
        if c.speculation {
            cfg = cfg.with_speculation(Default::default());
        }
        (c.label, dare_mapred::run(cfg, &wl))
    });

    let mut t = Table::new(
        "Ablation: resilience — 3 node failures mid-trace, optional speculation (wl2, FIFO)",
        &[
            "case",
            "job_locality",
            "gmtt_s",
            "slowdown",
            "reexecuted",
            "spec_launches",
            "spec_wins",
        ],
    );
    for (label, r) in &results {
        t.row(vec![
            label.to_string(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.1}", r.run.gmtt_secs),
            format!("{:.3}", r.run.mean_slowdown),
            r.reexecuted_tasks.to_string(),
            r.speculative_launches.to_string(),
            r.speculative_wins.to_string(),
        ]);
    }
    t.print();
    write_csv("ablation_resilience", &t);
}

/// Scheduler agnosticism: DARE must help FIFO, Fair, *and* a scheduler
/// the paper never saw (simplified Capacity) — Section IV: "our scheme is
/// scheduler agnostic".
pub fn schedulers(seed: u64) {
    let wl = dare_workload::wl2(seed);
    let scheds = [
        SchedulerKind::Fifo,
        SchedulerKind::fair_default(),
        SchedulerKind::Capacity(3),
    ];
    let mut runs = Vec::new();
    for &sched in &scheds {
        for &policy in &[PolicyKind::Vanilla, PolicyKind::elephant_default()] {
            runs.push((sched, policy));
        }
    }
    let results = parallel_map(runs, |(sched, policy)| {
        let cfg = SimConfig::cct(policy, sched, seed);
        (sched, policy, dare_mapred::run(cfg, &wl))
    });

    let mut t = Table::new(
        "Ablation: scheduler agnosticism — DARE vs vanilla under three schedulers (wl2)",
        &["scheduler", "policy", "job_locality", "gmtt_s", "slowdown"],
    );
    for (sched, policy, r) in &results {
        t.row(vec![
            sched.label().to_string(),
            policy.label(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.1}", r.run.gmtt_secs),
            format!("{:.3}", r.run.mean_slowdown),
        ]);
    }
    t.print();
    write_csv("ablation_schedulers", &t);
}

/// Tail latency: DARE's effect on the slowdown *distribution*, not just
/// the mean — remote reads under contention are the straggler source, so
/// replication compresses the p95/p99 tail hardest. (The paper reports
/// mean slowdown; the tail is where users feel it.)
pub fn tail(seed: u64) {
    let mut t = Table::new(
        "Ablation: slowdown distribution — mean vs median vs p95 (FIFO)",
        &["workload", "policy", "mean", "p50", "p95", "p95/p50"],
    );
    for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
        let runs: Vec<(&str, PolicyKind)> = vec![
            ("vanilla", PolicyKind::Vanilla),
            ("lru", PolicyKind::GreedyLru),
            ("et-p0.3", PolicyKind::elephant_default()),
        ];
        let results = parallel_map(runs, |(label, policy)| {
            let cfg = SimConfig::cct(policy, SchedulerKind::Fifo, seed);
            (label, dare_mapred::run(cfg, &wl))
        });
        for (label, r) in &results {
            t.row(vec![
                wl.name.clone(),
                label.to_string(),
                format!("{:.2}", r.run.mean_slowdown),
                format!("{:.2}", r.run.p50_slowdown),
                format!("{:.2}", r.run.p95_slowdown),
                format!("{:.2}", r.run.p95_slowdown / r.run.p50_slowdown.max(1e-9)),
            ]);
        }
    }
    t.print();
    write_csv("ablation_tail", &t);
}

/// All seven ablations.
pub fn run(seed: u64) {
    writes(seed);
    lfu(seed);
    delay(seed);
    scarlett(seed);
    resilience(seed);
    schedulers(seed);
    tail(seed);
}

//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! * **writes** — the Section I claim: ElephantTrap matches greedy-LRU
//!   locality at roughly half the disk writes (replica creations).
//! * **lfu** — Section IV's LRU-vs-LFU remark: profile both eviction
//!   disciplines on both workloads.
//! * **delay** — interaction of DARE with the Fair scheduler's delay
//!   thresholds (how much scheduler patience is still needed once data is
//!   replicated adaptively?).
//!
//! Every ablation replicates over `seeds` derived seeds; per-seed ratios
//! (writes vs LRU) are computed within a seed before averaging.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_sched::fair::FairConfig;
use dare_simcore::parallel::parallel_map;

/// ElephantTrap vs LRU: locality per disk write.
pub fn writes(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Ablation: thrashing — locality per disk write (wl2, FIFO; paper claim: ET ~= LRU locality at ~50% of the writes)",
        &["policy", "workload"],
        &[
            metric("job_locality", 3),
            metric("replicas_disk_writes", 0),
            metric("evictions", 0),
            metric("writes_vs_lru_pct", 0),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let runs: Vec<(String, PolicyKind)> = vec![
                ("lru".into(), PolicyKind::GreedyLru),
                ("et-p0.9".into(), PolicyKind::ElephantTrap { p: 0.9, threshold: 1 }),
                ("et-p0.5".into(), PolicyKind::ElephantTrap { p: 0.5, threshold: 1 }),
                ("et-p0.3".into(), PolicyKind::ElephantTrap { p: 0.3, threshold: 1 }),
            ];
            let mut rows = Vec::new();
            for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
                let results = parallel_map(runs.clone(), |(label, policy)| {
                    let cfg = SimConfig::cct(policy, SchedulerKind::Fifo, seed);
                    (label, dare_mapred::run(cfg, &wl))
                });
                let lru_writes = results
                    .iter()
                    .find(|(l, _)| l == "lru")
                    .map(|(_, r)| r.replicas_created)
                    .expect("lru run present") as f64;
                for (label, r) in &results {
                    rows.push((
                        vec![label.clone(), wl.name.clone()],
                        vec![
                            r.run.job_locality,
                            r.replicas_created as f64,
                            r.evictions as f64,
                            r.replicas_created as f64 / lru_writes.max(1.0) * 100.0,
                        ],
                    ));
                }
            }
            rows
        },
    );
    st.emit("ablation_writes");
}

/// LRU vs LFU eviction (greedy admission for both).
pub fn lfu(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Ablation: LRU vs LFU eviction (Section IV: 'choice should be made after profiling')",
        &["workload", "scheduler", "policy"],
        &[
            metric("job_locality", 3),
            metric("gmtt_s", 1),
            metric("evictions", 0),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let mut rows = Vec::new();
            for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
                let mut runs = Vec::new();
                for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
                    for &policy in &[PolicyKind::GreedyLru, PolicyKind::Lfu] {
                        runs.push((sched, policy));
                    }
                }
                let results = parallel_map(runs, |(sched, policy)| {
                    let cfg = SimConfig::cct(policy, sched, seed);
                    (sched, policy, dare_mapred::run(cfg, &wl))
                });
                for (sched, policy, r) in &results {
                    rows.push((
                        vec![
                            wl.name.clone(),
                            sched.label().to_string(),
                            policy.label(),
                        ],
                        vec![
                            r.run.job_locality,
                            r.run.gmtt_secs,
                            r.evictions as f64,
                        ],
                    ));
                }
            }
            rows
        },
    );
    st.emit("ablation_lfu");
}

/// Delay-scheduling skip-threshold sweep, with and without DARE.
pub fn delay(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Ablation: delay-scheduling patience (d1; d2=2*d1) x DARE (wl2) — DARE shrinks the patience needed for locality",
        &["d1", "policy"],
        &[
            metric("job_locality", 3),
            metric("gmtt_s", 1),
            metric("slowdown", 3),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            let ds: Vec<u32> = vec![0, 1, 2, 4, 8, 16];
            let mut runs = Vec::new();
            for &d in &ds {
                for &policy in &[PolicyKind::Vanilla, PolicyKind::elephant_default()] {
                    runs.push((d, policy));
                }
            }
            parallel_map(runs, |(d, policy)| {
                let sched = SchedulerKind::Fair(FairConfig { d1: d, d2: 2 * d });
                let cfg = SimConfig::cct(policy, sched, seed);
                let r = dare_mapred::run(cfg, &wl);
                (
                    vec![d.to_string(), policy.label()],
                    vec![r.run.job_locality, r.run.gmtt_secs, r.run.mean_slowdown],
                )
            })
        },
    );
    st.emit("ablation_delay");
}

/// DARE (reactive) vs Scarlett (proactive, epoch-based) — the Section VI
/// comparison made measurable. On a *drifting* workload (hot set rotating
/// every ~40 jobs) the reactive scheme tracks the hot set at zero network
/// cost, while the epoch scheme both lags (long epochs) and pays explicit
/// replication traffic.
pub fn scarlett(seed: u64, seeds: u32) {
    use dare_mapred::scarlett::ScarlettConfig;
    use dare_simcore::SimDuration;
    use dare_workload::swim::{synthesize, SwimParams};

    #[derive(Clone, Copy)]
    enum Scheme {
        Vanilla,
        Dare,
        Scarlett(u64),
    }
    let schemes = [
        ("vanilla", Scheme::Vanilla),
        ("dare-et(p=0.3)", Scheme::Dare),
        ("scarlett(30s)", Scheme::Scarlett(30)),
        ("scarlett(300s)", Scheme::Scarlett(300)),
    ];

    let st = replicate_experiment(
        "Ablation: reactive DARE vs proactive Scarlett (FIFO) — locality, turnaround, and network cost",
        &["workload", "scheme"],
        &[
            metric("job_locality", 3),
            metric("gmtt_s", 1),
            metric("fetch_GB", 1),
            metric("proactive_GB", 1),
            metric("total_net_GB", 1),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let stable = dare_workload::wl1(seed);
            let drifting = synthesize(
                "wl1-drifting",
                &SwimParams {
                    phase_jobs: 40,
                    ..SwimParams::wl1()
                },
                seed,
            );
            let mut rows = Vec::new();
            for wl in [&stable, &drifting] {
                let results = parallel_map(schemes.to_vec(), |(label, scheme)| {
                    let cfg = match scheme {
                        Scheme::Vanilla => {
                            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed)
                        }
                        Scheme::Dare => SimConfig::cct(
                            PolicyKind::elephant_default(),
                            SchedulerKind::Fifo,
                            seed,
                        ),
                        Scheme::Scarlett(epoch) => {
                            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed)
                                .with_scarlett(ScarlettConfig {
                                    epoch: SimDuration::from_secs(epoch),
                                    accesses_per_replica: 3.0,
                                    max_extra_replicas: 18,
                                })
                        }
                    };
                    (label, dare_mapred::run(cfg, wl))
                });
                const GB: f64 = (1u64 << 30) as f64;
                for (label, r) in &results {
                    let fetch = r.remote_bytes_fetched as f64 / GB;
                    let pro = r.proactive.map(|p| p.bytes_moved).unwrap_or(0) as f64 / GB;
                    rows.push((
                        vec![wl.name.clone(), label.to_string()],
                        vec![
                            r.run.job_locality,
                            r.run.gmtt_secs,
                            fetch,
                            pro,
                            fetch + pro,
                        ],
                    ));
                }
            }
            rows
        },
    );
    st.emit("ablation_scarlett");
}

/// Resilience: node failures mid-trace and Hadoop-style speculative
/// execution, with and without DARE. Dynamic replicas both survive
/// failures (first-order replicas) and give re-executed/backup attempts
/// more local placements.
pub fn resilience(seed: u64, seeds: u32) {
    #[derive(Clone, Copy)]
    struct Case {
        label: &'static str,
        policy: PolicyKind,
        failures: bool,
        speculation: bool,
    }
    let cases = vec![
        Case { label: "vanilla", policy: PolicyKind::Vanilla, failures: false, speculation: false },
        Case { label: "vanilla+fail", policy: PolicyKind::Vanilla, failures: true, speculation: false },
        Case { label: "dare+fail", policy: PolicyKind::elephant_default(), failures: true, speculation: false },
        Case { label: "vanilla+fail+spec", policy: PolicyKind::Vanilla, failures: true, speculation: true },
        Case { label: "dare+fail+spec", policy: PolicyKind::elephant_default(), failures: true, speculation: true },
    ];
    let st = replicate_experiment(
        "Ablation: resilience — 3 node failures mid-trace, optional speculation (wl2, FIFO)",
        &["case"],
        &[
            metric("job_locality", 3),
            metric("gmtt_s", 1),
            metric("slowdown", 3),
            metric("reexecuted", 0),
            metric("spec_launches", 0),
            metric("spec_wins", 0),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            parallel_map(cases.clone(), |c| {
                let mut cfg = SimConfig::cct(c.policy, SchedulerKind::Fifo, seed);
                if c.failures {
                    cfg = cfg.with_failures(vec![(60, 2), (150, 9), (260, 15)]);
                }
                if c.speculation {
                    cfg = cfg.with_speculation(Default::default());
                }
                let r = dare_mapred::run(cfg, &wl);
                (
                    vec![c.label.to_string()],
                    vec![
                        r.run.job_locality,
                        r.run.gmtt_secs,
                        r.run.mean_slowdown,
                        r.reexecuted_tasks as f64,
                        r.speculative_launches as f64,
                        r.speculative_wins as f64,
                    ],
                )
            })
        },
    );
    st.emit("ablation_resilience");
}

/// Scheduler agnosticism: DARE must help FIFO, Fair, *and* a scheduler
/// the paper never saw (simplified Capacity) — Section IV: "our scheme is
/// scheduler agnostic".
pub fn schedulers(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Ablation: scheduler agnosticism — DARE vs vanilla under three schedulers (wl2)",
        &["scheduler", "policy"],
        &[
            metric("job_locality", 3),
            metric("gmtt_s", 1),
            metric("slowdown", 3),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            let scheds = [
                SchedulerKind::Fifo,
                SchedulerKind::fair_default(),
                SchedulerKind::Capacity(3),
            ];
            let mut runs = Vec::new();
            for &sched in &scheds {
                for &policy in &[PolicyKind::Vanilla, PolicyKind::elephant_default()] {
                    runs.push((sched, policy));
                }
            }
            parallel_map(runs, |(sched, policy)| {
                let cfg = SimConfig::cct(policy, sched, seed);
                let r = dare_mapred::run(cfg, &wl);
                (
                    vec![sched.label().to_string(), policy.label()],
                    vec![r.run.job_locality, r.run.gmtt_secs, r.run.mean_slowdown],
                )
            })
        },
    );
    st.emit("ablation_schedulers");
}

/// Tail latency: DARE's effect on the slowdown *distribution*, not just
/// the mean — remote reads under contention are the straggler source, so
/// replication compresses the p95/p99 tail hardest. (The paper reports
/// mean slowdown; the tail is where users feel it.)
pub fn tail(seed: u64, seeds: u32) {
    let st = replicate_experiment(
        "Ablation: slowdown distribution — mean vs median vs p95 (FIFO)",
        &["workload", "policy"],
        &[
            metric("mean", 2),
            metric("p50", 2),
            metric("p95", 2),
            metric("p95_over_p50", 2),
        ],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let mut rows = Vec::new();
            for wl in [dare_workload::wl1(seed), dare_workload::wl2(seed)] {
                let runs: Vec<(&str, PolicyKind)> = vec![
                    ("vanilla", PolicyKind::Vanilla),
                    ("lru", PolicyKind::GreedyLru),
                    ("et-p0.3", PolicyKind::elephant_default()),
                ];
                let results = parallel_map(runs, |(label, policy)| {
                    let cfg = SimConfig::cct(policy, SchedulerKind::Fifo, seed);
                    (label, dare_mapred::run(cfg, &wl))
                });
                for (label, r) in &results {
                    rows.push((
                        vec![wl.name.clone(), label.to_string()],
                        vec![
                            r.run.mean_slowdown,
                            r.run.p50_slowdown,
                            r.run.p95_slowdown,
                            r.run.p95_slowdown / r.run.p50_slowdown.max(1e-9),
                        ],
                    ));
                }
            }
            rows
        },
    );
    st.emit("ablation_tail");
}

/// All seven ablations.
pub fn run(seed: u64, seeds: u32) {
    writes(seed, seeds);
    lfu(seed, seeds);
    delay(seed, seeds);
    scarlett(seed, seeds);
    resilience(seed, seeds);
    schedulers(seed, seeds);
    tail(seed, seeds);
}

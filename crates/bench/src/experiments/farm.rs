//! The factorial experiment farm — the `dare-farm` harness driven by the
//! real engine.
//!
//! Declares one [`SweepSpec`]: schedulers × replication policies ×
//! cluster profiles × fault levels × N replicate seeds, where scheduler
//! and policy are *treatment* axes (they share seeds within a replicate,
//! giving paired comparisons on common random numbers) and profile/fault
//! level are *seeded* environment axes (they enter the per-cell seed
//! hash). Every cell is a pure function of its coordinates and derived
//! seed: workload synthesis, fault-plan generation, and the engine run
//! all draw from `cell.seed`.
//!
//! The sweep runs twice — single-threaded and on all cores — and the
//! merged outputs are asserted byte-identical before anything is
//! written, so the files below are certified thread-count independent on
//! every invocation:
//!
//! - `results/farm_cells.csv` — one row per (cell, replicate), sorted by
//!   coordinate key then replicate;
//! - `results/farm_agg.csv` — one row per coordinate with
//!   `<metric>_mean,<metric>_std,<metric>_ci95` columns;
//! - `results/farm_merged.json` — the same aggregate, machine readable.
//!
//! Wall-clock goes to `results/BENCH_farm.json` only: cells/sec at each
//! thread count and the scaling efficiency `(t1/tN)/N`. Set
//! `BENCH_QUICK=1` for the CI smoke matrix (2×2×2 cells, fewer jobs).

use crate::harness::csv_path;
use dare_core::PolicyKind;
use dare_farm::{aggregate_csv, merged_json, per_cell_csv, run_sweep, Cell, RunOptions, SweepSpec};
use dare_mapred::{FaultPlan, FaultSpec, SchedulerKind, SimConfig};
use dare_simcore::DetRng;
use dare_workload::swim::{synthesize, SwimParams};

/// Metric columns every cell reports, in order.
pub const METRICS: [&str; 6] = [
    "job_locality",
    "task_locality",
    "gmtt_s",
    "p95_slowdown",
    "jobs_failed",
    "re_replicated",
];

/// The farm's sweep matrix. `quick` is the CI smoke shape: two levels
/// per axis on the CCT profile only. The full matrix is
/// 2 schedulers × 3 policies × 2 profiles × 3 fault levels.
pub fn spec(base_seed: u64, seeds: u32, quick: bool) -> SweepSpec {
    let s = SweepSpec::new("dare-farm", base_seed);
    let s = if quick {
        s.axis("scheduler", &["fifo", "fair"])
            .axis("policy", &["vanilla", "lru"])
            .seeded_axis("profile", &["cct"])
            .seeded_axis("faults", &["calm", "heavy"])
    } else {
        s.axis("scheduler", &["fifo", "fair"])
            .axis("policy", &["vanilla", "lru", "et"])
            .seeded_axis("profile", &["cct", "ec2"])
            .seeded_axis("faults", &["calm", "light", "heavy"])
    };
    s.seeds(seeds)
}

/// Jobs per synthesized workload for one cell.
pub fn jobs_per_cell(quick: bool) -> u32 {
    if quick {
        6
    } else {
        20
    }
}

fn fault_spec(level: &str, horizon_secs: u64) -> Option<FaultSpec> {
    match level {
        "calm" => None,
        "light" => Some(FaultSpec {
            horizon_secs,
            kills: 1,
            crashes: 3,
            mean_down_secs: 60,
            rack_outages: 0,
            stragglers: 2,
            straggler_factor: 3.0,
            corruption_rate_per_node_hour: 0.0,
        }),
        "heavy" => Some(FaultSpec {
            horizon_secs,
            kills: 3,
            crashes: 8,
            mean_down_secs: 90,
            rack_outages: 2,
            stragglers: 4,
            straggler_factor: 5.0,
            corruption_rate_per_node_hour: 0.0,
        }),
        other => panic!("unknown fault level {other:?}"),
    }
}

/// Run one cell of the matrix through the real engine. Pure function of
/// the cell (coordinates + derived seed) and `quick` — this is what
/// makes the merged outputs byte-stable across thread counts, and the
/// determinism test in `tests/farm_determinism.rs` holds this module to
/// it.
pub fn run_cell(cell: &Cell, quick: bool) -> Vec<f64> {
    let seed = cell.seed;
    let jobs = jobs_per_cell(quick);
    let wl = synthesize("wl1-farm", &SwimParams { jobs, ..SwimParams::wl1() }, seed);
    let span = wl.jobs.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0) as u64;
    let horizon = span.max(30) * 3 / 4;

    let sched = match cell.coord("scheduler").expect("scheduler axis") {
        "fifo" => SchedulerKind::Fifo,
        "fair" => SchedulerKind::fair_default(),
        other => panic!("unknown scheduler {other:?}"),
    };
    let policy = match cell.coord("policy").expect("policy axis") {
        "vanilla" => PolicyKind::Vanilla,
        "lru" => PolicyKind::GreedyLru,
        "et" => PolicyKind::elephant_default(),
        other => panic!("unknown policy {other:?}"),
    };
    let mut cfg = match cell.coord("profile").expect("profile axis") {
        "cct" => SimConfig::cct(policy, sched, seed),
        "ec2" => SimConfig::ec2(policy, sched, seed),
        other => panic!("unknown profile {other:?}"),
    };
    cfg = cfg.with_speculation(Default::default()).with_invariant_checks();

    let level = cell.coord("faults").expect("faults axis");
    if let Some(fs) = fault_spec(level, horizon) {
        let racks = cfg
            .profile
            .build_topology(&mut DetRng::new(seed).substream("topology"))
            .racks();
        // Distinct plan stream per level tag, mirroring the resilience
        // sweep's `seed ^ (level << 32)` idiom.
        let tag = if level == "light" { 1u64 } else { 2u64 };
        let plan = FaultPlan::generate(&fs, cfg.profile.nodes, racks, seed ^ (tag << 32));
        cfg = cfg.with_faults(plan);
    }

    let r = dare_mapred::run(cfg, &wl);
    vec![
        r.run.job_locality,
        r.run.locality,
        r.run.gmtt_secs,
        r.run.p95_slowdown,
        r.run.failed_jobs as f64,
        r.faults.blocks_re_replicated as f64,
    ]
}

fn write(name: &str, ext: &str, contents: &str) {
    let mut path = csv_path(name);
    path.set_extension(ext);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[farm] wrote {}", path.display()),
        Err(e) => eprintln!("[farm] could not write {}: {e}", path.display()),
    }
}

/// Execute the farm: the sweep at 1 thread and at all cores, a runtime
/// byte-stability assertion over the merged outputs, the three merged
/// files, and the `BENCH_farm.json` throughput report.
pub fn run(seed: u64, seeds: u32) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let spec = spec(seed, seeds, quick);
    let cells = spec.cell_count();
    let multi = RunOptions::all_cores();
    println!(
        "[farm] {} cells ({} coordinates x {} seeds), single-threaded pass then {} threads",
        cells,
        cells / seeds as usize,
        seeds,
        multi.threads
    );

    let t0 = std::time::Instant::now();
    let single = run_sweep(&spec, &METRICS, RunOptions::quiet(1), |c| run_cell(c, quick));
    let t_single = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let parallel = run_sweep(&spec, &METRICS, multi, |c| run_cell(c, quick));
    let t_multi = t1.elapsed().as_secs_f64();

    // The whole point of the harness: merged bytes must not depend on
    // thread count. Enforced on every run, not just in the test suite.
    let cells_csv = per_cell_csv(&single);
    let agg_csv = aggregate_csv(&single);
    let json = merged_json(&single);
    assert_eq!(cells_csv, per_cell_csv(&parallel), "per-cell CSV differs across thread counts");
    assert_eq!(agg_csv, aggregate_csv(&parallel), "aggregate CSV differs across thread counts");
    assert_eq!(json, merged_json(&parallel), "merged JSON differs across thread counts");
    println!("[farm] merged outputs byte-identical at 1 vs {} threads", multi.threads);

    write("farm_cells", "csv", &cells_csv);
    write("farm_agg", "csv", &agg_csv);
    write("farm_merged", "json", &json);

    let cps_single = cells as f64 / t_single.max(1e-9);
    let cps_multi = cells as f64 / t_multi.max(1e-9);
    let efficiency = (t_single / t_multi.max(1e-9)) / multi.threads as f64;
    println!(
        "[farm] {cells} cells: {t_single:.2}s at 1 thread ({cps_single:.2} cells/s), \
         {t_multi:.2}s at {} threads ({cps_multi:.2} cells/s, {:.0}% scaling efficiency)",
        multi.threads,
        efficiency * 100.0
    );

    let bench = format!(
        "{{\n  \"config\": {{\"quick\": {quick}, \"base_seed\": {seed}, \"seeds\": {seeds}, \
         \"cells\": {cells}, \"jobs_per_cell\": {}}},\n\
         \"single\": {{\"threads\": 1, \"secs\": {t_single:.3}, \"cells_per_sec\": {cps_single:.3}}},\n\
         \"parallel\": {{\"threads\": {}, \"secs\": {t_multi:.3}, \"cells_per_sec\": {cps_multi:.3}}},\n\
         \"scaling_efficiency\": {efficiency:.3},\n  \"byte_stable\": true\n}}\n",
        jobs_per_cell(quick),
        multi.threads
    );
    write("BENCH_farm", "json", &bench);
}

//! Critical-path attribution experiment (`experiments -- attribution`).
//!
//! Runs the pinned golden matrix (FIFO/Fair × vanilla/DARE-LRU) on two
//! workloads — the golden dozen-job SWIM trace and the skew-heavy
//! "yahoo" profile — with tracing on, feeds every trace through
//! `dare-xray`, and reports *where the turnaround went*: per-cell mean
//! critical-path seconds in each lifecycle bucket plus the what-if
//! turnaround bounds. The headline number is `cp_fetch_s`, the
//! critical-path seconds attributable to non-local fetches: comparing
//! it between vanilla and DARE-LRU says how much of the policy's
//! fig7-style turnaround win is explained by moving remote fetches off
//! the critical path (the paper's core mechanism) rather than by
//! queueing side effects.
//!
//! Output is `results/attribution.csv` (one row per workload ×
//! scheduler × policy; `--seeds N` appends spread columns) and
//! `results/BENCH_xray.json` with the base-seed comparison and gate
//! results. Like the golden harness, the matrix is pinned to
//! [`GOLDEN_SEED`] — `--seed` is ignored — so the gates check exact,
//! reproducible numbers:
//!
//! 1. every cell's xray report passes `check()` (components sum to the
//!    measured wall clock exactly; what-ifs never exceed actual);
//! 2. on the yahoo profile, DARE-LRU's total critical-path fetch
//!    seconds are strictly below vanilla's for every scheduler;
//! 3. the xray CSV/JSON exports are byte-identical when the same cell
//!    is simulated and analyzed twice.

use crate::harness::{metric, replicate_experiment, MetricCol, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::golden::{golden_params, yahoo_params, GOLDEN_SEED};
use dare_mapred::{SchedulerKind, SimConfig};
use dare_workload::swim::{synthesize, SwimParams};
use dare_workload::Workload;
use dare_xray::{analyze, Bucket, XrayReport};

/// The scheduler × policy grid every workload runs under.
fn grid() -> Vec<(&'static str, SchedulerKind, &'static str, PolicyKind)> {
    vec![
        ("fifo", SchedulerKind::Fifo, "vanilla", PolicyKind::Vanilla),
        ("fifo", SchedulerKind::Fifo, "dare-lru", PolicyKind::GreedyLru),
        (
            "fair",
            SchedulerKind::fair_default(),
            "vanilla",
            PolicyKind::Vanilla,
        ),
        (
            "fair",
            SchedulerKind::fair_default(),
            "dare-lru",
            PolicyKind::GreedyLru,
        ),
    ]
}

/// The two workload shapes, resynthesized per replicate seed.
fn workloads(seed: u64) -> Vec<Workload> {
    let shapes: [(&str, SwimParams); 2] =
        [("golden", golden_params()), ("yahoo", yahoo_params())];
    shapes
        .into_iter()
        .map(|(name, params)| synthesize(name, &params, seed))
        .collect()
}

/// Run one traced cell and return its xray report.
fn run_cell(wl: &Workload, sched: SchedulerKind, policy: PolicyKind, seed: u64) -> XrayReport {
    let mut cfg = SimConfig::cct(policy, sched, seed);
    // Full-share budget for the same reason the golden scenarios use
    // it: these datasets are tiny, and the paper's 0.2 fraction would
    // round a node's budget below one block.
    cfg.budget_frac = 1.0;
    cfg.record_trace = true;
    let r = dare_mapred::run(cfg, wl);
    analyze(&r.trace.expect("attribution cells record traces"))
}

/// Per-job means (seconds) for one cell, in the metric column order.
fn cell_metrics(report: &XrayReport) -> Vec<f64> {
    let t = report.totals();
    let n = (t.jobs as f64).max(1.0);
    let mean = |us: u64| us as f64 / 1e6 / n;
    vec![
        mean(t.turnaround_us),
        mean(t.cp_us[Bucket::Queue as usize]),
        mean(t.cp_us[Bucket::SchedDelay as usize]),
        mean(t.cp_us[Bucket::Fetch as usize]),
        mean(t.cp_us[Bucket::Recovery as usize]),
        mean(t.cp_us[Bucket::Compute as usize]),
        mean(t.cp_us[Bucket::Retry as usize]),
        mean(t.reduce_us),
        mean(t.whatif_all_local_us),
        mean(t.whatif_zero_sched_us),
    ]
}

const METRICS: [MetricCol; 10] = [
    metric("turnaround_s", 3),
    metric("cp_queue_s", 3),
    metric("cp_sched_delay_s", 3),
    metric("cp_fetch_s", 3),
    metric("cp_recovery_s", 3),
    metric("cp_compute_s", 3),
    metric("cp_retry_s", 3),
    metric("reduce_s", 3),
    metric("whatif_all_local_s", 3),
    metric("whatif_zero_sched_s", 3),
];

/// Run the experiment. Returns the number of failed gates.
pub fn run(_seed: u64, seeds: u32) -> usize {
    // The gates compare exact integers on the pinned matrix, so like
    // trace-smoke this experiment ignores `--seed`.
    let mut failed = 0usize;

    // --- Base-seed matrix: gates + the BENCH report.
    // cell key -> (jobs, turnaround_us, cp_fetch_us, whatif_all_local_us)
    let mut base: Vec<(String, String, String, u64, u64, u64, u64)> = Vec::new();
    for wl in workloads(GOLDEN_SEED) {
        for (sched_name, sched, policy_name, policy) in grid() {
            let report = run_cell(&wl, sched, policy, GOLDEN_SEED);
            if let Err(e) = report.check() {
                eprintln!(
                    "[attribution] FAIL: {}/{sched_name}/{policy_name}: invariant violated: {e}",
                    wl.name
                );
                failed += 1;
            }
            let t = report.totals();
            println!(
                "[attribution] {:<6} {:<4} {:<8} {} jobs: turnaround {}s, cp-fetch {}s, all-local {}s",
                wl.name,
                sched_name,
                policy_name,
                t.jobs,
                dare_xray::secs(t.turnaround_us),
                dare_xray::secs(t.cp_us[Bucket::Fetch as usize]),
                dare_xray::secs(t.whatif_all_local_us),
            );
            base.push((
                wl.name.clone(),
                sched_name.into(),
                policy_name.into(),
                t.jobs as u64,
                t.turnaround_us,
                t.cp_us[Bucket::Fetch as usize],
                t.whatif_all_local_us,
            ));
        }
    }

    let find = |wl: &str, sched: &str, policy: &str| {
        base.iter()
            .find(|(w, s, p, ..)| w == wl && s == sched && p == policy)
            .expect("base matrix covers the full grid")
    };

    // --- Gate: DARE-LRU must strictly reduce critical-path fetch
    // seconds on the skewed profile, for every scheduler.
    let mut comparisons = String::new();
    for sched in ["fifo", "fair"] {
        let van = find("yahoo", sched, "vanilla");
        let lru = find("yahoo", sched, "dare-lru");
        let (van_turn, van_fetch) = (van.4, van.5);
        let (lru_turn, lru_fetch) = (lru.4, lru.5);
        if lru_fetch >= van_fetch {
            eprintln!(
                "[attribution] FAIL: yahoo/{sched}: DARE-LRU cp-fetch {}s is not strictly \
                 below vanilla {}s",
                dare_xray::secs(lru_fetch),
                dare_xray::secs(van_fetch)
            );
            failed += 1;
        }
        let fetch_cut = van_fetch.saturating_sub(lru_fetch);
        let turn_cut = van_turn.saturating_sub(lru_turn);
        let explained = if turn_cut > 0 {
            fetch_cut as f64 / turn_cut as f64
        } else {
            0.0
        };
        println!(
            "[attribution] yahoo/{sched}: DARE-LRU cuts cp-fetch by {}s and turnaround by {}s \
             ({:.0}% of the win is critical-path fetch)",
            dare_xray::secs(fetch_cut),
            dare_xray::secs(turn_cut),
            explained * 100.0
        );
        if !comparisons.is_empty() {
            comparisons.push(',');
        }
        comparisons.push_str(&format!(
            "\n    {{\"scheduler\": \"{sched}\", \"vanilla_cp_fetch_s\": {}, \
             \"dare_lru_cp_fetch_s\": {}, \"cp_fetch_cut_s\": {}, \"turnaround_cut_s\": {}, \
             \"explained_frac\": {explained:.4}}}",
            dare_xray::secs(van_fetch),
            dare_xray::secs(lru_fetch),
            dare_xray::secs(fetch_cut),
            dare_xray::secs(turn_cut),
        ));
    }

    // --- Gate: byte-stable exports. Simulate and analyze the busiest
    // cell twice; the rendered CSV and JSON must match byte for byte.
    let yahoo = workloads(GOLDEN_SEED).pop().expect("yahoo workload");
    let a = run_cell(&yahoo, SchedulerKind::fair_default(), PolicyKind::GreedyLru, GOLDEN_SEED);
    let b = run_cell(&yahoo, SchedulerKind::fair_default(), PolicyKind::GreedyLru, GOLDEN_SEED);
    let byte_stable =
        dare_xray::to_csv(&a) == dare_xray::to_csv(&b) && dare_xray::to_json(&a) == dare_xray::to_json(&b);
    if byte_stable {
        println!("[attribution] export stability ... ok (two runs, identical bytes)");
    } else {
        eprintln!("[attribution] FAIL: xray exports differ between identical runs");
        failed += 1;
    }

    // --- The replicated table (CSV artifact).
    let st = replicate_experiment(
        "Critical-path attribution (golden matrix + yahoo profile)",
        &["workload", "scheduler", "policy"],
        &METRICS,
        RowOrder::FirstAppearance,
        GOLDEN_SEED,
        seeds,
        |seed| {
            let mut rows = Vec::new();
            for wl in workloads(seed) {
                for (sched_name, sched, policy_name, policy) in grid() {
                    let report = run_cell(&wl, sched, policy, seed);
                    rows.push((
                        vec![wl.name.clone(), sched_name.into(), policy_name.into()],
                        cell_metrics(&report),
                    ));
                }
            }
            rows
        },
    );
    st.emit("attribution");

    // --- Report.
    let results = crate::harness::csv_path("x");
    let report_path = results.parent().expect("csv dir").join("BENCH_xray.json");
    let mut json = String::from("{\n  \"schema\": \"dare-xray-bench-v1\",\n");
    json.push_str(&format!("  \"seed\": {GOLDEN_SEED},\n"));
    json.push_str(&format!("  \"byte_stable\": {byte_stable},\n"));
    json.push_str(&format!("  \"gates_failed\": {failed},\n"));
    json.push_str("  \"cells\": [");
    for (i, (wl, sched, policy, jobs, turn, fetch, all_local)) in base.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"workload\": \"{wl}\", \"scheduler\": \"{sched}\", \"policy\": \"{policy}\", \
             \"jobs\": {jobs}, \"turnaround_s\": {}, \"cp_fetch_s\": {}, \"whatif_all_local_s\": {}}}",
            dare_xray::secs(*turn),
            dare_xray::secs(*fetch),
            dare_xray::secs(*all_local),
        ));
    }
    json.push_str("\n  ],\n  \"yahoo_comparisons\": [");
    json.push_str(&comparisons);
    json.push_str("\n  ]\n}\n");
    match std::fs::write(&report_path, &json) {
        Ok(()) => println!("[attribution] wrote {}", report_path.display()),
        Err(e) => {
            eprintln!("[attribution] could not write {}: {e}", report_path.display());
            failed += 1;
        }
    }
    failed
}

//! Fig. 9 — sensitivity to the replication budget, on wl2: panel (a) DARE
//! with greedy LRU eviction; panel (b) DARE with ElephantTrap eviction at
//! p = 0.9 and p = 0.3 (threshold = 1).
//!
//! The `job_locality` column is re-derived from each run's telemetry
//! series (the terminal per-job rows) rather than read off `RunMetrics`
//! directly; the sweep asserts the two paths agree bitwise, so the figure
//! doubles as a live cross-check of the sampler against the summarizer.

use crate::harness::{metric, replicate_experiment, RowOrder};
use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig, TelemetryConfig};
use dare_simcore::parallel::parallel_map;
use dare_simcore::SimDuration;

// The paper sweeps 0.0-0.9; we add 0.02 and 0.05 points because that is
// where the budget binds against the hot working set and the
// replicas-created curve shows its churn (the paper's smaller cluster
// budget was binding across more of its range).
const BUDGETS: [f64; 11] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.8, 0.9];

fn sweep(policies: &[PolicyKind], title: &str, csv: &str, seed: u64, seeds: u32) {
    let st = replicate_experiment(
        title,
        &["policy", "scheduler", "budget"],
        &[metric("job_locality", 3), metric("blocks_per_job", 2)],
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |seed| {
            let wl = dare_workload::wl2(seed);
            let mut runs = Vec::new();
            for &policy in policies {
                for &sched in &[SchedulerKind::Fifo, SchedulerKind::fair_default()] {
                    for &b in &BUDGETS {
                        runs.push((policy, sched, b));
                    }
                }
            }
            parallel_map(runs, |(policy, sched, b)| {
                let mut cfg = SimConfig::cct(policy, sched, seed);
                cfg.budget_frac = b;
                // A coarse interval keeps the series small; only the
                // terminal sample feeds the derived column.
                cfg = cfg.with_telemetry(TelemetryConfig {
                    interval: SimDuration::from_secs(30),
                });
                let r = dare_mapred::run(cfg, &wl);
                let derived = r
                    .telemetry_job_locality()
                    .expect("telemetry-enabled run with completed jobs");
                assert_eq!(
                    derived.to_bits(),
                    r.run.job_locality.to_bits(),
                    "telemetry-derived job locality drifted from the summarized metric"
                );
                (
                    vec![
                        policy.label(),
                        sched.label().to_string(),
                        format!("{b:.2}"),
                    ],
                    vec![derived, r.blocks_per_job],
                )
            })
        },
    );
    st.emit(csv);
}

/// Regenerate Fig. 9a (LRU eviction).
pub fn lru(seed: u64, seeds: u32) {
    sweep(
        &[PolicyKind::GreedyLru],
        "Fig. 9a: locality and blocks/job vs budget — DARE with LRU eviction (wl2)",
        "fig9a",
        seed,
        seeds,
    );
}

/// Regenerate Fig. 9b (ElephantTrap eviction, p = 0.9 and 0.3).
pub fn elephant(seed: u64, seeds: u32) {
    sweep(
        &[
            PolicyKind::ElephantTrap {
                p: 0.9,
                threshold: 1,
            },
            PolicyKind::ElephantTrap {
                p: 0.3,
                threshold: 1,
            },
        ],
        "Fig. 9b: locality and blocks/job vs budget — DARE with ElephantTrap eviction (thr=1, wl2)",
        "fig9b",
        seed,
        seeds,
    );
}

/// Both panels.
pub fn run(seed: u64, seeds: u32) {
    lru(seed, seeds);
    elephant(seed, seeds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_mapred::golden::{golden_scenarios, golden_workload};

    /// The figure's `job_locality` column is re-derived from telemetry;
    /// both derivations must agree bitwise on a full run (here the golden
    /// workload rather than wl2, to keep the test cheap).
    #[test]
    fn telemetry_derived_job_locality_matches_summary() {
        let wl = golden_workload();
        for (name, cfg) in golden_scenarios() {
            let cfg = cfg.with_telemetry(TelemetryConfig {
                interval: SimDuration::from_secs(30),
            });
            let r = dare_mapred::run(cfg, &wl);
            let derived = r.telemetry_job_locality().expect("completed jobs");
            assert_eq!(
                derived.to_bits(),
                r.run.job_locality.to_bits(),
                "{name}: telemetry path disagrees with summarize()"
            );
        }
    }
}

//! Resilience sweep: failure intensity × replication policy.
//!
//! Exercises the full fault-injection subsystem on the EC2 profile —
//! permanent kills, transient crash/rejoin cycles, rack outages, and
//! straggler episodes generated from a [`FaultSpec`] — and measures how
//! the DARE policies hold up against a vanilla baseline when nodes are
//! actually dying: job turnaround and locality, retry/re-execution churn,
//! and the namenode's recovery work (blocks re-replicated through the
//! contended network, data loss if any).
//!
//! Runtime invariant checking is enabled for every cell, so the sweep
//! doubles as a stress test of the engine's failure paths. With
//! `--seeds N` the whole sweep — workload synthesis, fault plans, and
//! runs — replicates over N derived seeds; CSV value columns become
//! means with appended `_std`/`_ci95`, and the JSON rows carry
//! mean/ci95 pairs. Emits `results/resilience.csv` plus
//! machine-readable `results/BENCH_resilience.json`. Set `BENCH_QUICK=1`
//! for the CI smoke configuration (fewer jobs, same fault shapes).

use crate::harness::{csv_path, metric, replicate_experiment, MetricCol, RowOrder, SeedTable};
use dare_core::PolicyKind;
use dare_mapred::{FaultPlan, FaultSpec, SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;
use dare_simcore::DetRng;
use dare_workload::swim::{synthesize, SwimParams};

/// One failure-intensity level of the sweep.
#[derive(Clone, Copy)]
struct Level {
    label: &'static str,
    spec: Option<FaultSpec>,
}

fn levels(horizon_secs: u64) -> Vec<Level> {
    vec![
        Level {
            label: "calm",
            spec: None,
        },
        Level {
            label: "light",
            spec: Some(FaultSpec {
                horizon_secs,
                kills: 1,
                crashes: 4,
                mean_down_secs: 60,
                rack_outages: 1,
                stragglers: 2,
                straggler_factor: 3.0,
                corruption_rate_per_node_hour: 0.0,
            }),
        },
        Level {
            label: "heavy",
            spec: Some(FaultSpec {
                horizon_secs,
                kills: 4,
                crashes: 12,
                mean_down_secs: 90,
                rack_outages: 3,
                stragglers: 5,
                straggler_factor: 5.0,
                corruption_rate_per_node_hour: 0.0,
            }),
        },
    ]
}

const METRICS: [MetricCol; 13] = [
    metric("jobs_ok", 0),
    metric("jobs_failed", 0),
    metric("job_locality", 3),
    metric("gmtt_s", 1),
    metric("p95_slowdown", 2),
    metric("reexecuted", 0),
    metric("tasks_retried", 0),
    metric("tasks_failed", 0),
    metric("declared_dead", 0),
    metric("rejoined", 0),
    metric("re_replicated", 0),
    metric("recovery_MB", 1),
    metric("blocks_lost", 0),
];

/// One seed's sweep: fresh workload, fresh fault plans, all cells.
fn collect(seed: u64, jobs: u32) -> Vec<(Vec<String>, Vec<f64>)> {
    let wl = synthesize("wl1-resilience", &SwimParams { jobs, ..SwimParams::wl1() }, seed);
    // Draw fault times from the window the cluster is actually busy, so
    // the sweep stresses the run instead of scheduling faults after the
    // last job has finished.
    let span = wl.jobs.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0) as u64;
    let horizon = span.max(30) * 3 / 4;
    let base = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::fair_default(), seed);
    // Fault plans are validated against the topology the engine will
    // build, so derive the rack count exactly the same way.
    let racks = base
        .profile
        .build_topology(&mut DetRng::new(seed).substream("topology"))
        .racks();
    let nodes = base.profile.nodes;

    let policies = [
        PolicyKind::Vanilla,
        PolicyKind::GreedyLru,
        PolicyKind::elephant_default(),
    ];
    let mut cells = Vec::new();
    for (li, level) in levels(horizon).into_iter().enumerate() {
        let plan = level
            .spec
            .map(|s| FaultPlan::generate(&s, nodes, racks, seed ^ ((li as u64) << 32)));
        for &policy in &policies {
            cells.push((level.label, plan.clone(), policy));
        }
    }

    const MB: f64 = (1u64 << 20) as f64;
    parallel_map(cells, |(label, plan, policy)| {
        let mut cfg = base
            .clone()
            .with_speculation(Default::default())
            .with_invariant_checks();
        cfg.policy = policy;
        if let Some(p) = plan {
            cfg = cfg.with_faults(p);
        }
        let r = dare_mapred::run(cfg, &wl);
        (
            vec![label.to_string(), policy.label()],
            vec![
                r.run.jobs as f64,
                r.run.failed_jobs as f64,
                r.run.job_locality,
                r.run.gmtt_secs,
                r.run.p95_slowdown,
                r.reexecuted_tasks as f64,
                r.faults.tasks_retried as f64,
                r.faults.tasks_failed as f64,
                r.faults.nodes_declared_dead as f64,
                r.faults.nodes_rejoined as f64,
                r.faults.blocks_re_replicated as f64,
                r.faults.recovery_bytes as f64 / MB,
                r.faults.blocks_lost as f64,
            ],
        )
    })
}

/// Failure intensity × policy sweep on the EC2 profile.
pub fn run(seed: u64, seeds: u32) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let jobs: u32 = if quick { 30 } else { 100 };

    let st = replicate_experiment(
        "Resilience: failure intensity x policy (ec2, fair, speculation; heartbeat-timeout detection, networked re-replication)",
        &["level", "policy"],
        &METRICS,
        RowOrder::FirstAppearance,
        seed,
        seeds,
        |s| collect(s, jobs),
    );
    st.emit("resilience");
    write_json(seed, jobs, quick, &st);
}

/// Machine-readable companion of the CSV, mirroring `BENCH_sched.json`:
/// per-row mean and 95 % CI half-width of every metric across seeds.
fn write_json(seed: u64, jobs: u32, quick: bool, st: &SeedTable) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"profile\": \"ec2\", \"scheduler\": \"fair\", \"speculation\": true, \"jobs\": {jobs}, \"seed\": {seed}, \"seeds\": {}, \"quick\": {quick}}},\n",
        st.seeds
    ));
    json.push_str("  \"rows\": [\n");
    for (i, (labels, sums)) in st.rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"level\": \"{}\", \"policy\": \"{}\"",
            labels[0], labels[1]
        ));
        for (m, s) in METRICS.iter().zip(sums.iter()) {
            json.push_str(&format!(", \"{}\": {:.6}, \"{}_ci95\": {:.6}", m.name, s.mean, m.name, s.ci95));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < st.rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut path = csv_path("BENCH_resilience");
    path.set_extension("json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] wrote {}", path.display()),
        Err(e) => eprintln!("[json] could not write {}: {e}", path.display()),
    }
}

//! Resilience sweep: failure intensity × replication policy.
//!
//! Exercises the full fault-injection subsystem on the EC2 profile —
//! permanent kills, transient crash/rejoin cycles, rack outages, and
//! straggler episodes generated from a [`FaultSpec`] — and measures how
//! the DARE policies hold up against a vanilla baseline when nodes are
//! actually dying: job turnaround and locality, retry/re-execution churn,
//! and the namenode's recovery work (blocks re-replicated through the
//! contended network, data loss if any).
//!
//! Runtime invariant checking is enabled for every cell, so the sweep
//! doubles as a stress test of the engine's failure paths. Emits
//! `results/resilience.csv` plus machine-readable
//! `results/BENCH_resilience.json`. Set `BENCH_QUICK=1` for the CI smoke
//! configuration (fewer jobs, same fault shapes).

use crate::harness::{csv_path, write_csv, Table};
use dare_core::PolicyKind;
use dare_mapred::{FaultPlan, FaultSpec, SchedulerKind, SimConfig};
use dare_simcore::parallel::parallel_map;
use dare_simcore::DetRng;
use dare_workload::swim::{synthesize, SwimParams};

/// One failure-intensity level of the sweep.
#[derive(Clone, Copy)]
struct Level {
    label: &'static str,
    spec: Option<FaultSpec>,
}

fn levels(horizon_secs: u64) -> Vec<Level> {
    vec![
        Level {
            label: "calm",
            spec: None,
        },
        Level {
            label: "light",
            spec: Some(FaultSpec {
                horizon_secs,
                kills: 1,
                crashes: 4,
                mean_down_secs: 60,
                rack_outages: 1,
                stragglers: 2,
                straggler_factor: 3.0,
                corruption_rate_per_node_hour: 0.0,
            }),
        },
        Level {
            label: "heavy",
            spec: Some(FaultSpec {
                horizon_secs,
                kills: 4,
                crashes: 12,
                mean_down_secs: 90,
                rack_outages: 3,
                stragglers: 5,
                straggler_factor: 5.0,
                corruption_rate_per_node_hour: 0.0,
            }),
        },
    ]
}

/// Failure intensity × policy sweep on the EC2 profile.
pub fn run(seed: u64) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let jobs: u32 = if quick { 30 } else { 100 };

    let wl = synthesize("wl1-resilience", &SwimParams { jobs, ..SwimParams::wl1() }, seed);
    // Draw fault times from the window the cluster is actually busy, so
    // the sweep stresses the run instead of scheduling faults after the
    // last job has finished.
    let span = wl.jobs.last().map(|j| j.arrival.as_secs_f64()).unwrap_or(0.0) as u64;
    let horizon = span.max(30) * 3 / 4;
    let base = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::fair_default(), seed);
    // Fault plans are validated against the topology the engine will
    // build, so derive the rack count exactly the same way.
    let racks = base
        .profile
        .build_topology(&mut DetRng::new(seed).substream("topology"))
        .racks();
    let nodes = base.profile.nodes;

    let policies = [
        PolicyKind::Vanilla,
        PolicyKind::GreedyLru,
        PolicyKind::elephant_default(),
    ];
    let mut cells = Vec::new();
    for (li, level) in levels(horizon).into_iter().enumerate() {
        let plan = level
            .spec
            .map(|s| FaultPlan::generate(&s, nodes, racks, seed ^ ((li as u64) << 32)));
        for &policy in &policies {
            cells.push((level.label, plan.clone(), policy));
        }
    }

    let results = parallel_map(cells, |(label, plan, policy)| {
        let mut cfg = base
            .clone()
            .with_speculation(Default::default())
            .with_invariant_checks();
        cfg.policy = policy;
        if let Some(p) = plan {
            cfg = cfg.with_faults(p);
        }
        (label, policy, dare_mapred::run(cfg, &wl))
    });

    let mut t = Table::new(
        "Resilience: failure intensity x policy (ec2, fair, speculation; heartbeat-timeout detection, networked re-replication)",
        &[
            "level",
            "policy",
            "jobs_ok",
            "jobs_failed",
            "job_locality",
            "gmtt_s",
            "p95_slowdown",
            "reexecuted",
            "tasks_retried",
            "declared_dead",
            "rejoined",
            "re_replicated",
            "recovery_MB",
            "blocks_lost",
        ],
    );
    const MB: f64 = (1u64 << 20) as f64;
    for (label, policy, r) in &results {
        t.row(vec![
            label.to_string(),
            policy.label(),
            r.run.jobs.to_string(),
            r.run.failed_jobs.to_string(),
            format!("{:.3}", r.run.job_locality),
            format!("{:.1}", r.run.gmtt_secs),
            format!("{:.2}", r.run.p95_slowdown),
            r.reexecuted_tasks.to_string(),
            r.faults.tasks_retried.to_string(),
            r.faults.nodes_declared_dead.to_string(),
            r.faults.nodes_rejoined.to_string(),
            r.faults.blocks_re_replicated.to_string(),
            format!("{:.1}", r.faults.recovery_bytes as f64 / MB),
            r.faults.blocks_lost.to_string(),
        ]);
    }
    t.print();
    write_csv("resilience", &t);
    write_json(seed, jobs, quick, &results);
}

/// Machine-readable companion of the CSV, mirroring `BENCH_sched.json`.
fn write_json(seed: u64, jobs: u32, quick: bool, results: &[(&str, PolicyKind, dare_mapred::SimResult)]) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"profile\": \"ec2\", \"scheduler\": \"fair\", \"speculation\": true, \"jobs\": {jobs}, \"seed\": {seed}, \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, (label, policy, r)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"level\": \"{label}\", \"policy\": \"{}\", \"jobs_ok\": {}, \"jobs_failed\": {}, \
             \"job_locality\": {:.6}, \"gmtt_secs\": {:.3}, \"p95_slowdown\": {:.4}, \
             \"reexecuted\": {}, \"tasks_retried\": {}, \"tasks_failed\": {}, \
             \"nodes_declared_dead\": {}, \"nodes_rejoined\": {}, \
             \"blocks_re_replicated\": {}, \"recovery_bytes\": {}, \"blocks_lost\": {}}}{}\n",
            policy.label(),
            r.run.jobs,
            r.run.failed_jobs,
            r.run.job_locality,
            r.run.gmtt_secs,
            r.run.p95_slowdown,
            r.reexecuted_tasks,
            r.faults.tasks_retried,
            r.faults.tasks_failed,
            r.faults.nodes_declared_dead,
            r.faults.nodes_rejoined,
            r.faults.blocks_re_replicated,
            r.faults.recovery_bytes,
            r.faults.blocks_lost,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut path = csv_path("BENCH_resilience");
    path.set_extension("json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] wrote {}", path.display()),
        Err(e) => eprintln!("[json] could not write {}: {e}", path.display()),
    }
}

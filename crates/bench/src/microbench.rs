//! A miniature wall-clock benchmark harness.
//!
//! The workspace builds offline, so `criterion` is not available. This
//! module provides the small slice of it the benches use: named timed
//! loops (with optional per-iteration setup), median-of-rounds timing,
//! and machine-readable results that the scheduler benchmark serializes
//! to `results/BENCH_sched.json`.
//!
//! Run with `cargo bench`. Set `BENCH_QUICK=1` (or pass `--quick`) for a
//! smoke-test run with ~10× shorter measurement windows — used by CI to
//! verify the benches still execute without paying full measurement cost.

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier, so bench files don't
/// each need to reach into `std::hint`.
pub use std::hint::black_box;

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"scheduler_pick_map/fifo/32"`.
    pub name: String,
    /// Median nanoseconds per iteration across measurement rounds.
    pub median_ns: f64,
    /// Fastest round (ns/iter) — a lower bound on the true cost.
    pub min_ns: f64,
    /// Slowest round (ns/iter).
    pub max_ns: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

impl BenchResult {
    /// Human-readable ns/iter with adaptive units.
    pub fn pretty(&self) -> String {
        fn fmt(ns: f64) -> String {
            if ns < 1_000.0 {
                format!("{ns:.1} ns")
            } else if ns < 1_000_000.0 {
                format!("{:.2} µs", ns / 1_000.0)
            } else if ns < 1_000_000_000.0 {
                format!("{:.2} ms", ns / 1_000_000.0)
            } else {
                format!("{:.2} s", ns / 1_000_000_000.0)
            }
        }
        format!(
            "{:<44} {:>12}/iter  (min {}, max {})",
            self.name,
            fmt(self.median_ns),
            fmt(self.min_ns),
            fmt(self.max_ns)
        )
    }
}

/// Collects and times named benchmarks.
pub struct Runner {
    /// Shorter measurement windows (CI smoke mode).
    pub quick: bool,
    results: Vec<BenchResult>,
    rounds: usize,
    target: Duration,
}

impl Runner {
    /// Build a runner; `quick` shrinks the per-round measurement window.
    pub fn new(quick: bool) -> Self {
        Runner {
            quick,
            results: Vec::new(),
            rounds: if quick { 3 } else { 7 },
            target: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
        }
    }

    /// Build a runner honoring `BENCH_QUICK=1` and a `--quick` CLI flag.
    pub fn from_env() -> Self {
        let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0")
            || std::env::args().any(|a| a == "--quick");
        Self::new(quick)
    }

    /// Time `f` (called once per iteration) and record the result.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        self.bench_batched(name, || (), move |()| f())
    }

    /// Time `f` with a fresh `setup()` value per iteration; only `f` is
    /// on the clock. The analogue of criterion's `iter_batched`.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) -> &BenchResult {
        // Calibrate: grow the batch size until one batch takes >= ~1/10th
        // of the round target, so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for s in inputs {
                black_box(f(s));
            }
            let dt = t0.elapsed();
            if dt >= self.target / 10 || batch >= 1 << 24 {
                break;
            }
            // Aim directly at the threshold, with 2× headroom minimum.
            let scale = (self.target.as_secs_f64() / 10.0 / dt.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale.clamp(2.0, 1024.0) as u64)).min(1 << 24);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.rounds);
        let mut total_iters = 0u64;
        for _ in 0..self.rounds {
            let mut round_iters = 0u64;
            let mut elapsed = Duration::ZERO;
            while elapsed < self.target {
                let inputs: Vec<S> = (0..batch).map(|_| setup()).collect();
                let t0 = Instant::now();
                for s in inputs {
                    black_box(f(s));
                }
                elapsed += t0.elapsed();
                round_iters += batch;
            }
            per_iter.push(elapsed.as_nanos() as f64 / round_iters as f64);
            total_iters += round_iters;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters: total_iters,
        };
        println!("{}", result.pretty());
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a footer; call at the end of a bench binary.
    pub fn finish(&self, group: &str) {
        println!(
            "[{group}] {} benchmarks, {} mode",
            self.results.len(),
            if self.quick { "quick" } else { "full" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut r = Runner::new(true);
        let res = r.bench("noop_add", || black_box(2u64) + black_box(3u64)).clone();
        assert!(res.median_ns >= 0.0);
        assert!(res.iters > 0);
        assert!(res.min_ns <= res.median_ns && res.median_ns <= res.max_ns);
        assert_eq!(r.results().len(), 1);
    }

    #[test]
    fn batched_setup_not_on_clock() {
        let mut r = Runner::new(true);
        // Setup builds a vector; the timed body only reads one element.
        let res = r
            .bench_batched(
                "read_first",
                || vec![1u64; 64],
                |v| v[0],
            )
            .clone();
        assert!(res.iters > 0);
    }
}

//! Regenerates every table and figure of the DARE paper (CLUSTER 2011).
//!
//! ```text
//! cargo run --release -p dare-bench --bin experiments -- all
//! cargo run --release -p dare-bench --bin experiments -- fig7 --seeds 5
//! ```
//!
//! All parsing and dispatch lives in [`dare_bench::cli`], which is also
//! what the `dare-sim experiments` subcommand forwards to. Output:
//! console tables plus CSV/JSON files under `results/`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dare_bench::cli::run(&args));
}

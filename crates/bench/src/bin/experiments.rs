//! Regenerates every table and figure of the DARE paper (CLUSTER 2011).
//!
//! ```text
//! cargo run --release -p dare-bench --bin experiments -- all
//! cargo run --release -p dare-bench --bin experiments -- fig7 [--seed N]
//! ```
//!
//! Ids: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 ablation resilience durability all. Output: console tables plus
//! CSV files under `results/`.

use dare_bench::experiments::*;
use dare_bench::harness::DEFAULT_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut seed = DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }

    let t0 = std::time::Instant::now();
    for w in &which {
        run_one(w, seed);
    }
    eprintln!("\n[experiments] done in {:.1}s", t0.elapsed().as_secs_f64());
}

fn run_one(which: &str, seed: u64) {
    match which {
        "table1" => tables::table1(seed),
        "table2" => tables::table2(seed),
        "fig1" => fig1::run(seed),
        "fig2" => fig2::run(seed),
        "fig3" => fig3::run(seed),
        "fig4" => fig45::fig4(seed),
        "fig5" => fig45::fig5(seed),
        "fig6" => fig6::run(seed),
        "fig7" => {
            fig7::run(seed);
        }
        "fig7ci" => fig7::run_replicated(seed, 10),
        "fig8" => fig8::run(seed),
        "fig9" => fig9::run(seed),
        "fig10" => {
            fig10::run(seed);
        }
        "fig11" => fig11::run(seed),
        "ablation" => ablation::run(seed),
        "resilience" => resilience::run(seed),
        "durability" => durability::run(seed),
        "verify" => {
            let failed = verify::run_all(seed);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "trace-smoke" => {
            let failed = trace_smoke::run(seed);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "telemetry-smoke" => {
            let failed = telemetry_smoke::run(seed);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "throughput" => {
            let failed = throughput::run(seed);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "plots" => {
            let dir = dare_bench::harness::csv_path("x");
            let dir = dir.parent().expect("csv dir").to_path_buf();
            let n = dare_bench::plot::write_all(&dir);
            println!("[plots] wrote {n} gnuplot scripts to {}", dir.display());
        }
        "all" => {
            for id in [
                "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8", "fig9", "fig10", "fig11", "ablation", "resilience", "durability",
                "plots", "verify",
            ] {
                eprintln!("[experiments] running {id} (seed {seed})");
                run_one(id, seed);
            }
        }
        other => usage(&format!("unknown experiment id: {other}")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments [ids...] [--seed N]\n\
         ids: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig7ci fig8 fig9 fig10 fig11 ablation resilience durability plots trace-smoke telemetry-smoke throughput verify all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

//! Scaled-down probe of the 10k-node headline scenario with the engine
//! self-profiler enabled: attributes wall time to subsystem arms so
//! headline-scale slowdowns can be localized without a full 1M-task run.
//!
//! ```text
//! cargo run --release -p dare-bench --example headline_probe -- <jobs> <blocks_per_file>
//! ```

use dare_core::PolicyKind;
use dare_mapred::{SchedulerKind, SimConfig};
use dare_net::ClusterProfile;
use dare_simcore::{SimDuration, SimTime};
use dare_workload::{FileSpec, JobSpec, Workload};

const MB: u64 = 1024 * 1024;
const BLOCK: u64 = 128 * MB;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);
    let blocks: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let map_secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(15);
    let files = 100usize;
    let window = 600u64;

    let file_specs: Vec<FileSpec> = (0..files)
        .map(|i| FileSpec {
            name: format!("s{i}"),
            size_bytes: blocks * BLOCK,
        })
        .collect();
    let job_specs: Vec<JobSpec> = (0..jobs)
        .map(|id| JobSpec {
            id,
            arrival: SimTime::from_secs(window * id as u64 / jobs.max(1) as u64),
            file: id as usize % files,
            map_compute: SimDuration::from_secs(map_secs),
            reduces: 1,
            output_bytes: 10 * MB,
        })
        .collect();
    let wl = Workload {
        name: "probe".into(),
        files: file_specs,
        jobs: job_specs,
    };

    let mut cfg = SimConfig::cct(
        PolicyKind::Vanilla,
        SchedulerKind::fair_default(),
        20110926,
    )
    .with_batched_heartbeats();
    cfg.profile = ClusterProfile::scale(10_000);
    cfg.self_profile = true;

    let tasks = blocks * jobs as u64;
    println!("[probe] 10000 nodes, {jobs} jobs x {blocks} maps = {tasks} map tasks");
    let t0 = std::time::Instant::now();
    let engine = dare_mapred::Engine::new(cfg, &wl);
    let setup = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let r = engine.run();
    let wall = t1.elapsed().as_secs_f64();
    println!(
        "[probe] setup {setup:.2}s, run {wall:.2}s, {} logical events = {:.0} ev/s, makespan {:.0}s, {} jobs done",
        r.logical_events,
        r.logical_events as f64 / wall,
        r.run.makespan_secs,
        r.run.jobs
    );
    if let Some(p) = &r.profile {
        println!("[probe] {}", p.summary());
    }
}

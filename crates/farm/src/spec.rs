//! Sweep specification: axes, validation, matrix expansion, and the
//! hash-of-coordinates seed-derivation rule.

use dare_simcore::rng::DetRng;

/// One factor of the factorial design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Factor name, e.g. `"scheduler"`.
    pub name: String,
    /// The levels swept, in declared (column) order.
    pub levels: Vec<String>,
    /// Whether this axis's coordinate enters the per-cell seed hash.
    ///
    /// `false` (treatment axis): all levels share a seed per replicate —
    /// common random numbers, for paired comparisons across systems.
    /// `true` (seeded axis): each level draws an independent random
    /// environment.
    pub seeded: bool,
}

/// A declarative factorial sweep: axes × `seeds` replicates, rooted at
/// `base_seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep name (used in progress output and the JSON report).
    pub name: String,
    /// Factors, in declared order. The declared order fixes CSV column
    /// order but never affects seeds.
    pub axes: Vec<Axis>,
    /// Replicates per coordinate (≥ 1).
    pub seeds: u32,
    /// Root seed every cell seed is derived from.
    pub base_seed: u64,
}

/// One run of the expanded matrix: a coordinate plus a replicate index,
/// carrying its derived seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Enumeration index in declared-order expansion (replicates
    /// innermost). Diagnostic only — never used for seeding.
    pub index: usize,
    /// `(axis name, level)` pairs in declared axis order.
    pub coords: Vec<(String, String)>,
    /// Replicate number, `0..seeds`.
    pub replicate: u32,
    /// Seed for this run, from [`cell_seed`].
    pub seed: u64,
}

impl Cell {
    /// The level this cell takes on `axis`, if the axis exists.
    pub fn coord(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, l)| l.as_str())
    }

    /// Canonical coordinate key: `axis=level` pairs over *all* axes,
    /// sorted by axis name and joined with `;`. Identifies the
    /// coordinate independent of axis declaration order; aggregate rows
    /// group and sort by this key.
    pub fn key(&self) -> String {
        coord_key(&self.coords)
    }
}

/// Canonical key over a coordinate list: sorted by axis name,
/// `axis=level` joined with `;`.
fn coord_key(coords: &[(String, String)]) -> String {
    let mut pairs: Vec<String> = coords.iter().map(|(a, l)| format!("{a}={l}")).collect();
    pairs.sort();
    pairs.join(";")
}

/// Derive the seed for one cell of a sweep.
///
/// `seeded_key` is the canonical key (see [`Cell::key`]) restricted to
/// the *seeded* axes' coordinates — treatment axes are excluded so all
/// their levels share draws. The rule:
///
/// - empty `seeded_key` and `replicate == 0` → `base_seed` unchanged,
///   so a 1-seed sweep with no seeded axes reproduces the repo's
///   historical single-seed runs bit-for-bit;
/// - otherwise, a `DetRng` substream labelled `farm:<seeded_key>` at
///   index `replicate`, which hashes the coordinate *text*. Enumeration
///   order never enters, so reordering the matrix cannot move seeds.
pub fn cell_seed(base_seed: u64, seeded_key: &str, replicate: u32) -> u64 {
    if seeded_key.is_empty() && replicate == 0 {
        return base_seed;
    }
    DetRng::new(base_seed)
        .substream_idx(&format!("farm:{seeded_key}"), replicate as u64)
        .seed()
}

impl SweepSpec {
    /// New empty spec with one replicate.
    pub fn new(name: &str, base_seed: u64) -> Self {
        SweepSpec {
            name: name.to_string(),
            axes: Vec::new(),
            seeds: 1,
            base_seed,
        }
    }

    /// Add a treatment axis (levels share seeds per replicate).
    pub fn axis(mut self, name: &str, levels: &[&str]) -> Self {
        self.axes.push(Axis {
            name: name.to_string(),
            levels: levels.iter().map(|s| s.to_string()).collect(),
            seeded: false,
        });
        self
    }

    /// Add a seeded axis (each level draws an independent environment).
    pub fn seeded_axis(mut self, name: &str, levels: &[&str]) -> Self {
        self.axes.push(Axis {
            name: name.to_string(),
            levels: levels.iter().map(|s| s.to_string()).collect(),
            seeded: true,
        });
        self
    }

    /// Set the replicate count.
    pub fn seeds(mut self, n: u32) -> Self {
        self.seeds = n;
        self
    }

    /// Check the spec is well-formed: a name, `seeds ≥ 1`, no duplicate
    /// axis names, every axis non-empty with unique levels, and no
    /// `=`/`;`/`,`/newline in names or levels (they would corrupt keys
    /// and CSV).
    pub fn validate(&self) -> Result<(), String> {
        fn clean(kind: &str, s: &str) -> Result<(), String> {
            if s.is_empty() {
                return Err(format!("{kind} must not be empty"));
            }
            for bad in ['=', ';', ',', '\n'] {
                if s.contains(bad) {
                    return Err(format!("{kind} {s:?} contains reserved character {bad:?}"));
                }
            }
            Ok(())
        }
        clean("sweep name", &self.name)?;
        if self.seeds == 0 {
            return Err("seeds must be >= 1".into());
        }
        let mut names: Vec<&str> = Vec::new();
        for ax in &self.axes {
            clean("axis name", &ax.name)?;
            if names.contains(&ax.name.as_str()) {
                return Err(format!("duplicate axis name {:?}", ax.name));
            }
            names.push(&ax.name);
            if ax.levels.is_empty() {
                return Err(format!("axis {:?} has no levels", ax.name));
            }
            let mut seen: Vec<&str> = Vec::new();
            for l in &ax.levels {
                clean("level", l)?;
                if seen.contains(&l.as_str()) {
                    return Err(format!("axis {:?} repeats level {l:?}", ax.name));
                }
                seen.push(l);
            }
        }
        Ok(())
    }

    /// Number of runs the matrix expands to (`∏ levels × seeds`).
    pub fn cell_count(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.levels.len())
            .product::<usize>()
            .saturating_mul(self.seeds as usize)
    }

    /// Expand to the full run matrix: declared-order nested product with
    /// replicates innermost. Panics on an invalid spec — call
    /// [`SweepSpec::validate`] first for a recoverable error.
    pub fn expand(&self) -> Vec<Cell> {
        if let Err(e) = self.validate() {
            panic!("invalid SweepSpec {:?}: {e}", self.name);
        }
        let mut cells = Vec::with_capacity(self.cell_count());
        let mut coords: Vec<(String, String)> = Vec::with_capacity(self.axes.len());
        self.expand_axis(0, &mut coords, &mut cells);
        cells
    }

    fn expand_axis(
        &self,
        depth: usize,
        coords: &mut Vec<(String, String)>,
        out: &mut Vec<Cell>,
    ) {
        if depth == self.axes.len() {
            let seeded: Vec<(String, String)> = self
                .axes
                .iter()
                .zip(coords.iter())
                .filter(|(ax, _)| ax.seeded)
                .map(|(_, c)| c.clone())
                .collect();
            let seeded_key = coord_key(&seeded);
            for rep in 0..self.seeds {
                out.push(Cell {
                    index: out.len(),
                    coords: coords.clone(),
                    replicate: rep,
                    seed: cell_seed(self.base_seed, &seeded_key, rep),
                });
            }
            return;
        }
        let ax = &self.axes[depth];
        for level in &ax.levels {
            coords.push((ax.name.clone(), level.clone()));
            self.expand_axis(depth + 1, coords, out);
            coords.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SweepSpec {
        SweepSpec::new("demo", 42)
            .axis("scheduler", &["fifo", "fair"])
            .axis("policy", &["vanilla", "dare"])
            .seeded_axis("faults", &["none", "heavy"])
            .seeds(3)
    }

    #[test]
    fn expansion_counts_and_order() {
        let cells = demo().expand();
        assert_eq!(cells.len(), 2 * 2 * 2 * 3);
        assert_eq!(cells.len(), demo().cell_count());
        // Declared order, replicates innermost.
        assert_eq!(cells[0].coords[0], ("scheduler".into(), "fifo".into()));
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(cells[3].coords[2], ("faults".into(), "heavy".into()));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn treatment_axes_share_seeds_within_replicate() {
        // Common random numbers: same faults level + replicate ⇒ same
        // seed across all scheduler × policy combinations.
        let cells = demo().expand();
        for a in &cells {
            for b in &cells {
                if a.coord("faults") == b.coord("faults") && a.replicate == b.replicate {
                    assert_eq!(a.seed, b.seed, "{:?} vs {:?}", a.coords, b.coords);
                }
            }
        }
        // ...and seeded levels / replicates draw distinct seeds.
        let s = |f: &str, r: u32| {
            cells
                .iter()
                .find(|c| c.coord("faults") == Some(f) && c.replicate == r)
                .unwrap()
                .seed
        };
        assert_ne!(s("none", 0), s("heavy", 0));
        assert_ne!(s("none", 0), s("none", 1));
    }

    #[test]
    fn seeds_stable_under_matrix_reordering() {
        // Hash-of-coordinates: permuting axis declaration order and
        // level order must not move any cell's seed.
        let reordered = SweepSpec::new("demo", 42)
            .seeded_axis("faults", &["heavy", "none"])
            .axis("policy", &["dare", "vanilla"])
            .axis("scheduler", &["fair", "fifo"])
            .seeds(3)
            .expand();
        for c in demo().expand() {
            let twin = reordered
                .iter()
                .find(|r| r.key() == c.key() && r.replicate == c.replicate)
                .expect("same coordinate exists after reordering");
            assert_eq!(twin.seed, c.seed, "seed moved for {}", c.key());
            assert_ne!(twin.index, c.index, "reordering does permute enumeration");
        }
    }

    #[test]
    fn seeds_stable_when_axes_are_added() {
        // Growing the design must not reseed existing cells: a cell's
        // seed depends only on its seeded coordinates.
        let small = SweepSpec::new("demo", 42)
            .seeded_axis("faults", &["none", "heavy"])
            .seeds(2)
            .expand();
        let grown = demo().expand();
        for c in &small {
            let twin = grown
                .iter()
                .find(|g| g.coord("faults") == c.coord("faults") && g.replicate == c.replicate)
                .unwrap();
            assert_eq!(twin.seed, c.seed);
        }
    }

    #[test]
    fn legacy_single_seed_anchor() {
        // No seeded axes, replicate 0 ⇒ the base seed itself, so the
        // historical single-seed figures are the farm's first replicate.
        let cells = SweepSpec::new("legacy", 20110926)
            .axis("policy", &["vanilla", "dare"])
            .expand();
        assert!(cells.iter().all(|c| c.seed == 20110926));
        let cells = SweepSpec::new("legacy", 20110926)
            .axis("policy", &["vanilla", "dare"])
            .seeds(2)
            .expand();
        assert_eq!(cells[0].seed, 20110926);
        assert_ne!(cells[1].seed, 20110926);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        assert!(SweepSpec::new("", 1).validate().is_err());
        assert!(SweepSpec::new("x", 1).seeds(0).validate().is_err());
        assert!(SweepSpec::new("x", 1)
            .axis("a", &["1"])
            .axis("a", &["2"])
            .validate()
            .is_err());
        assert!(SweepSpec::new("x", 1).axis("a", &[]).validate().is_err());
        assert!(SweepSpec::new("x", 1)
            .axis("a", &["1", "1"])
            .validate()
            .is_err());
        assert!(SweepSpec::new("x", 1)
            .axis("a=b", &["1"])
            .validate()
            .is_err());
        assert!(SweepSpec::new("x", 1)
            .axis("a", &["v;w"])
            .validate()
            .is_err());
        assert!(demo().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid SweepSpec")]
    fn expand_panics_on_invalid() {
        let _ = SweepSpec::new("x", 1).axis("a", &[]).expand();
    }

    #[test]
    fn key_is_sorted_and_complete() {
        let cells = demo().expand();
        assert_eq!(
            cells[0].key(),
            "faults=none;policy=vanilla;scheduler=fifo"
        );
    }
}

//! Factorial experiment farm: declarative sweeps, deterministic per-cell
//! seeds, and byte-stable merged outputs with CI-backed statistics.
//!
//! The paper's evaluation is a factorial design — schedulers ×
//! replication policies × cluster profiles × fault levels, replicated
//! over seeds. This crate turns that design into data:
//!
//! 1. [`SweepSpec`] declares the axes and replicate count.
//! 2. [`SweepSpec::expand`] produces the full run matrix, one [`Cell`]
//!    per coordinate × replicate, each with a seed derived from a hash
//!    of its *coordinates* (never its enumeration index), so adding,
//!    removing, or reordering axes leaves every surviving cell's seed —
//!    and therefore its simulation — untouched.
//! 3. [`run_sweep`] fans the cells across worker threads (the
//!    order-preserving `simcore::parallel` map) with decile progress
//!    reporting.
//! 4. [`merge`] folds the runs into per-cell CSV, per-coordinate
//!    aggregate CSV with mean / sample stddev / 95 % CI columns, and a
//!    machine-readable JSON report — all byte-stable regardless of
//!    thread count or completion order.
//!
//! Axes come in two kinds. *Treatment* axes (the default) compare
//! systems: every level of a treatment axis shares the same seed for a
//! given replicate, the common-random-numbers discipline that makes
//! paired comparisons (e.g. normalizing DARE against vanilla on the
//! same workload draw) statistically honest. *Seeded* axes describe the
//! environment (cluster profile, fault level): their coordinates enter
//! the seed hash, so different environments see independent draws.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod run;
pub mod spec;

pub use merge::{aggregate, aggregate_csv, merged_json, per_cell_csv, AggRow};
pub use run::{run_sweep, CellRun, RunOptions, Sweep};
pub use spec::{cell_seed, Axis, Cell, SweepSpec};

//! Sweep execution: fan cells across worker threads with progress
//! reporting, preserving matrix order.

use crate::spec::{Cell, SweepSpec};
use dare_simcore::parallel::parallel_map_threads;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How to run a sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads (clamped to the cell count; `0`/`1` run inline).
    pub threads: usize,
    /// Print decile progress lines to stderr.
    pub progress: bool,
}

impl RunOptions {
    /// All available cores, progress on — the interactive default.
    pub fn all_cores() -> Self {
        RunOptions {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            progress: true,
        }
    }

    /// Exactly `threads` workers, progress off — for determinism tests.
    pub fn quiet(threads: usize) -> Self {
        RunOptions {
            threads,
            progress: false,
        }
    }
}

/// One executed cell: the coordinate plus its metric values, aligned
/// with [`Sweep::metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// The matrix cell that was run.
    pub cell: Cell,
    /// Metric values, one per metric name.
    pub values: Vec<f64>,
}

/// A completed sweep: the spec, the metric names, and every cell's
/// result in matrix-expansion order (independent of thread count).
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The spec that was run.
    pub spec: SweepSpec,
    /// Metric column names, fixed across all cells.
    pub metrics: Vec<String>,
    /// Per-cell results, in [`SweepSpec::expand`] order.
    pub runs: Vec<CellRun>,
}

/// Expand `spec` and run `f` on every cell, fanning across
/// `opts.threads` workers. `f` must return one value per name in
/// `metrics` (checked per cell) and must be a pure function of the cell
/// — coordinates and seed — for the merged outputs to be byte-stable
/// across thread counts.
pub fn run_sweep<F>(spec: &SweepSpec, metrics: &[&str], opts: RunOptions, f: F) -> Sweep
where
    F: Fn(&Cell) -> Vec<f64> + Sync,
{
    let cells = spec.expand();
    let total = cells.len();
    let done = AtomicUsize::new(0);
    let runs = parallel_map_threads(cells, opts.threads, |cell| {
        let values = f(&cell);
        assert_eq!(
            values.len(),
            metrics.len(),
            "cell {} returned {} values for {} metrics",
            cell.key(),
            values.len(),
            metrics.len()
        );
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        // Report when the completion count crosses a decile boundary.
        if opts.progress && total > 0 && n * 10 / total != (n - 1) * 10 / total {
            eprintln!(
                "[farm {}] {n}/{total} cells ({}%)",
                spec.name,
                n * 100 / total
            );
        }
        CellRun { cell, values }
    });
    Sweep {
        spec: spec.clone(),
        metrics: metrics.iter().map(|s| s.to_string()).collect(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new("run-test", 7)
            .axis("policy", &["a", "b", "c"])
            .seeded_axis("load", &["low", "high"])
            .seeds(4)
    }

    #[test]
    fn results_follow_matrix_order_at_any_thread_count() {
        let f = |c: &Cell| vec![c.seed as f64, c.replicate as f64];
        let one = run_sweep(&spec(), &["seed", "rep"], RunOptions::quiet(1), f);
        let eight = run_sweep(&spec(), &["seed", "rep"], RunOptions::quiet(8), f);
        assert_eq!(one, eight);
        assert_eq!(one.runs.len(), 3 * 2 * 4);
        for (i, r) in one.runs.iter().enumerate() {
            assert_eq!(r.cell.index, i);
            assert_eq!(r.values[0], r.cell.seed as f64);
        }
    }

    #[test]
    #[should_panic(expected = "3 values for 2 metrics")]
    fn metric_arity_is_checked() {
        let _ = run_sweep(&spec(), &["a", "b"], RunOptions::quiet(1), |_| {
            vec![0.0, 0.0, 0.0]
        });
    }
}

//! Byte-stable merges: per-cell CSV, per-coordinate aggregate CSV with
//! mean / stddev / 95 % CI columns, and a JSON report.
//!
//! Every function here is a pure fold over a [`Sweep`]; rows are keyed
//! and sorted by the canonical coordinate key, so output bytes depend
//! only on the spec and the cell results — never on thread count,
//! completion order, or wall-clock.

use crate::run::Sweep;
use crate::spec::Cell;
use dare_simcore::stats::{summarize, Summary};
use std::collections::BTreeMap;

/// Fixed-precision float formatting shared by all merged outputs.
fn fmt(v: f64) -> String {
    format!("{v:.6}")
}

/// One aggregate row: a coordinate, its replicate count, and one
/// [`Summary`] per metric.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// `(axis, level)` pairs in the spec's declared axis order.
    pub coords: Vec<(String, String)>,
    /// Replicates folded into this row.
    pub n: u64,
    /// Per-metric statistics, aligned with [`Sweep::metrics`].
    pub stats: Vec<Summary>,
}

/// Group a sweep's runs by coordinate (across replicates) and summarize
/// each metric. Rows come back sorted by canonical coordinate key.
pub fn aggregate(sweep: &Sweep) -> Vec<AggRow> {
    let mut groups: BTreeMap<String, (&Cell, Vec<Vec<f64>>)> = BTreeMap::new();
    for r in &sweep.runs {
        let entry = groups
            .entry(r.cell.key())
            .or_insert_with(|| (&r.cell, vec![Vec::new(); sweep.metrics.len()]));
        for (m, &v) in entry.1.iter_mut().zip(r.values.iter()) {
            m.push(v);
        }
    }
    groups
        .into_values()
        .map(|(cell, per_metric)| AggRow {
            coords: cell.coords.clone(),
            n: per_metric.first().map(|m| m.len() as u64).unwrap_or(0),
            stats: per_metric.iter().map(|m| summarize(m)).collect(),
        })
        .collect()
}

/// Per-cell CSV: one row per run, sorted by `(coordinate key,
/// replicate)`. Columns: the axes in declared order, `replicate`,
/// `seed`, then the metrics.
pub fn per_cell_csv(sweep: &Sweep) -> String {
    let mut out = String::new();
    for ax in &sweep.spec.axes {
        out.push_str(&ax.name);
        out.push(',');
    }
    out.push_str("replicate,seed");
    for m in &sweep.metrics {
        out.push(',');
        out.push_str(m);
    }
    out.push('\n');

    let mut rows: Vec<&crate::run::CellRun> = sweep.runs.iter().collect();
    rows.sort_by_key(|r| (r.cell.key(), r.cell.replicate));
    for r in rows {
        for (_, level) in &r.cell.coords {
            out.push_str(level);
            out.push(',');
        }
        out.push_str(&format!("{},{}", r.cell.replicate, r.cell.seed));
        for v in &r.values {
            out.push(',');
            out.push_str(&fmt(*v));
        }
        out.push('\n');
    }
    out
}

/// Aggregate CSV: one row per coordinate, sorted by coordinate key.
/// Columns: the axes in declared order, `n`, then per metric
/// `<m>_mean,<m>_std,<m>_ci95`. With a single replicate the spread
/// columns are empty strings — never `NaN`.
pub fn aggregate_csv(sweep: &Sweep) -> String {
    let mut out = String::new();
    for ax in &sweep.spec.axes {
        out.push_str(&ax.name);
        out.push(',');
    }
    out.push('n');
    for m in &sweep.metrics {
        out.push_str(&format!(",{m}_mean,{m}_std,{m}_ci95"));
    }
    out.push('\n');

    for row in aggregate(sweep) {
        for (_, level) in &row.coords {
            out.push_str(level);
            out.push(',');
        }
        out.push_str(&row.n.to_string());
        for s in &row.stats {
            out.push(',');
            out.push_str(&fmt(s.mean));
            if s.has_spread() {
                out.push_str(&format!(",{},{}", fmt(s.std), fmt(s.ci95)));
            } else {
                out.push_str(",,");
            }
        }
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Machine-readable merge: the spec, the metric names, and the
/// aggregate rows as JSON. Spread fields are `null` with a single
/// replicate. Contains no timing, so two runs of the same spec produce
/// identical bytes at any thread count.
pub fn merged_json(sweep: &Sweep) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"sweep\": \"{}\",\n  \"base_seed\": {},\n  \"seeds\": {},\n  \"cells\": {},\n",
        json_escape(&sweep.spec.name),
        sweep.spec.base_seed,
        sweep.spec.seeds,
        sweep.runs.len()
    ));
    out.push_str("  \"axes\": [");
    for (i, ax) in sweep.spec.axes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let levels: Vec<String> = ax
            .levels
            .iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect();
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"seeded\": {}, \"levels\": [{}]}}",
            json_escape(&ax.name),
            ax.seeded,
            levels.join(", ")
        ));
    }
    out.push_str("],\n  \"metrics\": [");
    for (i, m) in sweep.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", json_escape(m)));
    }
    out.push_str("],\n  \"aggregate\": [\n");
    let rows = aggregate(sweep);
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\"coords\": {");
        let mut coords = row.coords.clone();
        coords.sort();
        for (j, (a, l)) in coords.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json_escape(a), json_escape(l)));
        }
        out.push_str(&format!("}}, \"n\": {}", row.n));
        for (m, s) in sweep.metrics.iter().zip(row.stats.iter()) {
            let (std, ci) = if s.has_spread() {
                (fmt(s.std), fmt(s.ci95))
            } else {
                ("null".to_string(), "null".to_string())
            };
            out.push_str(&format!(
                ", \"{}\": {{\"mean\": {}, \"std\": {std}, \"ci95\": {ci}}}",
                json_escape(m),
                fmt(s.mean)
            ));
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_sweep, RunOptions};
    use crate::spec::SweepSpec;

    fn sweep(seeds: u32) -> Sweep {
        let spec = SweepSpec::new("merge-test", 99)
            .axis("policy", &["vanilla", "dare"])
            .seeded_axis("load", &["low", "high"])
            .seeds(seeds);
        run_sweep(&spec, &["gmtt", "locality"], RunOptions::quiet(1), |c| {
            // Deterministic pseudo-metrics from the cell identity.
            let base = (c.seed % 1000) as f64;
            let bump = if c.coord("policy") == Some("dare") {
                0.5
            } else {
                0.0
            };
            vec![base + bump, base / 2.0]
        })
    }

    #[test]
    fn aggregate_rows_equal_mean_of_their_cell_rows() {
        // Regression: each aggregate row must be exactly the arithmetic
        // mean of the cell rows that share its coordinate.
        let sw = sweep(5);
        for row in aggregate(&sw) {
            let key = {
                let mut p: Vec<String> =
                    row.coords.iter().map(|(a, l)| format!("{a}={l}")).collect();
                p.sort();
                p.join(";")
            };
            let members: Vec<&crate::run::CellRun> =
                sw.runs.iter().filter(|r| r.cell.key() == key).collect();
            assert_eq!(members.len() as u64, row.n);
            for (mi, s) in row.stats.iter().enumerate() {
                let mean: f64 = members.iter().map(|r| r.values[mi]).sum::<f64>()
                    / members.len() as f64;
                assert!((s.mean - mean).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_replicate_emits_empty_spread_fields() {
        let csv = aggregate_csv(&sweep(1));
        let data = csv.lines().nth(1).unwrap();
        // ...,n,gmtt_mean,gmtt_std,gmtt_ci95,locality_mean,...
        let cells: Vec<&str> = data.split(',').collect();
        assert_eq!(cells[2], "1", "n column");
        assert_eq!(cells[4], "", "std empty at n=1");
        assert_eq!(cells[5], "", "ci95 empty at n=1");
        assert!(!csv.contains("NaN"));
        let json = merged_json(&sweep(1));
        assert!(json.contains("\"std\": null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn csv_shapes_and_sorting() {
        let sw = sweep(2);
        let cell_csv = per_cell_csv(&sw);
        let mut lines = cell_csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "policy,load,replicate,seed,gmtt,locality"
        );
        assert_eq!(cell_csv.lines().count(), 1 + 2 * 2 * 2);
        // Sorted by coordinate key then replicate: keys are
        // "load=<l>;policy=<p>", so load=high rows come first.
        let first = cell_csv.lines().nth(1).unwrap();
        assert!(first.starts_with("dare,high,0,"));
        let agg = aggregate_csv(&sw);
        assert_eq!(
            agg.lines().next().unwrap(),
            "policy,load,n,gmtt_mean,gmtt_std,gmtt_ci95,locality_mean,locality_std,locality_ci95"
        );
        assert_eq!(agg.lines().count(), 1 + 4);
    }

    #[test]
    fn merged_outputs_byte_identical_across_thread_counts() {
        let spec = SweepSpec::new("bytes", 3)
            .axis("a", &["x", "y", "z"])
            .seeded_axis("b", &["p", "q"])
            .seeds(4);
        let f = |c: &Cell| vec![(c.seed as f64).sin(), c.replicate as f64];
        let one = run_sweep(&spec, &["m1", "m2"], RunOptions::quiet(1), f);
        let eight = run_sweep(&spec, &["m1", "m2"], RunOptions::quiet(8), f);
        assert_eq!(per_cell_csv(&one), per_cell_csv(&eight));
        assert_eq!(aggregate_csv(&one), aggregate_csv(&eight));
        assert_eq!(merged_json(&one), merged_json(&eight));
    }
}

//! The per-node replication-policy interface and shared bookkeeping.
//!
//! A policy instance lives on one data node. The MapReduce engine calls
//! [`ReplicationPolicy::on_map_task`] for **every** map task scheduled on
//! that node — local or not — because both algorithms react to both kinds:
//! non-local tasks are replication opportunities, local hits refresh
//! recency/frequency state.

use dare_dfs::{BlockId, FileId};
use dare_simcore::DetRng;

/// What the node should do about the block a just-scheduled map task reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationDecision {
    /// Leave the file system untouched.
    Skip,
    /// Insert a dynamic replica of the task's block on this node, after
    /// evicting the listed victim blocks (possibly empty).
    Replicate {
        /// Dynamic replicas to evict first (budget space).
        evict: Vec<BlockId>,
    },
}

/// Everything a policy may inspect about one scheduled map task.
pub struct PolicyCtx<'a> {
    /// The block the map task reads.
    pub block: BlockId,
    /// Owning file (the INode back-pointer — same-file victim exclusion).
    pub file: FileId,
    /// Size of the block in bytes.
    pub block_bytes: u64,
    /// True when a replica of the block is already on this node
    /// (the task is data-local).
    pub is_local: bool,
    /// The node's deterministic RNG substream (the Algorithm 2 coin).
    pub rng: &'a mut DetRng,
}

/// Counters every policy maintains; the thrashing and sensitivity analyses
/// (Figs. 8-9 and the disk-write ablation) read these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Dynamic replicas created on this node.
    pub replicas_created: u64,
    /// Victims evicted to make room.
    pub evictions: u64,
    /// Non-local tasks ignored because the sampling coin said no.
    pub skipped_by_sampling: u64,
    /// Replications abandoned because no eviction victim qualified.
    pub skipped_no_victim: u64,
    /// Local accesses that refreshed recency/frequency state.
    pub refreshes: u64,
    /// Total bytes of replicas created.
    pub bytes_replicated: u64,
}

/// A per-node adaptive replication algorithm.
pub trait ReplicationPolicy {
    /// React to a map task scheduled on this node. The engine applies the
    /// returned decision to the file system (evictions first, then insert)
    /// and only then considers the replica created.
    fn on_map_task(&mut self, ctx: PolicyCtx<'_>) -> ReplicationDecision;

    /// Forget a block (its dynamic replica was dropped externally, e.g. by
    /// node failure handling). Default: no-op.
    fn forget(&mut self, _block: BlockId) {}

    /// Counters so far.
    fn stats(&self) -> PolicyStats;

    /// Short policy name for reports ("vanilla", "lru", "elephant-trap").
    fn name(&self) -> &'static str;
}

/// The no-op baseline: vanilla Hadoop, no dynamic replication.
#[derive(Debug, Default)]
pub struct VanillaPolicy {
    stats: PolicyStats,
}

impl VanillaPolicy {
    /// Construct the baseline policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplicationPolicy for VanillaPolicy {
    fn on_map_task(&mut self, _ctx: PolicyCtx<'_>) -> ReplicationDecision {
        ReplicationDecision::Skip
    }
    fn stats(&self) -> PolicyStats {
        self.stats
    }
    fn name(&self) -> &'static str {
        "vanilla"
    }
}

/// Which replication scheme to run, with its parameters — the configuration
/// surface the paper's Section V sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Vanilla Hadoop (no dynamic replication).
    Vanilla,
    /// Algorithm 1: greedy replication with LRU eviction.
    GreedyLru,
    /// Algorithm 2: probabilistic replication with ElephantTrap eviction.
    ElephantTrap {
        /// Sampling probability `p` (paper default 0.3).
        p: f64,
        /// Aging threshold (paper default 1).
        threshold: u64,
    },
    /// Least-frequently-used eviction ablation (greedy admission).
    Lfu,
}

impl PolicyKind {
    /// The paper's headline configuration of Algorithm 2
    /// (`p = 0.3`, `threshold = 1`; Figs. 7 and 10).
    pub fn elephant_default() -> Self {
        PolicyKind::ElephantTrap {
            p: 0.3,
            threshold: 1,
        }
    }

    /// Short label used by result tables.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Vanilla => "vanilla".into(),
            PolicyKind::GreedyLru => "lru".into(),
            PolicyKind::ElephantTrap { p, threshold } => {
                format!("elephant-trap(p={p},thr={threshold})")
            }
            PolicyKind::Lfu => "lfu".into(),
        }
    }
}

/// Instantiate one node's policy with a dynamic-replica budget of
/// `budget_bytes`.
pub fn build_policy(kind: PolicyKind, budget_bytes: u64) -> Box<dyn ReplicationPolicy> {
    match kind {
        PolicyKind::Vanilla => Box::new(VanillaPolicy::new()),
        PolicyKind::GreedyLru => Box::new(crate::greedy_lru::GreedyLru::new(budget_bytes)),
        PolicyKind::ElephantTrap { p, threshold } => Box::new(
            crate::elephant::ElephantTrapPolicy::new(p, threshold, budget_bytes),
        ),
        PolicyKind::Lfu => Box::new(crate::lfu::LfuPolicy::new(budget_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_never_replicates() {
        let mut p = VanillaPolicy::new();
        let mut rng = DetRng::new(1);
        for i in 0..100 {
            let d = p.on_map_task(PolicyCtx {
                block: BlockId(i),
                file: FileId(0),
                block_bytes: 128,
                is_local: i % 2 == 0,
                rng: &mut rng,
            });
            assert_eq!(d, ReplicationDecision::Skip);
        }
        assert_eq!(p.stats(), PolicyStats::default());
        assert_eq!(p.name(), "vanilla");
    }

    #[test]
    fn kind_labels() {
        assert_eq!(PolicyKind::Vanilla.label(), "vanilla");
        assert_eq!(PolicyKind::GreedyLru.label(), "lru");
        assert_eq!(
            PolicyKind::elephant_default().label(),
            "elephant-trap(p=0.3,thr=1)"
        );
        assert_eq!(PolicyKind::Lfu.label(), "lfu");
    }

    #[test]
    fn factory_builds_each_kind() {
        for (kind, name) in [
            (PolicyKind::Vanilla, "vanilla"),
            (PolicyKind::GreedyLru, "lru"),
            (PolicyKind::elephant_default(), "elephant-trap"),
            (PolicyKind::Lfu, "lfu"),
        ] {
            let p = build_policy(kind, 1 << 30);
            assert_eq!(p.name(), name);
        }
    }
}

//! Heavy-hitter detection quality of the [`CircularTrap`].
//!
//! The design rests on the ElephantTrap identifying "the most popular set
//! of data" from sampled accesses (Section I). This module quantifies
//! that: replay an access stream into a trap under the same sampling
//! discipline Algorithm 2 uses, compare against exact counts, and report
//! precision/recall of the true top-k — the measurement behind choosing
//! `p` and the trap size.

use crate::trap::CircularTrap;
use dare_simcore::DetRng;
use std::collections::HashMap;

/// Quality of one trap configuration against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrapQuality {
    /// Fraction of the true top-k keys present in the trap at the end.
    pub recall_at_k: f64,
    /// Fraction of trap occupants that belong to the true top-`len` keys
    /// (how much of the budget tracks genuinely hot items).
    pub precision: f64,
    /// Keys tracked at the end.
    pub tracked: usize,
    /// Insertions performed (≈ replication cost in the DARE analogy).
    pub insertions: u64,
}

/// Replay `stream` into a trap of `slots` entries with sampling
/// probability `p` and aging `threshold`; score against the true top-`k`.
pub fn evaluate<K: Eq + std::hash::Hash + Copy + Ord>(
    stream: &[K],
    slots: usize,
    p: f64,
    threshold: u64,
    k: usize,
    rng: &mut DetRng,
) -> TrapQuality {
    assert!(slots > 0 && k > 0);
    let mut trap = CircularTrap::new();
    let mut exact: HashMap<K, u64> = HashMap::new();
    let mut insertions = 0u64;

    for &key in stream {
        *exact.entry(key).or_insert(0) += 1;
        // Algorithm 2's discipline: one coin gates both refresh and insert.
        if !rng.coin(p) {
            continue;
        }
        if trap.touch(&key) {
            continue;
        }
        if trap.len() >= slots {
            match trap.find_victim(threshold, |_| true) {
                Some(v) => {
                    trap.remove(&v);
                }
                None => continue,
            }
        }
        trap.insert(key);
        insertions += 1;
    }

    // Ground truth ranking (ties by key for determinism).
    let mut truth: Vec<(K, u64)> = exact.into_iter().collect();
    truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let k = k.min(truth.len());
    let top: Vec<K> = truth.iter().take(k).map(|&(key, _)| key).collect();
    let top_for_precision: Vec<K> = truth
        .iter()
        .take(trap.len().max(1))
        .map(|&(key, _)| key)
        .collect();

    let caught = top.iter().filter(|key| trap.contains(key)).count();
    let tracked = trap.len();
    let precise = trap
        .heavy_hitters()
        .iter()
        .filter(|(key, _)| top_for_precision.contains(key))
        .count();

    TrapQuality {
        recall_at_k: caught as f64 / k as f64,
        precision: if tracked == 0 {
            0.0
        } else {
            precise as f64 / tracked as f64
        },
        tracked,
        insertions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::dist::Zipf;

    fn zipf_stream(keys: usize, s: f64, len: usize, seed: u64) -> Vec<u64> {
        let z = Zipf::new(keys, s);
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| z.sample(&mut rng) as u64).collect()
    }

    #[test]
    fn catches_most_of_the_top_k_on_skewed_streams() {
        let stream = zipf_stream(2000, 1.2, 200_000, 1);
        let mut rng = DetRng::new(2);
        let q = evaluate(&stream, 64, 0.1, 1, 16, &mut rng);
        assert!(q.recall_at_k >= 0.75, "recall {q:?}");
        assert!(q.precision >= 0.4, "precision {q:?}");
        assert!(q.tracked <= 64);
    }

    #[test]
    fn more_slots_do_not_hurt_recall() {
        let stream = zipf_stream(1000, 1.1, 100_000, 3);
        let mut r1 = DetRng::new(4);
        let mut r2 = DetRng::new(4);
        let small = evaluate(&stream, 16, 0.2, 1, 10, &mut r1);
        let big = evaluate(&stream, 128, 0.2, 1, 10, &mut r2);
        assert!(
            big.recall_at_k >= small.recall_at_k - 0.1,
            "small {small:?} big {big:?}"
        );
    }

    #[test]
    fn lower_p_costs_fewer_insertions() {
        let stream = zipf_stream(1000, 1.1, 100_000, 5);
        let mut r1 = DetRng::new(6);
        let mut r2 = DetRng::new(6);
        let lo = evaluate(&stream, 64, 0.05, 1, 10, &mut r1);
        let hi = evaluate(&stream, 64, 0.9, 1, 10, &mut r2);
        assert!(
            lo.insertions * 3 < hi.insertions,
            "sampling must cut insert churn: lo {lo:?} hi {hi:?}"
        );
        // ...while the hottest keys still get caught.
        assert!(lo.recall_at_k >= 0.6, "lo recall {lo:?}");
    }

    #[test]
    fn uniform_streams_give_no_free_lunch() {
        // With no skew there is nothing to detect; recall of the "top" 10
        // (arbitrary under uniformity) should be near the tracked share.
        let stream = zipf_stream(1000, 0.2, 50_000, 7);
        let mut rng = DetRng::new(8);
        let q = evaluate(&stream, 32, 0.3, 1, 10, &mut rng);
        assert!(q.recall_at_k <= 0.6, "uniform stream: {q:?}");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = DetRng::new(9);
        let q = evaluate(&[1u64, 1, 1], 4, 1.0, 1, 5, &mut rng);
        assert_eq!(q.recall_at_k, 1.0, "single key always caught: {q:?}");
        assert_eq!(q.tracked, 1);
    }
}

//! Algorithm 2 — the probabilistic approach: ElephantTrap-based replication
//! and eviction.
//!
//! A coin with probability `p` gates *everything*: whether a non-local map
//! task triggers replication, and whether a local hit refreshes the access
//! count of an already-replicated block. Sampling ignores most accesses to
//! unpopular data (jobs with few map tasks get poor locality and would
//! otherwise pollute the replica store — Section IV-B), while popular files
//! see enough accesses that some draws land heads.
//!
//! Eviction inherits the ElephantTrap's competitive aging: the victim search
//! walks the circular list halving access counts, so a block survives only
//! as long as its access rate out-earns the halving — exactly the "fast and
//! large flows" criterion of the original heavy-hitter detector.

use crate::policy::{PolicyCtx, PolicyStats, ReplicationDecision, ReplicationPolicy};
use crate::trap::CircularTrap;
use dare_dfs::{BlockId, FileId};
use dare_simcore::FxHashMap;

#[derive(Debug, Clone, Copy)]
struct Tracked {
    file: FileId,
    bytes: u64,
}

/// The probabilistic (ElephantTrap) replication policy of Algorithm 2.
#[derive(Debug)]
pub struct ElephantTrapPolicy {
    /// Sampling probability `p` ∈ [0, 1].
    p: f64,
    /// Aging threshold: a victim must have (halved) count < threshold.
    threshold: u64,
    budget_bytes: u64,
    used_bytes: u64,
    trap: CircularTrap<BlockId>,
    tracked: FxHashMap<BlockId, Tracked>,
    stats: PolicyStats,
}

impl ElephantTrapPolicy {
    /// Policy with sampling probability `p`, aging `threshold`, and a
    /// dynamic-replica budget of `budget_bytes` on this node.
    pub fn new(p: f64, threshold: u64, budget_bytes: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ElephantTrapPolicy {
            p,
            threshold,
            budget_bytes,
            used_bytes: 0,
            trap: CircularTrap::new(),
            tracked: FxHashMap::default(),
            stats: PolicyStats::default(),
        }
    }

    /// Bytes of budget currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of tracked dynamic replicas.
    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }

    /// Access count of a tracked block (tests/diagnostics).
    pub fn access_count(&self, b: BlockId) -> Option<u64> {
        self.trap.count(&b)
    }

    /// `markBlockForDeletion`: one aging sweep of the circular list looking
    /// for a victim outside `evicting_file`. Detaches the victim from the
    /// policy's bookkeeping and returns it; `None` means "couldn't find a
    /// block to evict; will not replicate".
    fn mark_block_for_deletion(&mut self, evicting_file: FileId) -> Option<BlockId> {
        let tracked = &self.tracked;
        let victim = self
            .trap
            .find_victim(self.threshold, |b| tracked[b].file != evicting_file)?;
        self.trap.remove(&victim);
        let rec = self.tracked.remove(&victim).expect("tracked victim");
        self.used_bytes -= rec.bytes;
        self.stats.evictions += 1;
        Some(victim)
    }
}

impl ReplicationPolicy for ElephantTrapPolicy {
    fn on_map_task(&mut self, ctx: PolicyCtx<'_>) -> ReplicationDecision {
        // "Generate a random number r ∈ (0,1); if r < p" — one coin gates
        // both the replication and the access-count refresh.
        if !ctx.rng.coin(self.p) {
            if !ctx.is_local {
                self.stats.skipped_by_sampling += 1;
            }
            return ReplicationDecision::Skip;
        }

        if ctx.is_local {
            // Data-local task: refresh the block's access count if we track
            // it (a primary-replica hit has no entry and needs none).
            if self.trap.touch(&ctx.block) {
                self.stats.refreshes += 1;
            }
            return ReplicationDecision::Skip;
        }

        if self.tracked.contains_key(&ctx.block) {
            // Replica already here (report still in flight); count the hit.
            self.trap.touch(&ctx.block);
            self.stats.refreshes += 1;
            return ReplicationDecision::Skip;
        }

        if ctx.block_bytes > self.budget_bytes {
            self.stats.skipped_no_victim += 1;
            return ReplicationDecision::Skip;
        }

        // Budget check with eviction; a failed victim search aborts the
        // replication ("if return value of call is null ... will not
        // replicate").
        let mut evict = Vec::new();
        while self.used_bytes + ctx.block_bytes > self.budget_bytes {
            match self.mark_block_for_deletion(ctx.file) {
                Some(v) => evict.push(v),
                None => {
                    self.stats.skipped_no_victim += 1;
                    // Evictions already performed stand (their aging was
                    // earned); only the insert is abandoned.
                    return if evict.is_empty() {
                        ReplicationDecision::Skip
                    } else {
                        ReplicationDecision::Replicate { evict }
                    };
                }
            }
        }

        // Insert right before the eviction pointer with a zero count.
        self.trap.insert(ctx.block);
        self.tracked.insert(
            ctx.block,
            Tracked {
                file: ctx.file,
                bytes: ctx.block_bytes,
            },
        );
        self.used_bytes += ctx.block_bytes;
        self.stats.replicas_created += 1;
        self.stats.bytes_replicated += ctx.block_bytes;
        ReplicationDecision::Replicate { evict }
    }

    fn forget(&mut self, block: BlockId) {
        if let Some(rec) = self.tracked.remove(&block) {
            self.used_bytes -= rec.bytes;
            self.trap.remove(&block);
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "elephant-trap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::DetRng;

    const BLK: u64 = 128;

    fn ctx<'a>(rng: &'a mut DetRng, block: u64, file: u32, is_local: bool) -> PolicyCtx<'a> {
        PolicyCtx {
            block: BlockId(block),
            file: FileId(file),
            block_bytes: BLK,
            is_local,
            rng,
        }
    }

    #[test]
    fn p_one_behaves_greedily_on_remote_reads() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, 3 * BLK);
        let mut rng = DetRng::new(1);
        for i in 0..3 {
            let d = p.on_map_task(ctx(&mut rng, i, i as u32, false));
            assert_eq!(d, ReplicationDecision::Replicate { evict: vec![] });
        }
        assert_eq!(p.used_bytes(), 3 * BLK);
    }

    #[test]
    fn p_zero_never_replicates() {
        let mut p = ElephantTrapPolicy::new(0.0, 1, 10 * BLK);
        let mut rng = DetRng::new(1);
        for i in 0..50 {
            assert_eq!(
                p.on_map_task(ctx(&mut rng, i, 0, false)),
                ReplicationDecision::Skip
            );
        }
        assert_eq!(p.stats().skipped_by_sampling, 50);
        assert_eq!(p.stats().replicas_created, 0);
    }

    #[test]
    fn sampling_rate_tracks_p() {
        let mut p = ElephantTrapPolicy::new(0.3, 1, u64::MAX);
        let mut rng = DetRng::new(42);
        let n = 10_000;
        for i in 0..n {
            p.on_map_task(ctx(&mut rng, i, i as u32, false));
        }
        let frac = p.stats().replicas_created as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "replicated fraction {frac}");
    }

    #[test]
    fn local_hits_increment_count_probabilistically() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, 10 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 5, 0, false));
        assert_eq!(p.access_count(BlockId(5)), Some(0));
        for _ in 0..4 {
            p.on_map_task(ctx(&mut rng, 5, 0, true));
        }
        assert_eq!(p.access_count(BlockId(5)), Some(4), "p=1: every hit lands");
        assert_eq!(p.stats().refreshes, 4);

        // With p=0 no refresh ever lands.
        let mut q = ElephantTrapPolicy::new(0.0, 1, 10 * BLK);
        q.on_map_task(ctx(&mut rng, 5, 0, true));
        assert_eq!(q.stats().refreshes, 0);
    }

    #[test]
    fn eviction_prefers_cold_blocks() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, 2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        // Heat block 1 with local hits; block 2 stays cold.
        for _ in 0..6 {
            p.on_map_task(ctx(&mut rng, 1, 1, true));
        }
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(2)]
            },
            "cold block evicted, hot block survives"
        );
        assert!(p.tracked.contains_key(&BlockId(1)));
    }

    #[test]
    fn hot_everything_blocks_replication() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, 2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        for b in [1u64, 2] {
            for _ in 0..16 {
                p.on_map_task(ctx(&mut rng, b, b as u32, true));
            }
        }
        // Counts 16 & 16; one sweep halves to 8 — still >= threshold.
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(d, ReplicationDecision::Skip);
        assert_eq!(p.stats().skipped_no_victim, 1);
        // Aging is persistent: enough repeated attempts eventually evict.
        let mut evicted = false;
        for i in 0..8 {
            if let ReplicationDecision::Replicate { .. } =
                p.on_map_task(ctx(&mut rng, 100 + i, 50, false))
            {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "competitive aging must eventually yield a victim");
    }

    #[test]
    fn same_file_exclusion_can_abort_replication() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 7, false));
        // Only tracked block belongs to file 7; inserting file 7 again must
        // not evict it.
        let d = p.on_map_task(ctx(&mut rng, 2, 7, false));
        assert_eq!(d, ReplicationDecision::Skip);
        assert!(p.tracked.contains_key(&BlockId(1)));
        // A different file can claim the slot.
        let d = p.on_map_task(ctx(&mut rng, 3, 8, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(1)]
            }
        );
    }

    #[test]
    fn forget_releases_budget_and_trap_slot() {
        let mut p = ElephantTrapPolicy::new(1.0, 1, BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.forget(BlockId(1));
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.tracked_count(), 0);
        assert_eq!(p.access_count(BlockId(1)), None);
        p.forget(BlockId(1)); // idempotent
        let d = p.on_map_task(ctx(&mut rng, 2, 2, false));
        assert_eq!(d, ReplicationDecision::Replicate { evict: vec![] });
    }

    #[test]
    fn budget_never_exceeded_under_random_workload() {
        let mut p = ElephantTrapPolicy::new(0.5, 2, 7 * BLK);
        let mut rng = DetRng::new(2024);
        let mut wl = DetRng::new(7);
        for step in 0..5000u64 {
            let block = wl.index(60) as u64;
            let file = (block / 5) as u32;
            let is_local = wl.coin(0.4);
            p.on_map_task(PolicyCtx {
                block: BlockId(block),
                file: FileId(file),
                block_bytes: BLK,
                is_local,
                rng: &mut rng,
            });
            assert!(p.used_bytes() <= 7 * BLK, "budget violated at {step}");
            assert_eq!(p.tracked_count(), p.trap.len(), "trap/map in sync");
        }
        assert!(p.stats().replicas_created > 0);
        assert!(p.stats().evictions > 0);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        let _ = ElephantTrapPolicy::new(1.5, 1, 100);
    }
}

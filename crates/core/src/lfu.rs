//! Least-frequently-used eviction ablation.
//!
//! Section IV notes the choice between LRU and LFU "should be made after
//! profiling typical workloads". This policy pairs the greedy admission of
//! Algorithm 1 with LFU eviction so the `ablation` experiment can profile
//! exactly that choice. Frequency counts persist for as long as a block is
//! tracked (no aging) — the classic LFU pathology of stale-but-formerly-hot
//! blocks is part of what the ablation exposes.

use crate::policy::{PolicyCtx, PolicyStats, ReplicationDecision, ReplicationPolicy};
use dare_dfs::{BlockId, FileId};
use dare_simcore::FxHashMap;

#[derive(Debug, Clone, Copy)]
struct Tracked {
    file: FileId,
    bytes: u64,
    freq: u64,
    /// Insertion sequence; ties in frequency evict the oldest.
    seq: u64,
}

/// Greedy admission + least-frequently-used eviction.
#[derive(Debug)]
pub struct LfuPolicy {
    budget_bytes: u64,
    used_bytes: u64,
    tracked: FxHashMap<BlockId, Tracked>,
    next_seq: u64,
    stats: PolicyStats,
}

impl LfuPolicy {
    /// Policy with a dynamic-replica budget of `budget_bytes`.
    pub fn new(budget_bytes: u64) -> Self {
        LfuPolicy {
            budget_bytes,
            used_bytes: 0,
            tracked: FxHashMap::default(),
            next_seq: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Bytes of budget currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of tracked dynamic replicas.
    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }

    /// Lowest-frequency victim outside `evicting_file` (ties: oldest).
    fn evict_one(&mut self, evicting_file: FileId) -> Option<BlockId> {
        let victim = self
            .tracked
            .iter()
            .filter(|(_, t)| t.file != evicting_file)
            .min_by_key(|(_, t)| (t.freq, t.seq))
            .map(|(&b, _)| b)?;
        let rec = self.tracked.remove(&victim).expect("victim tracked");
        self.used_bytes -= rec.bytes;
        self.stats.evictions += 1;
        Some(victim)
    }
}

impl ReplicationPolicy for LfuPolicy {
    fn on_map_task(&mut self, ctx: PolicyCtx<'_>) -> ReplicationDecision {
        if let Some(t) = self.tracked.get_mut(&ctx.block) {
            t.freq += 1;
            self.stats.refreshes += 1;
            return ReplicationDecision::Skip;
        }
        if ctx.is_local {
            return ReplicationDecision::Skip;
        }
        if ctx.block_bytes > self.budget_bytes {
            self.stats.skipped_no_victim += 1;
            return ReplicationDecision::Skip;
        }
        let pinned: u64 = self
            .tracked
            .values()
            .filter(|t| t.file == ctx.file)
            .map(|t| t.bytes)
            .sum();
        if pinned + ctx.block_bytes > self.budget_bytes {
            self.stats.skipped_no_victim += 1;
            return ReplicationDecision::Skip;
        }
        let mut evict = Vec::new();
        while self.used_bytes + ctx.block_bytes > self.budget_bytes {
            let v = self
                .evict_one(ctx.file)
                .expect("pinned-bytes check guarantees a victim");
            evict.push(v);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tracked.insert(
            ctx.block,
            Tracked {
                file: ctx.file,
                bytes: ctx.block_bytes,
                freq: 0,
                seq,
            },
        );
        self.used_bytes += ctx.block_bytes;
        self.stats.replicas_created += 1;
        self.stats.bytes_replicated += ctx.block_bytes;
        ReplicationDecision::Replicate { evict }
    }

    fn forget(&mut self, block: BlockId) {
        if let Some(rec) = self.tracked.remove(&block) {
            self.used_bytes -= rec.bytes;
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "lfu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::DetRng;

    const BLK: u64 = 128;

    fn ctx<'a>(rng: &'a mut DetRng, block: u64, file: u32, is_local: bool) -> PolicyCtx<'a> {
        PolicyCtx {
            block: BlockId(block),
            file: FileId(file),
            block_bytes: BLK,
            is_local,
            rng,
        }
    }

    #[test]
    fn evicts_least_frequent() {
        let mut p = LfuPolicy::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        // Block 1 gets 3 hits, block 2 gets 1.
        for _ in 0..3 {
            p.on_map_task(ctx(&mut rng, 1, 1, true));
        }
        p.on_map_task(ctx(&mut rng, 2, 2, true));
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(2)]
            }
        );
    }

    #[test]
    fn frequency_ties_evict_oldest() {
        let mut p = LfuPolicy::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(1)]
            }
        );
    }

    #[test]
    fn same_file_exclusion_holds() {
        let mut p = LfuPolicy::new(BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 7, false));
        assert_eq!(
            p.on_map_task(ctx(&mut rng, 2, 7, false)),
            ReplicationDecision::Skip
        );
        assert_eq!(p.stats().skipped_no_victim, 1);
    }

    #[test]
    fn budget_respected_under_churn() {
        let mut p = LfuPolicy::new(4 * BLK);
        let mut rng = DetRng::new(5);
        let mut wl = DetRng::new(6);
        for _ in 0..3000 {
            let b = wl.index(30) as u64;
            p.on_map_task(ctx(&mut rng, b, (b / 3) as u32, wl.coin(0.5)));
            assert!(p.used_bytes() <= 4 * BLK);
        }
        assert!(p.stats().replicas_created > 0);
    }

    #[test]
    fn forget_is_idempotent() {
        let mut p = LfuPolicy::new(BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.forget(BlockId(1));
        p.forget(BlockId(1));
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.tracked_count(), 0);
    }
}

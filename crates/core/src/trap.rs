//! `CircularTrap` — the ElephantTrap circular list, generic over keys.
//!
//! The structure from Lu, Prabhakar & Bonomi, "ElephantTrap: a low cost
//! device for identifying large flows" (HOTI 2007), as adapted by DARE:
//!
//! * tracked items live on a circular list with an **eviction pointer**;
//! * each item carries an access count, incremented (by the caller, usually
//!   behind a sampling coin) on hits;
//! * a victim search walks the ring from the pointer, **halving** every
//!   count it passes, and stops at the first item whose halved count fell
//!   below the caller's threshold — competitive aging: items must keep
//!   *earning* their slot, and recently inserted popular items survive the
//!   sweep because their counts halve at most once per full rotation;
//! * new items are inserted **right before the eviction pointer**, so a
//!   fresh item gets a full rotation of grace before it can be inspected.
//!
//! The DARE policy stores `BlockId`s here; the `heavy_hitters` example
//! reuses the same structure for its original purpose, network flows.

use std::collections::HashMap;
use std::hash::Hash;

/// A circular list of tracked keys with access counts and an eviction
/// pointer implementing the ElephantTrap aging discipline.
#[derive(Debug, Clone)]
pub struct CircularTrap<K: Eq + Hash + Copy> {
    ring: Vec<K>,
    counts: HashMap<K, u64>,
    /// Index into `ring` of the next eviction-candidate to inspect.
    pointer: usize,
}

impl<K: Eq + Hash + Copy> Default for CircularTrap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Copy> CircularTrap<K> {
    /// Empty trap.
    pub fn new() -> Self {
        CircularTrap {
            ring: Vec::new(),
            counts: HashMap::new(),
            pointer: 0,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// True when `k` is tracked.
    pub fn contains(&self, k: &K) -> bool {
        self.counts.contains_key(k)
    }

    /// Access count of `k`, if tracked.
    pub fn count(&self, k: &K) -> Option<u64> {
        self.counts.get(k).copied()
    }

    /// Insert `k` right before the eviction pointer with a zero count.
    /// Returns false (no-op) when `k` is already tracked.
    pub fn insert(&mut self, k: K) -> bool {
        if self.counts.contains_key(&k) {
            return false;
        }
        // Inserting at `pointer` shifts the current pointee one slot right;
        // advancing the pointer keeps it aimed at the same element, so the
        // new entry is the *last* the next full sweep will reach.
        self.ring.insert(self.pointer, k);
        self.pointer += 1;
        if self.pointer >= self.ring.len() {
            self.pointer = 0;
        }
        self.counts.insert(k, 0);
        true
    }

    /// Increment the access count of a tracked key. Returns false when the
    /// key is not tracked.
    pub fn touch(&mut self, k: &K) -> bool {
        match self.counts.get_mut(k) {
            Some(c) => {
                *c += 1;
                true
            }
            None => false,
        }
    }

    /// Remove a tracked key, keeping the pointer aimed at the element that
    /// followed it. Returns false when the key was not tracked.
    pub fn remove(&mut self, k: &K) -> bool {
        if self.counts.remove(k).is_none() {
            return false;
        }
        let idx = self
            .ring
            .iter()
            .position(|x| x == k)
            .expect("counts and ring agree");
        self.ring.remove(idx);
        if self.ring.is_empty() {
            self.pointer = 0;
        } else {
            if idx < self.pointer {
                self.pointer -= 1;
            }
            if self.pointer >= self.ring.len() {
                self.pointer = 0;
            }
        }
        true
    }

    /// One ElephantTrap victim search: walk at most one full rotation from
    /// the eviction pointer; halve each visited key's count; the first key
    /// whose *halved* count drops below `threshold` and that `eligible`
    /// accepts is returned (still tracked — callers decide whether to
    /// [`CircularTrap::remove`] it). `None` when a full rotation finds no
    /// eligible victim.
    ///
    /// The pointer is left one past the last inspected element, so repeated
    /// searches keep rotating instead of hammering the same prefix.
    pub fn find_victim<F: Fn(&K) -> bool>(&mut self, threshold: u64, eligible: F) -> Option<K> {
        let n = self.ring.len();
        for _ in 0..n {
            let k = self.ring[self.pointer];
            let c = self
                .counts
                .get_mut(&k)
                .expect("ring keys always have counts");
            *c /= 2; // competitive aging
            let aged = *c;
            self.pointer = (self.pointer + 1) % n;
            if aged < threshold && eligible(&k) {
                return Some(k);
            }
        }
        None
    }

    /// The tracked keys in ring order starting at the eviction pointer
    /// (diagnostics and tests).
    pub fn ring_from_pointer(&self) -> Vec<K> {
        let n = self.ring.len();
        (0..n)
            .map(|i| self.ring[(self.pointer + i) % n])
            .collect()
    }

    /// Keys sorted by descending access count (heavy hitters first). Ties
    /// broken by ring position for determinism.
    pub fn heavy_hitters(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self
            .ring
            .iter()
            .map(|&k| (k, self.counts[&k]))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_touch() {
        let mut t = CircularTrap::new();
        assert!(t.insert(1u32));
        assert!(!t.insert(1), "duplicate rejected");
        assert!(t.insert(2));
        assert_eq!(t.len(), 2);
        assert!(t.touch(&1));
        assert!(t.touch(&1));
        assert!(!t.touch(&99));
        assert_eq!(t.count(&1), Some(2));
        assert_eq!(t.count(&2), Some(0));
        assert_eq!(t.count(&99), None);
    }

    #[test]
    fn victim_search_halves_counts_and_finds_cold_key() {
        let mut t = CircularTrap::new();
        for k in [10u32, 20, 30] {
            t.insert(k);
        }
        // Heat up 10 and 20; leave 30 cold.
        for _ in 0..8 {
            t.touch(&10);
        }
        for _ in 0..4 {
            t.touch(&20);
        }
        let v = t.find_victim(1, |_| true).expect("cold key exists");
        assert_eq!(v, 30, "the zero-count key is the victim");
        // Passed keys were halved exactly once.
        let h: std::collections::HashMap<u32, u64> =
            t.heavy_hitters().into_iter().collect();
        let halved: u64 = h[&10] + h[&20];
        assert!(
            halved == 6 || halved == 8 || halved == 10 || halved == 12,
            "some subset of {{10,20}} was passed and halved: {h:?}"
        );
    }

    #[test]
    fn victim_search_fails_when_everything_is_hot() {
        let mut t = CircularTrap::new();
        for k in [1u32, 2] {
            t.insert(k);
            for _ in 0..100 {
                t.touch(&k);
            }
        }
        // threshold 1: counts 100 -> 50 after one sweep; no victim.
        assert_eq!(t.find_victim(1, |_| true), None);
        assert_eq!(t.count(&1), Some(50));
        assert_eq!(t.count(&2), Some(50));
        // Repeated sweeps age them down to victims eventually (log2 steps).
        let mut sweeps = 0;
        while t.find_victim(1, |_| true).is_none() {
            sweeps += 1;
            assert!(sweeps < 12, "competitive aging must converge");
        }
    }

    #[test]
    fn exclusion_filter_skips_ineligible_victims() {
        let mut t = CircularTrap::new();
        for k in [1u32, 2, 3] {
            t.insert(k);
        }
        // All counts zero; exclude keys 1 and 2.
        let v = t.find_victim(1, |k| *k == 3).expect("3 is eligible");
        assert_eq!(v, 3);
        // Exclude everything: no victim even though all are cold.
        assert_eq!(t.find_victim(1, |_| false), None);
    }

    #[test]
    fn remove_keeps_pointer_consistent() {
        let mut t = CircularTrap::new();
        for k in 0u32..5 {
            t.insert(k);
        }
        assert!(t.remove(&2));
        assert!(!t.remove(&2));
        assert_eq!(t.len(), 4);
        assert!(!t.contains(&2));
        // Victim search still terminates and visits everyone.
        for _ in 0..4 {
            assert!(t.find_victim(1, |_| true).is_some());
        }
    }

    #[test]
    fn remove_last_element_resets_pointer() {
        let mut t = CircularTrap::new();
        t.insert(7u32);
        assert!(t.remove(&7));
        assert!(t.is_empty());
        assert_eq!(t.find_victim(1, |_| true), None);
        // Reinsert works after emptying.
        assert!(t.insert(8));
        assert_eq!(t.ring_from_pointer(), vec![8]);
    }

    #[test]
    fn new_insert_gets_full_rotation_of_grace() {
        let mut t = CircularTrap::new();
        t.insert(1u32);
        t.insert(2);
        t.insert(3);
        // ring_from_pointer puts the most recent insert LAST: the sweep
        // reaches older entries first.
        let ring = t.ring_from_pointer();
        assert_eq!(*ring.last().expect("non-empty"), 3);
    }

    #[test]
    fn heavy_hitters_sorted_desc() {
        let mut t = CircularTrap::new();
        for k in [1u32, 2, 3] {
            t.insert(k);
        }
        for _ in 0..5 {
            t.touch(&2);
        }
        t.touch(&3);
        let hh = t.heavy_hitters();
        assert_eq!(hh[0], (2, 5));
        assert_eq!(hh[1], (3, 1));
        assert_eq!(hh[2], (1, 0));
    }

    #[test]
    fn pointer_rotates_across_searches() {
        let mut t = CircularTrap::new();
        for k in 0u32..4 {
            t.insert(k);
        }
        // All cold: each search returns the next ring element, not always
        // the same one.
        let a = t.find_victim(1, |_| true).expect("cold ring");
        t.remove(&a);
        let b = t.find_victim(1, |_| true).expect("cold ring");
        assert_ne!(a, b);
    }
}

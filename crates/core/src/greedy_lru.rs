//! Algorithm 1 — the greedy approach: replicate on *every* non-local map
//! task, bounded by the replication budget, evicting least-recently-used
//! dynamic replicas (lazy deletion), never evicting a block of the same
//! file as the one being inserted.

use crate::policy::{PolicyCtx, PolicyStats, ReplicationDecision, ReplicationPolicy};
use dare_dfs::{BlockId, FileId};
use dare_simcore::FxHashMap;
use std::collections::VecDeque;

/// Per-tracked-block record.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    file: FileId,
    bytes: u64,
}

/// The greedy LRU policy of Algorithm 1.
///
/// `blocksInUsageOrder` from the pseudocode is the internal usage queue:
/// front = least recently used, tail = most recently used; refreshed on
/// every local read of a tracked block.
#[derive(Debug)]
pub struct GreedyLru {
    budget_bytes: u64,
    used_bytes: u64,
    usage_order: VecDeque<BlockId>,
    tracked: FxHashMap<BlockId, Tracked>,
    stats: PolicyStats,
}

impl GreedyLru {
    /// Policy with a dynamic-replica budget of `budget_bytes` on this node.
    pub fn new(budget_bytes: u64) -> Self {
        GreedyLru {
            budget_bytes,
            used_bytes: 0,
            usage_order: VecDeque::new(),
            tracked: FxHashMap::default(),
            stats: PolicyStats::default(),
        }
    }

    /// Bytes of budget currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Number of tracked dynamic replicas.
    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }

    /// Move a block to the most-recently-used end.
    fn refresh(&mut self, b: BlockId) {
        if let Some(pos) = self.usage_order.iter().position(|&x| x == b) {
            self.usage_order.remove(pos);
            self.usage_order.push_back(b);
        }
    }

    /// `markBlockForDeletion`: pick the least-recently-used victim that does
    /// not belong to `evicting_file`. Detaches the victim from the policy's
    /// own bookkeeping and returns it, or `None` when every tracked block
    /// belongs to the same file.
    fn mark_block_for_deletion(&mut self, evicting_file: FileId) -> Option<BlockId> {
        let pos = self
            .usage_order
            .iter()
            .position(|b| self.tracked[b].file != evicting_file)?;
        let victim = self
            .usage_order
            .remove(pos)
            .expect("position came from the queue");
        let rec = self.tracked.remove(&victim).expect("tracked victim");
        self.used_bytes -= rec.bytes;
        self.stats.evictions += 1;
        Some(victim)
    }
}

impl ReplicationPolicy for GreedyLru {
    fn on_map_task(&mut self, ctx: PolicyCtx<'_>) -> ReplicationDecision {
        if ctx.is_local {
            // "blocksInUsageOrder queue is refreshed on every read."
            if self.tracked.contains_key(&ctx.block) {
                self.refresh(ctx.block);
                self.stats.refreshes += 1;
            }
            return ReplicationDecision::Skip;
        }
        if self.tracked.contains_key(&ctx.block) {
            // Already replicated here (e.g. not yet scheduler-visible);
            // treat as a recency hit, nothing to insert.
            self.refresh(ctx.block);
            self.stats.refreshes += 1;
            return ReplicationDecision::Skip;
        }
        if ctx.block_bytes > self.budget_bytes {
            // Block alone exceeds the budget: never replicable.
            self.stats.skipped_no_victim += 1;
            return ReplicationDecision::Skip;
        }

        // Bytes pinned by same-file blocks can never be evicted for this
        // insert; if the rest of the budget can't host the block even after
        // evicting every eligible victim, skip before touching anything.
        let pinned: u64 = self
            .tracked
            .values()
            .filter(|t| t.file == ctx.file)
            .map(|t| t.bytes)
            .sum();
        if pinned + ctx.block_bytes > self.budget_bytes {
            self.stats.skipped_no_victim += 1;
            return ReplicationDecision::Skip;
        }

        // Evict least-recently-used eligible victims until the block fits.
        let mut evict = Vec::new();
        while self.used_bytes + ctx.block_bytes > self.budget_bytes {
            let v = self
                .mark_block_for_deletion(ctx.file)
                .expect("pinned-bytes check guarantees an eligible victim");
            evict.push(v);
        }

        self.tracked.insert(
            ctx.block,
            Tracked {
                file: ctx.file,
                bytes: ctx.block_bytes,
            },
        );
        self.usage_order.push_back(ctx.block);
        self.used_bytes += ctx.block_bytes;
        self.stats.replicas_created += 1;
        self.stats.bytes_replicated += ctx.block_bytes;
        ReplicationDecision::Replicate { evict }
    }

    fn forget(&mut self, block: BlockId) {
        if let Some(rec) = self.tracked.remove(&block) {
            self.used_bytes -= rec.bytes;
            if let Some(pos) = self.usage_order.iter().position(|&x| x == block) {
                self.usage_order.remove(pos);
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::DetRng;

    const BLK: u64 = 128;

    fn ctx<'a>(
        rng: &'a mut DetRng,
        block: u64,
        file: u32,
        is_local: bool,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            block: BlockId(block),
            file: FileId(file),
            block_bytes: BLK,
            is_local,
            rng,
        }
    }

    #[test]
    fn replicates_every_remote_access_until_budget() {
        let mut p = GreedyLru::new(3 * BLK);
        let mut rng = DetRng::new(1);
        for i in 0..3 {
            let d = p.on_map_task(ctx(&mut rng, i, i as u32, false));
            assert_eq!(d, ReplicationDecision::Replicate { evict: vec![] });
        }
        assert_eq!(p.used_bytes(), 3 * BLK);
        assert_eq!(p.stats().replicas_created, 3);
    }

    #[test]
    fn evicts_lru_when_budget_full() {
        let mut p = GreedyLru::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        // Block 1 is LRU; inserting block 3 evicts it.
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(1)]
            }
        );
        assert_eq!(p.used_bytes(), 2 * BLK);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn local_read_refreshes_lru_position() {
        let mut p = GreedyLru::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        // Touch block 1 locally: now block 2 is LRU.
        assert_eq!(
            p.on_map_task(ctx(&mut rng, 1, 1, true)),
            ReplicationDecision::Skip
        );
        assert_eq!(p.stats().refreshes, 1);
        let d = p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(2)]
            }
        );
    }

    #[test]
    fn same_file_victims_are_skipped() {
        let mut p = GreedyLru::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 7, false)); // file 7 (LRU)
        p.on_map_task(ctx(&mut rng, 2, 8, false)); // file 8
        // Inserting another block of file 7 must evict file 8's block even
        // though file 7's is least recently used.
        let d = p.on_map_task(ctx(&mut rng, 3, 7, false));
        assert_eq!(
            d,
            ReplicationDecision::Replicate {
                evict: vec![BlockId(2)]
            }
        );
    }

    #[test]
    fn all_same_file_means_no_victim_and_no_insert() {
        let mut p = GreedyLru::new(BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 7, false));
        let d = p.on_map_task(ctx(&mut rng, 2, 7, false));
        assert_eq!(d, ReplicationDecision::Skip);
        assert_eq!(p.stats().skipped_no_victim, 1);
        assert!(p.tracked_count() == 1);
    }

    #[test]
    fn oversized_block_is_skipped() {
        let mut p = GreedyLru::new(BLK - 1);
        let mut rng = DetRng::new(1);
        let d = p.on_map_task(ctx(&mut rng, 1, 1, false));
        assert_eq!(d, ReplicationDecision::Skip);
        assert_eq!(p.stats().skipped_no_victim, 1);
    }

    #[test]
    fn remote_access_to_already_tracked_block_is_refresh_not_duplicate() {
        // A replica exists locally but isn't scheduler-visible yet, so the
        // scheduler sent us a "remote" task for a block we already hold.
        let mut p = GreedyLru::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        let d = p.on_map_task(ctx(&mut rng, 1, 1, false));
        assert_eq!(d, ReplicationDecision::Skip);
        assert_eq!(p.used_bytes(), BLK);
        assert_eq!(p.stats().replicas_created, 1);
    }

    #[test]
    fn forget_releases_budget() {
        let mut p = GreedyLru::new(2 * BLK);
        let mut rng = DetRng::new(1);
        p.on_map_task(ctx(&mut rng, 1, 1, false));
        p.forget(BlockId(1));
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.tracked_count(), 0);
        // Forgetting twice is harmless.
        p.forget(BlockId(1));
        // Budget is genuinely reusable.
        p.on_map_task(ctx(&mut rng, 2, 2, false));
        p.on_map_task(ctx(&mut rng, 3, 3, false));
        assert_eq!(p.used_bytes(), 2 * BLK);
    }

    #[test]
    fn budget_never_exceeded_under_random_workload() {
        let mut p = GreedyLru::new(5 * BLK);
        let mut rng = DetRng::new(99);
        let mut coin = DetRng::new(100);
        for i in 0..2000u64 {
            let block = coin.index(40) as u64;
            let file = (block / 4) as u32;
            let is_local = coin.coin(0.3);
            let _ = p.on_map_task(PolicyCtx {
                block: BlockId(block),
                file: FileId(file),
                block_bytes: BLK,
                is_local,
                rng: &mut rng,
            });
            assert!(p.used_bytes() <= 5 * BLK, "budget violated at step {i}");
        }
        assert!(p.stats().replicas_created > 0);
    }
}

//! # dare-core — the DARE adaptive replication algorithms
//!
//! The paper's contribution (Section IV), transcribed faithfully from its
//! pseudocode. DARE runs **independently at every data node**: each node
//! watches the map tasks scheduled on it and decides, task by task, whether
//! to keep the bytes a remote fetch already moved — turning a throwaway
//! read into a new first-order replica at zero extra network cost.
//!
//! Two algorithm families:
//!
//! * [`greedy_lru::GreedyLru`] — **Algorithm 1**: every non-local map task
//!   replicates its block; a per-node *replication budget* bounds the extra
//!   storage; eviction is least-recently-used with lazy deletion, skipping
//!   victims that belong to the same file as the incoming block (same file
//!   ⇒ same popularity ⇒ pointless swap).
//! * [`elephant::ElephantTrapPolicy`] — **Algorithm 2**: a probabilistic
//!   adaptation of the ElephantTrap heavy-hitter detector (Lu, Prabhakar &
//!   Bonomi, HOTI'07). A coin with probability *p* gates both replication
//!   and access-count refresh; eviction walks a circular list, halving
//!   access counts (*competitive aging*) until it finds a block whose count
//!   fell below *threshold*. Sampling plus aging is what suppresses the
//!   thrashing the greedy scheme suffers, at ~half the disk writes.
//!
//! Also here: [`trap::CircularTrap`], the reusable generic circular-list
//! structure both the policy and any heavy-hitter application can use, and
//! [`lfu::LfuPolicy`], the least-frequently-used strawman the paper's
//! Section IV discussion of eviction choices calls for profiling against.

#![warn(missing_docs)]

pub mod elephant;
pub mod greedy_lru;
pub mod lfu;
pub mod policy;
pub mod trap;
pub mod trap_eval;

pub use elephant::ElephantTrapPolicy;
pub use greedy_lru::GreedyLru;
pub use lfu::LfuPolicy;
pub use policy::{
    build_policy, PolicyCtx, PolicyKind, PolicyStats, ReplicationDecision, ReplicationPolicy,
    VanillaPolicy,
};
pub use trap::CircularTrap;
pub use trap_eval::{evaluate as evaluate_trap, TrapQuality};

//! Property-based tests of the replication-policy invariants.
//!
//! These model the contract between a policy and the file system: whatever
//! the access sequence, (1) the budget is never exceeded, (2) a policy only
//! ever evicts blocks it previously asked to replicate and that are still
//! live, and (3) internal bookkeeping stays consistent under interleaved
//! forgets.

use dare_core::{build_policy, PolicyCtx, PolicyKind, ReplicationDecision};
use dare_dfs::{BlockId, FileId};
use dare_simcore::check::{run_cases, Gen};
use dare_simcore::DetRng;
use std::collections::HashSet;

const BLK: u64 = 128;

/// One step of a simulated access sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Map task scheduled for (block, local?).
    Task { block: u64, local: bool },
    /// External forget (e.g. failure handling dropped the replica).
    Forget { block: u64 },
}

fn op(g: &mut Gen, blocks: u64) -> Op {
    // 8:1 weighting of task accesses over forgets, as in the original suite.
    if g.usize_in(0..9) < 8 {
        Op::Task {
            block: g.u64_in(0..blocks),
            local: g.bool(0.5),
        }
    } else {
        Op::Forget {
            block: g.u64_in(0..blocks),
        }
    }
}

fn kinds() -> Vec<PolicyKind> {
    vec![
        PolicyKind::GreedyLru,
        PolicyKind::Lfu,
        PolicyKind::ElephantTrap { p: 1.0, threshold: 1 },
        PolicyKind::ElephantTrap { p: 0.4, threshold: 2 },
    ]
}

/// Drive a policy through `ops`, mirroring what the MapReduce engine does,
/// and check the shared invariants after every step.
fn run_policy(kind: PolicyKind, ops: &[Op], budget_blocks: u64, seed: u64) {
    let budget = budget_blocks * BLK;
    let mut policy = build_policy(kind, budget);
    let mut rng = DetRng::new(seed);
    // The set of blocks the DFS believes are dynamically replicated here.
    let mut live: HashSet<u64> = HashSet::new();

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Task { block, local } => {
                let decision = policy.on_map_task(PolicyCtx {
                    block: BlockId(block),
                    file: FileId((block / 3) as u32),
                    block_bytes: BLK,
                    is_local: local || live.contains(&block),
                    rng: &mut rng,
                });
                if let ReplicationDecision::Replicate { evict } = decision {
                    let mut seen = HashSet::new();
                    for v in &evict {
                        assert!(
                            live.remove(&v.0),
                            "step {step}: {kind:?} evicted {v:?} which was not live"
                        );
                        assert!(seen.insert(*v), "duplicate eviction of {v:?}");
                        assert_ne!(v.0, block, "step {step}: evicted the block being inserted");
                    }
                    assert!(
                        live.insert(block),
                        "step {step}: {kind:?} re-replicated live block {block}"
                    );
                }
                assert!(
                    (live.len() as u64) * BLK <= budget,
                    "step {step}: {kind:?} exceeded budget: {} live blocks",
                    live.len()
                );
            }
            Op::Forget { block } => {
                policy.forget(BlockId(block));
                live.remove(&block);
            }
        }
    }
}

#[test]
fn policies_respect_budget_and_liveness() {
    run_cases(64, 0xC04E_0001, |g| {
        let ops = g.vec(1..400, |g| op(g, 40));
        let budget_blocks = g.u64_in(1..10);
        let seed = g.u64_in(0..1000);
        for kind in kinds() {
            run_policy(kind, &ops, budget_blocks, seed);
        }
    });
}

#[test]
fn same_file_never_evicted_for_its_own_block() {
    run_cases(64, 0xC04E_0002, |g| {
        let accesses = g.vec(1..300, |g| g.u64_in(0..12));
        let seed = g.u64_in(0..1000);
        // All blocks map to files of 3 blocks; whenever an eviction list
        // comes back, no victim may share a file with the inserted block.
        for kind in kinds() {
            let mut policy = build_policy(kind, 4 * BLK);
            let mut rng = DetRng::new(seed);
            for &block in &accesses {
                let file = FileId((block / 3) as u32);
                if let ReplicationDecision::Replicate { evict } = policy.on_map_task(PolicyCtx {
                    block: BlockId(block),
                    file,
                    block_bytes: BLK,
                    is_local: false,
                    rng: &mut rng,
                }) {
                    for v in evict {
                        assert_ne!((v.0 / 3) as u32, file.0, "evicted a same-file victim");
                    }
                }
            }
        }
    });
}

#[test]
fn deterministic_across_reruns() {
    run_cases(64, 0xC04E_0003, |g| {
        let ops = g.vec(1..200, |g| op(g, 20));
        let seed = g.u64_in(0..1000);
        // Identical seeds and op sequences must produce identical stats —
        // the reproducibility contract every experiment relies on.
        for kind in kinds() {
            let run = |s| {
                let mut p = build_policy(kind, 5 * BLK);
                let mut rng = DetRng::new(s);
                for op in &ops {
                    if let Op::Task { block, local } = *op {
                        p.on_map_task(PolicyCtx {
                            block: BlockId(block),
                            file: FileId((block / 3) as u32),
                            block_bytes: BLK,
                            is_local: local,
                            rng: &mut rng,
                        });
                    } else if let Op::Forget { block } = *op {
                        p.forget(BlockId(block));
                    }
                }
                p.stats()
            };
            assert_eq!(run(seed), run(seed));
        }
    });
}

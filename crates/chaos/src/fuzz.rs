//! The campaign loop: sample → run → shrink → export → replay-verify.
//!
//! Runs execute in fixed batches of [`BATCH`] and are *judged in run-index
//! order*, so the first failing run — and therefore the exported
//! counterexample — is identical for any thread count. The wall-clock
//! budget is checked only between batches; it bounds machine time without
//! perturbing any verdict that does get computed.

use crate::run::{run_plan, ChaosEnv, Verdict};
use crate::sample::sample_plan;
use crate::shrink::{shrink_plan, ShrinkStats};
use crate::ChaosConfig;
use dare_mapred::FaultPlan;
use dare_simcore::parallel::parallel_map_threads;
use dare_trace::{diff_golden, header_values, render_counterexample, strip_headers, to_jsonl};
use std::time::Instant;

/// Runs dispatched per scheduling batch (the determinism quantum: the
/// fuzzer never stops mid-batch, so verdict order is thread-invariant).
pub const BATCH: u64 = 16;

/// A confirmed, minimized, replay-verified failure.
#[derive(Debug, Clone)]
pub struct ChaosViolation {
    /// The run index whose schedule first failed.
    pub run: u64,
    /// The engine error (or panic message) from the *minimal* plan.
    pub error: String,
    /// The shrinker's failure key: the `[kebab-case]` invariant name,
    /// `"engine-error"`, or `"panic"`.
    pub key: String,
    /// The original sampled plan that failed.
    pub plan: FaultPlan,
    /// The locally-minimal plan (equal to `plan` when shrinking is off).
    pub minimal_plan: FaultPlan,
    /// What shrinking cost and achieved.
    pub shrink: ShrinkStats,
    /// The `#`-header golden-trace counterexample (`dare-mc` format).
    pub counterexample: String,
    /// The minimal plan as `dare-sim --fault-plan` JSON.
    pub plan_json: String,
    /// Whether replaying the counterexample reproduced the same failure
    /// key with a byte-identical trace.
    pub replay_verified: bool,
    /// First trace divergence when replay verification failed.
    pub replay_diff: Option<String>,
}

/// What a whole campaign did.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Schedules executed (and judged).
    pub runs: u64,
    /// Engine events dispatched across all runs.
    pub steps: u64,
    /// Wall-clock time spent, in seconds.
    pub wall_secs: f64,
    /// Fuzzing throughput: engine events per wall-clock second.
    pub events_per_sec: f64,
    /// True when the wall-clock budget (not the run budget or a
    /// violation) ended the campaign.
    pub stopped_on_budget_secs: bool,
    /// The first violation, when one was found.
    pub violation: Option<ChaosViolation>,
}

/// The outcome of replaying a saved counterexample.
#[derive(Debug, Clone)]
pub struct ChaosReplay {
    /// Did the replay fail at all?
    pub reproduced: bool,
    /// The replay's failure key (compare with `expected_key`).
    pub failure_key: Option<String>,
    /// The failure key recorded in the counterexample header.
    pub expected_key: Option<String>,
    /// First divergence between the saved trace and the replay's, if any.
    pub diff: Option<String>,
}

impl ChaosReplay {
    /// Replay succeeded: same failure key, byte-identical trace.
    pub fn verified(&self) -> bool {
        self.reproduced && self.diff.is_none() && self.failure_key == self.expected_key
    }
}

fn resolve_threads(cfg: &ChaosConfig) -> usize {
    if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.threads
    }
}

fn config_line(cfg: &ChaosConfig) -> String {
    format!(
        "nodes={} horizon={}s density={} alphabet={} seed={:#x} seeded_bug={}",
        cfg.nodes,
        cfg.horizon_secs,
        cfg.density,
        cfg.alphabet.encode(),
        cfg.seed,
        cfg.seeded_bug
    )
}

/// Run one fuzzing campaign to completion (budget exhausted or first
/// violation found, shrunk, exported, and replay-verified).
pub fn fuzz(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    cfg.validate()?;
    let env = ChaosEnv::new(cfg);
    let threads = resolve_threads(cfg);
    let start = Instant::now();

    let mut runs = 0u64;
    let mut steps = 0u64;
    let mut stopped_on_budget_secs = false;
    let mut violation = None;

    'campaign: while runs < cfg.budget_runs {
        if cfg.budget_secs > 0 && start.elapsed().as_secs() >= cfg.budget_secs {
            stopped_on_budget_secs = true;
            break;
        }
        let batch: Vec<u64> = (runs..(runs + BATCH).min(cfg.budget_runs)).collect();
        let results = parallel_map_threads(batch, threads, |run| {
            let plan = sample_plan(cfg, &env, run);
            let (outcome, _) = run_plan(cfg, &env, &plan, false);
            (run, plan, outcome)
        });
        // Input-order results: judging this loop in sequence IS judging
        // in run-index order.
        for (run, plan, outcome) in results {
            runs += 1;
            steps += outcome.steps;
            if outcome.verdict.is_failure() {
                violation = Some(build_violation(cfg, &env, run, plan, &outcome.verdict));
                break 'campaign;
            }
        }
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let events_per_sec = if wall_secs > 0.0 { steps as f64 / wall_secs } else { 0.0 };
    Ok(ChaosReport {
        runs,
        steps,
        wall_secs,
        events_per_sec,
        stopped_on_budget_secs,
        violation,
    })
}

/// Shrink a failing plan, export the counterexample, and replay-verify it.
fn build_violation(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    run: u64,
    plan: FaultPlan,
    verdict: &Verdict,
) -> ChaosViolation {
    let key = verdict
        .failure_key()
        .expect("build_violation called on a failing verdict");

    let (minimal_plan, shrink) = if cfg.shrink {
        shrink_plan(cfg, env, &plan, &key)
    } else {
        let n = plan.events.len();
        (
            plan.clone(),
            ShrinkStats { original_events: n, minimal_events: n, probes: 0 },
        )
    };

    // Re-run the minimal plan with tracing on: its error message and
    // trace are what the counterexample records.
    let (minimal_outcome, trace) = run_plan(cfg, env, &minimal_plan, true);
    let error = match &minimal_outcome.verdict {
        Verdict::Clean => unreachable!("shrinker preserved the failure key"),
        Verdict::Violation { error, .. } => error.clone(),
        Verdict::Panic { message } => format!("panic: {message}"),
    };

    let plan_json = minimal_plan.to_json();
    let headers: Vec<(&str, String)> = vec![
        ("key", key.clone()),
        ("plan", plan_json.replace('\n', " ")),
    ];
    let counterexample = render_counterexample(
        "dare-chaos",
        &config_line(cfg),
        &error,
        &headers,
        trace.as_ref(),
    );

    let (replay_verified, replay_diff) = match replay_with_env(cfg, env, &counterexample) {
        Ok(replay) => (replay.verified(), replay.diff),
        Err(e) => (false, Some(format!("replay parse error: {e}"))),
    };

    ChaosViolation {
        run,
        error,
        key,
        plan,
        minimal_plan,
        shrink,
        counterexample,
        plan_json,
        replay_verified,
        replay_diff,
    }
}

/// Replay a saved counterexample against a freshly derived environment.
/// The campaign knobs (`nodes`, `seed`, `seeded_bug`, …) must match the
/// ones recorded in the counterexample's config header.
pub fn replay_counterexample(cfg: &ChaosConfig, saved: &str) -> Result<ChaosReplay, String> {
    cfg.validate()?;
    let env = ChaosEnv::new(cfg);
    replay_with_env(cfg, &env, saved)
}

fn replay_with_env(cfg: &ChaosConfig, env: &ChaosEnv, saved: &str) -> Result<ChaosReplay, String> {
    let plans = header_values(saved, "plan");
    let plan_line = match plans.as_slice() {
        [one] => one,
        [] => return Err("counterexample has no `# plan:` header".into()),
        _ => return Err("counterexample has multiple `# plan:` headers".into()),
    };
    let plan = FaultPlan::from_json(plan_line)?;
    env.validate_plan(cfg, &plan)?;
    let expected_key = header_values(saved, "key").into_iter().next();

    let (outcome, trace) = run_plan(cfg, env, &plan, true);
    let golden = strip_headers(saved);
    let actual = trace.as_ref().map(to_jsonl).unwrap_or_default();
    let diff = diff_golden(&golden, &actual);
    Ok(ChaosReplay {
        reproduced: outcome.verdict.is_failure(),
        failure_key: outcome.verdict.failure_key(),
        expected_key,
        diff,
    })
}

/// Render a campaign report as the `results/BENCH_chaos.json` document.
pub fn bench_json(cfg: &ChaosConfig, report: &ChaosReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"chaos\",\n");
    let _ = writeln!(s, "  \"nodes\": {},", cfg.nodes);
    let _ = writeln!(s, "  \"horizon_secs\": {},", cfg.horizon_secs);
    let _ = writeln!(s, "  \"density\": {},", cfg.density);
    let _ = writeln!(s, "  \"alphabet\": \"{}\",", cfg.alphabet.encode());
    let _ = writeln!(s, "  \"seed\": \"{:#x}\",", cfg.seed);
    let _ = writeln!(s, "  \"seeded_bug\": {},", cfg.seeded_bug);
    let _ = writeln!(s, "  \"budget_runs\": {},", cfg.budget_runs);
    let _ = writeln!(s, "  \"budget_secs\": {},", cfg.budget_secs);
    let _ = writeln!(s, "  \"runs\": {},", report.runs);
    let _ = writeln!(s, "  \"events\": {},", report.steps);
    let _ = writeln!(s, "  \"wall_secs\": {:.3},", report.wall_secs);
    let _ = writeln!(s, "  \"events_per_sec\": {:.1},", report.events_per_sec);
    let _ = writeln!(s, "  \"stopped_on_budget_secs\": {},", report.stopped_on_budget_secs);
    let _ = writeln!(
        s,
        "  \"violations\": {},",
        if report.violation.is_some() { 1 } else { 0 }
    );
    match &report.violation {
        None => s.push_str("  \"violation\": null\n"),
        Some(v) => {
            s.push_str("  \"violation\": {\n");
            let _ = writeln!(s, "    \"run\": {},", v.run);
            let _ = writeln!(s, "    \"key\": \"{}\",", v.key);
            let _ = writeln!(s, "    \"original_events\": {},", v.shrink.original_events);
            let _ = writeln!(s, "    \"minimal_events\": {},", v.shrink.minimal_events);
            let _ = writeln!(s, "    \"shrink_probes\": {},", v.shrink.probes);
            let ratio = if v.shrink.original_events > 0 {
                v.shrink.minimal_events as f64 / v.shrink.original_events as f64
            } else {
                1.0
            };
            let _ = writeln!(s, "    \"shrink_ratio\": {ratio:.3},");
            let _ = writeln!(s, "    \"replay_verified\": {}", v.replay_verified);
            s.push_str("  }\n");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seeded_bug: bool) -> ChaosConfig {
        ChaosConfig {
            nodes: 24,
            budget_runs: 24,
            seeded_bug,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn clean_campaign_reports_no_violation() {
        let cfg = quick(false);
        let report = fuzz(&cfg).unwrap();
        assert_eq!(report.runs, 24);
        assert!(report.violation.is_none(), "clean engine fuzzed clean");
        assert!(report.steps > 0);
        let json = bench_json(&cfg, &report);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"violation\": null"));
    }

    #[test]
    fn verdicts_are_thread_count_invariant() {
        let one = fuzz(&ChaosConfig { threads: 1, ..quick(false) }).unwrap();
        let many = fuzz(&ChaosConfig { threads: 4, ..quick(false) }).unwrap();
        assert_eq!(one.runs, many.runs);
        assert_eq!(one.steps, many.steps);
        assert_eq!(one.violation.is_some(), many.violation.is_some());
    }
}

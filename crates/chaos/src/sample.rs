//! Schedule sampling: run index → valid-by-construction [`FaultPlan`].
//!
//! Validity is guaranteed structurally rather than by rejection:
//! availability faults (kill, crash, rack outage, partition) each claim
//! their target nodes for the whole campaign horizon, so no two windows
//! can overlap on one node; gray episodes and slowdowns claim their own
//! per-kind node sets; corruption targets index the real ingested block
//! namespace. Every random draw comes from the run's own named substream,
//! so `(seed, knobs, run)` fully determines the schedule — byte for byte,
//! on any thread.

use crate::run::ChaosEnv;
use crate::{ChaosConfig, Kind};
use dare_mapred::{FaultEvent, FaultPlan};
use dare_simcore::DetRng;

/// Sample the fault schedule of run `run`.
pub fn sample_plan(cfg: &ChaosConfig, env: &ChaosEnv, run: u64) -> FaultPlan {
    let mut rng = DetRng::new(cfg.seed).substream_idx("chaos-run", run);
    let kinds = cfg.alphabet.enabled();
    let max_events = (2.0 * cfg.density).round().max(1.0) as usize;
    let target = 1 + rng.index(max_events);

    // One recovery stream is the regime where repair-queue races live;
    // the seeded-bug pipeline check pins it there.
    let max_recovery_streams = if cfg.seeded_bug {
        1
    } else {
        [1, 2, 4][rng.index(3)]
    };
    let mut plan = FaultPlan {
        max_recovery_streams,
        ..FaultPlan::default()
    };

    // Per-kind claimed node sets (see module docs).
    let mut avail_used = vec![false; cfg.nodes as usize];
    let mut slow_used = vec![false; cfg.nodes as usize];
    let mut gray_used = vec![false; cfg.nodes as usize];

    for _ in 0..target {
        let kind = kinds[rng.index(kinds.len())];
        if let Some(ev) = sample_event(
            cfg,
            env,
            &mut rng,
            kind,
            &mut avail_used,
            &mut slow_used,
            &mut gray_used,
        ) {
            plan.events.push(ev);
        }
    }
    // A schedule with zero faults fuzzes nothing: fall back to one
    // transient crash (always placeable — the availability set is empty
    // when every draw above failed).
    if plan.events.is_empty() {
        let node = rng.index(cfg.nodes as usize) as u32;
        avail_used[node as usize] = true;
        plan.events.push(FaultEvent::Crash {
            at_secs: at(&mut rng, cfg),
            node,
            down_secs: outage_secs(&mut rng, env),
        });
    }
    plan
}

fn sample_event(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    rng: &mut DetRng,
    kind: Kind,
    avail_used: &mut [bool],
    slow_used: &mut [bool],
    gray_used: &mut [bool],
) -> Option<FaultEvent> {
    match kind {
        Kind::Kill => {
            let node = claim_node(rng, avail_used)?;
            Some(FaultEvent::Kill { at_secs: at(rng, cfg), node })
        }
        Kind::Crash => {
            let node = claim_node(rng, avail_used)?;
            Some(FaultEvent::Crash {
                at_secs: at(rng, cfg),
                node,
                down_secs: outage_secs(rng, env),
            })
        }
        Kind::RackOutage => {
            let rack = claim_rack(rng, env, avail_used)?;
            Some(FaultEvent::RackOutage {
                at_secs: at(rng, cfg),
                rack,
                down_secs: outage_secs(rng, env),
            })
        }
        Kind::Partition => {
            let rack_b = claim_rack(rng, env, avail_used)?;
            // Any *other* populated rack anchors the master's side.
            let side_a: Vec<u32> = (0..env.racks.len() as u32)
                .filter(|&r| r != rack_b && !env.racks[r as usize].is_empty())
                .collect();
            if side_a.is_empty() {
                return None;
            }
            let rack_a = side_a[rng.index(side_a.len())];
            Some(FaultEvent::Partition {
                at_secs: at(rng, cfg),
                racks_a: vec![rack_a],
                racks_b: vec![rack_b],
                heal_secs: outage_secs(rng, env),
            })
        }
        Kind::Slowdown => {
            let node = claim_node(rng, slow_used)?;
            Some(FaultEvent::Slowdown {
                at_secs: at(rng, cfg),
                node,
                factor: rng.uniform_range(1.5, 8.0),
                duration_secs: if rng.coin(0.7) {
                    Some(5 + rng.index(116) as u64)
                } else {
                    None
                },
            })
        }
        Kind::Corrupt => Some(FaultEvent::CorruptReplica {
            at_secs: at(rng, cfg),
            node: rng.index(cfg.nodes as usize) as u32,
            block: rng.index(env.blocks as usize) as u64,
        }),
        Kind::Gray => {
            let node = claim_node(rng, gray_used)?;
            Some(FaultEvent::GrayNode {
                at_secs: at(rng, cfg),
                node,
                secs: 5 + rng.index(116) as u64,
                disk_factor: rng.uniform_range(1.5, 10.0),
                nic_factor: rng.uniform_range(1.5, 10.0),
            })
        }
    }
}

/// A fault landing time within the horizon.
fn at(rng: &mut DetRng, cfg: &ChaosConfig) -> u64 {
    1 + rng.index(cfg.horizon_secs as usize) as u64
}

/// A transient outage/heal duration, biased toward the declare-dead
/// boundary: half the draws land just past the timeout, where the
/// declared-then-rejoin reconciliation races live; the rest spread
/// uniformly so rejoin-before-declare stays covered too.
fn outage_secs(rng: &mut DetRng, env: &ChaosEnv) -> u64 {
    if rng.coin(0.5) {
        env.timeout_secs + 1 + rng.index(6) as u64
    } else {
        5 + rng.index(116) as u64
    }
}

/// Claim a random unclaimed node, if any remain.
fn claim_node(rng: &mut DetRng, used: &mut [bool]) -> Option<u32> {
    let free: Vec<u32> = (0..used.len() as u32).filter(|&n| !used[n as usize]).collect();
    if free.is_empty() {
        return None;
    }
    let node = free[rng.index(free.len())];
    used[node as usize] = true;
    Some(node)
}

/// Claim a random populated rack whose members are all unclaimed, if any.
fn claim_rack(rng: &mut DetRng, env: &ChaosEnv, used: &mut [bool]) -> Option<u32> {
    let free: Vec<u32> = (0..env.racks.len() as u32)
        .filter(|&r| {
            let members = &env.racks[r as usize];
            !members.is_empty() && members.iter().all(|&n| !used[n as usize])
        })
        .collect();
    if free.is_empty() {
        return None;
    }
    let rack = free[rng.index(free.len())];
    for &n in &env.racks[rack as usize] {
        used[n as usize] = true;
    }
    Some(rack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ChaosEnv;

    fn cfg() -> ChaosConfig {
        ChaosConfig {
            nodes: 24,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn sampled_plans_always_validate() {
        let cfg = cfg();
        let env = ChaosEnv::new(&cfg);
        for run in 0..200 {
            let plan = sample_plan(&cfg, &env, run);
            assert!(!plan.events.is_empty(), "run {run} sampled no faults");
            env.validate_plan(&cfg, &plan)
                .unwrap_or_else(|e| panic!("run {run} sampled an invalid plan: {e}"));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_run_index() {
        let cfg = cfg();
        let env = ChaosEnv::new(&cfg);
        for run in [0, 1, 17, 123] {
            let a = sample_plan(&cfg, &env, run);
            let b = sample_plan(&cfg, &env, run);
            assert_eq!(a, b);
            assert_eq!(a.to_json(), b.to_json(), "byte-identical serialization");
        }
        assert_ne!(
            sample_plan(&cfg, &env, 0),
            sample_plan(&cfg, &env, 1),
            "distinct runs draw distinct schedules"
        );
    }

    #[test]
    fn full_alphabet_appears_across_a_campaign() {
        let cfg = ChaosConfig { density: 8.0, ..cfg() };
        let env = ChaosEnv::new(&cfg);
        let mut seen = [false; 7];
        for run in 0..300 {
            for ev in sample_plan(&cfg, &env, run).events {
                let i = match ev {
                    FaultEvent::Kill { .. } => 0,
                    FaultEvent::Crash { .. } => 1,
                    FaultEvent::RackOutage { .. } => 2,
                    FaultEvent::Slowdown { .. } => 3,
                    FaultEvent::CorruptReplica { .. } => 4,
                    FaultEvent::Partition { .. } => 5,
                    FaultEvent::GrayNode { .. } => 6,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 7], "every fault kind sampled: {seen:?}");
    }
}

//! One fuzz run: drive the real engine under a sampled plan, with every
//! invariant armed and panics captured as verdicts.

use crate::ChaosConfig;
use dare_core::PolicyKind;
use dare_mapred::{Engine, FaultPlan, SchedulerKind, SimConfig, StepOutcome};
use dare_net::{ClusterProfile, RackId, Topology};
use dare_simcore::DetRng;
use dare_workload::swim::{synthesize, SwimParams};
use dare_workload::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Safety bound on one run: a chaos workload drains in well under a
/// million events, so a run still going after this many steps is a
/// livelock and reported as one.
const MAX_RUN_STEPS: u64 = 20_000_000;

/// Everything derived from the campaign knobs that is *shared by every
/// run*: the topology (rebuilt exactly as the engine will build it), the
/// workload, rack membership, and the block namespace. The engine seed is
/// fixed across runs — coverage comes from the fault schedules, and a
/// fixed environment is what makes a shrunken plan a deterministic
/// witness.
pub struct ChaosEnv {
    /// The simulated topology (same named substream the engine uses).
    pub topology: Topology,
    /// Nodes per rack, indexed by rack id (empty racks stay empty).
    pub racks: Vec<Vec<u32>>,
    /// The fuzzed workload.
    pub workload: Workload,
    /// Ingested input blocks (corruption targets must stay below this).
    pub blocks: u64,
    /// The missed-heartbeat declare-dead timeout, in whole seconds: the
    /// sampler biases crash/heal durations around this boundary.
    pub timeout_secs: u64,
}

impl ChaosEnv {
    /// Derive the shared environment of a campaign.
    pub fn new(cfg: &ChaosConfig) -> ChaosEnv {
        let sim = sim_config(cfg, &FaultPlan::default(), false);
        let topology = sim
            .profile
            .build_topology(&mut DetRng::new(sim.seed).substream("topology"));
        let racks: Vec<Vec<u32>> = (0..topology.racks())
            .map(|r| topology.nodes_in_rack(RackId(r)).into_iter().map(|n| n.0).collect())
            .collect();
        // Enough jobs that the cluster stays busy across the fault
        // horizon; trailing faults still dispatch after the last job
        // (quiescence waits for pending fault transitions).
        let jobs = cfg.nodes.clamp(24, 96);
        let workload = synthesize("chaos", &SwimParams { jobs, ..SwimParams::wl1() }, cfg.seed);
        let bs = sim.dfs.block_size;
        let blocks = workload.files.iter().map(|f| f.size_bytes.div_ceil(bs)).sum();
        let timeout_secs = (sim.heartbeat.as_secs_f64()
            * sim.faults.detect_heartbeats as f64)
            .ceil() as u64;
        ChaosEnv {
            topology,
            racks,
            workload,
            blocks,
            timeout_secs,
        }
    }

    /// Validate a plan exactly as the engine will at build time, so
    /// `Engine::new` cannot panic on it: structural checks, rack
    /// membership expansion, and the block namespace.
    pub fn validate_plan(&self, cfg: &ChaosConfig, plan: &FaultPlan) -> Result<(), String> {
        plan.validate(cfg.nodes)?;
        plan.validate_topology(&self.topology)?;
        plan.validate_blocks(self.blocks)
    }
}

/// The engine configuration every run uses: vanilla replication and FIFO
/// scheduling (no policy state to obscure protocol bugs), per-event
/// invariant checks armed.
pub fn sim_config(cfg: &ChaosConfig, plan: &FaultPlan, record_trace: bool) -> SimConfig {
    let mut sim = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, cfg.seed);
    sim.profile = ClusterProfile::scale(cfg.nodes);
    sim.check_invariants = true;
    sim.record_trace = record_trace;
    sim.seeded_bug_skip_heal_recheck = cfg.seeded_bug;
    sim.faults = plan.clone();
    sim
}

/// How one run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to quiescence with every invariant holding.
    Clean,
    /// The engine reported a structured failure (invariant violation,
    /// stall, or orphan flow).
    Violation {
        /// The engine's full error message.
        error: String,
        /// The `[kebab-case]` invariant name extracted from the message,
        /// when it carries one. Shrinking matches on this, so the minimal
        /// plan provably reproduces the *same* failure.
        invariant: Option<String>,
    },
    /// The engine panicked (caught via `catch_unwind`).
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl Verdict {
    /// True when the run failed in any way.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Clean)
    }

    /// The key the shrinker matches on: the invariant name when the
    /// failure carries one, otherwise a coarse kind tag — so shrinking
    /// never "succeeds" by swapping one failure mode for another.
    pub fn failure_key(&self) -> Option<String> {
        match self {
            Verdict::Clean => None,
            Verdict::Violation { invariant: Some(inv), .. } => Some(inv.clone()),
            Verdict::Violation { invariant: None, .. } => Some("engine-error".into()),
            Verdict::Panic { .. } => Some("panic".into()),
        }
    }
}

/// Extract the first `[kebab-case]` token of an engine error message —
/// the invariant catalog name (`dare_simcore::check::InvariantId`) or a
/// path-invariant tag.
pub fn invariant_of(error: &str) -> Option<String> {
    let start = error.find('[')?;
    let rest = &error[start + 1..];
    let end = rest.find(']')?;
    let name = &rest[..end];
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
        return None;
    }
    Some(name.to_string())
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// How the run ended.
    pub verdict: Verdict,
    /// Events dispatched (the fuzzer's throughput unit).
    pub steps: u64,
    /// Simulated time reached, in seconds.
    pub sim_secs: f64,
}

/// Execute one plan to quiescence. The caller must have validated the
/// plan (see [`ChaosEnv::validate_plan`]); a panic anywhere inside the
/// engine — including a validation panic in `Engine::new` — is captured
/// and returned as [`Verdict::Panic`]. Returns the recorded trace when
/// `record_trace` was set and the engine got far enough to produce one.
pub fn run_plan(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    plan: &FaultPlan,
    record_trace: bool,
) -> (RunOutcome, Option<dare_trace::Trace>) {
    let sim = sim_config(cfg, plan, record_trace);
    let workload = &env.workload;
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut eng = Engine::new(sim, workload);
        let mut steps = 0u64;
        let outcome = loop {
            match eng.step() {
                Ok(StepOutcome::Progressed) => {
                    steps += 1;
                    if steps >= MAX_RUN_STEPS {
                        break Err(format!(
                            "[chaos-livelock] run exceeded {MAX_RUN_STEPS} events without quiescing"
                        ));
                    }
                }
                Ok(StepOutcome::Quiescent) => break Ok(()),
                Err(e) => break Err(e.to_string()),
            }
        };
        let sim_secs = eng.sim_now().as_secs_f64();
        (outcome, steps, sim_secs, eng.take_trace())
    }));
    match result {
        Ok((outcome, steps, sim_secs, trace)) => {
            let verdict = match outcome {
                Ok(()) => Verdict::Clean,
                Err(error) => {
                    let invariant = invariant_of(&error);
                    Verdict::Violation { error, invariant }
                }
            };
            (
                RunOutcome {
                    verdict,
                    steps,
                    sim_secs,
                },
                trace,
            )
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            (
                RunOutcome {
                    verdict: Verdict::Panic { message },
                    steps: 0,
                    sim_secs: 0.0,
                },
                None,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig {
            nodes: 12,
            budget_runs: 4,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn env_matches_engine_derivation() {
        let cfg = small();
        let env = ChaosEnv::new(&cfg);
        assert_eq!(env.topology.nodes(), 12);
        assert_eq!(
            env.racks.iter().map(Vec::len).sum::<usize>(),
            12,
            "every node sits in exactly one rack"
        );
        assert!(env.blocks > 0);
        assert_eq!(env.timeout_secs, 30, "3s heartbeat x 10 missed");
    }

    #[test]
    fn empty_plan_runs_clean() {
        let cfg = small();
        let env = ChaosEnv::new(&cfg);
        let (outcome, trace) = run_plan(&cfg, &env, &FaultPlan::default(), false);
        assert_eq!(outcome.verdict, Verdict::Clean);
        assert!(outcome.steps > 0);
        assert!(trace.is_none(), "tracing was off");
    }

    #[test]
    fn invariant_names_are_extracted() {
        assert_eq!(
            invariant_of("3 violation(s): [slot-conservation] node 2 over"),
            Some("slot-conservation".into())
        );
        assert_eq!(invariant_of("invariant violation: [no-loss-below-rf] x"), Some("no-loss-below-rf".into()));
        assert_eq!(invariant_of("stalled at t=4"), None);
        assert_eq!(invariant_of("weird [Not Kebab] text"), None);
    }
}

//! Delta-debugging: reduce a failing [`FaultPlan`] to a locally-minimal
//! witness that still fails with the *same* failure key.
//!
//! Two phases, iterated to a fixpoint:
//!
//! 1. **ddmin over events** — Zeller's minimizing delta debugging on the
//!    event list: try dropping chunks at increasing granularity, keeping
//!    any reduction that still reproduces.
//! 2. **Field shrinking** — for each surviving event, try a small fixed
//!    ladder of simpler values (earlier landing time, shorter or
//!    boundary-aligned durations), keeping whatever still reproduces.
//!
//! Every probe is a full deterministic engine run judged by
//! [`crate::run::Verdict::failure_key`], so the minimal plan provably triggers the
//! same invariant (or panic class) as the original — shrinking can never
//! "succeed" by wandering onto a different bug. Both phases are
//! deterministic given the same inputs, which makes the shrinker
//! idempotent: re-shrinking a minimal plan returns it unchanged.

use crate::run::{run_plan, ChaosEnv};
use crate::ChaosConfig;
use dare_mapred::{FaultEvent, FaultPlan};

/// What the shrinker did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Events in the original failing plan.
    pub original_events: usize,
    /// Events in the minimal plan.
    pub minimal_events: usize,
    /// Engine runs spent probing candidates.
    pub probes: u64,
}

/// Shrink `plan` (which must fail with `target_key`) to a locally-minimal
/// plan with the same failure key. Returns the minimal plan and stats.
pub fn shrink_plan(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    plan: &FaultPlan,
    target_key: &str,
) -> (FaultPlan, ShrinkStats) {
    let original_events = plan.events.len();
    let mut probes = 0u64;
    let mut current = plan.clone();

    loop {
        let before = current.clone();
        current = ddmin_events(cfg, env, &current, target_key, &mut probes);
        current = shrink_fields(cfg, env, &current, target_key, &mut probes);
        if current.events == before.events {
            break;
        }
    }

    let minimal_events = current.events.len();
    (
        current,
        ShrinkStats {
            original_events,
            minimal_events,
            probes,
        },
    )
}

/// Does `candidate` still fail the same way? Invalid candidates (a rack
/// fault whose rack lost meaning, say) simply don't reproduce.
fn reproduces(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    candidate: &FaultPlan,
    target_key: &str,
    probes: &mut u64,
) -> bool {
    if env.validate_plan(cfg, candidate).is_err() {
        return false;
    }
    *probes += 1;
    let (outcome, _) = run_plan(cfg, env, candidate, false);
    outcome.verdict.failure_key().as_deref() == Some(target_key)
}

/// Minimizing delta debugging over the event list.
fn ddmin_events(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    plan: &FaultPlan,
    target_key: &str,
    probes: &mut u64,
) -> FaultPlan {
    let mut events = plan.events.clone();
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate_events: Vec<FaultEvent> = Vec::with_capacity(events.len());
            candidate_events.extend_from_slice(&events[..start]);
            candidate_events.extend_from_slice(&events[end..]);
            let candidate = with_events(plan, candidate_events);
            if !candidate.events.is_empty()
                && reproduces(cfg, env, &candidate, target_key, probes)
            {
                events = candidate.events;
                granularity = granularity.max(2).min(events.len().max(2));
                reduced = true;
                // Re-scan from the front at the same granularity.
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        }
    }
    // Single events still shrink by deletion when the plan fails with
    // zero faults (possible only for panic-class bugs; probe anyway).
    with_events(plan, events)
}

/// Per-event value shrinking: walk each event's candidate ladder, keeping
/// any simplification that still reproduces, until a full pass accepts
/// nothing.
fn shrink_fields(
    cfg: &ChaosConfig,
    env: &ChaosEnv,
    plan: &FaultPlan,
    target_key: &str,
    probes: &mut u64,
) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut accepted = false;
        for i in 0..current.events.len() {
            for replacement in simpler_variants(&current.events[i], env) {
                if replacement == current.events[i] {
                    continue;
                }
                let mut events = current.events.clone();
                events[i] = replacement.clone();
                let candidate = with_events(&current, events);
                if reproduces(cfg, env, &candidate, target_key, probes) {
                    current = candidate;
                    accepted = true;
                }
            }
        }
        if !accepted {
            return current;
        }
    }
}

fn with_events(template: &FaultPlan, events: Vec<FaultEvent>) -> FaultPlan {
    let mut plan = template.clone();
    plan.events = events;
    plan
}

/// Candidate time values: earliest possible, then halving.
fn simpler_times(at: u64) -> Vec<u64> {
    let mut v = Vec::new();
    if at > 1 {
        v.push(1);
        if at / 2 > 1 {
            v.push(at / 2);
        }
    }
    v
}

/// Candidate durations: minimal, just past the declare-dead boundary
/// (where the interesting races live), then halving.
fn simpler_durations(secs: u64, timeout: u64) -> Vec<u64> {
    let mut v = Vec::new();
    if secs > 1 {
        v.push(1);
    }
    if secs > timeout + 1 {
        v.push(timeout + 1);
    }
    if secs / 2 >= 1 && secs / 2 != secs {
        v.push(secs / 2);
    }
    v.dedup();
    v
}

/// The fixed ladder of simpler variants of one event.
fn simpler_variants(ev: &FaultEvent, env: &ChaosEnv) -> Vec<FaultEvent> {
    let t = env.timeout_secs;
    let mut out = Vec::new();
    match ev {
        FaultEvent::Kill { at_secs, node } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::Kill { at_secs: at, node: *node });
            }
        }
        FaultEvent::Crash { at_secs, node, down_secs } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::Crash { at_secs: at, node: *node, down_secs: *down_secs });
            }
            for d in simpler_durations(*down_secs, t) {
                out.push(FaultEvent::Crash { at_secs: *at_secs, node: *node, down_secs: d });
            }
        }
        FaultEvent::RackOutage { at_secs, rack, down_secs } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::RackOutage { at_secs: at, rack: *rack, down_secs: *down_secs });
            }
            for d in simpler_durations(*down_secs, t) {
                out.push(FaultEvent::RackOutage { at_secs: *at_secs, rack: *rack, down_secs: d });
            }
        }
        FaultEvent::Slowdown { at_secs, node, factor, duration_secs } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::Slowdown {
                    at_secs: at,
                    node: *node,
                    factor: *factor,
                    duration_secs: *duration_secs,
                });
            }
            if let Some(d) = duration_secs {
                for nd in simpler_durations(*d, t) {
                    out.push(FaultEvent::Slowdown {
                        at_secs: *at_secs,
                        node: *node,
                        factor: *factor,
                        duration_secs: Some(nd),
                    });
                }
            }
        }
        FaultEvent::CorruptReplica { at_secs, node, block } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::CorruptReplica { at_secs: at, node: *node, block: *block });
            }
        }
        FaultEvent::Partition { at_secs, racks_a, racks_b, heal_secs } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::Partition {
                    at_secs: at,
                    racks_a: racks_a.clone(),
                    racks_b: racks_b.clone(),
                    heal_secs: *heal_secs,
                });
            }
            for d in simpler_durations(*heal_secs, t) {
                out.push(FaultEvent::Partition {
                    at_secs: *at_secs,
                    racks_a: racks_a.clone(),
                    racks_b: racks_b.clone(),
                    heal_secs: d,
                });
            }
        }
        FaultEvent::GrayNode { at_secs, node, secs, disk_factor, nic_factor } => {
            for at in simpler_times(*at_secs) {
                out.push(FaultEvent::GrayNode {
                    at_secs: at,
                    node: *node,
                    secs: *secs,
                    disk_factor: *disk_factor,
                    nic_factor: *nic_factor,
                });
            }
            for d in simpler_durations(*secs, t) {
                out.push(FaultEvent::GrayNode {
                    at_secs: *at_secs,
                    node: *node,
                    secs: d,
                    disk_factor: *disk_factor,
                    nic_factor: *nic_factor,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_duration_ladders_are_monotone() {
        assert_eq!(simpler_times(1), Vec::<u64>::new());
        assert_eq!(simpler_times(2), vec![1]);
        assert_eq!(simpler_times(100), vec![1, 50]);
        assert_eq!(simpler_durations(1, 30), Vec::<u64>::new());
        assert_eq!(simpler_durations(120, 30), vec![1, 31, 60]);
        assert_eq!(simpler_durations(8, 30), vec![1, 4]);
    }
}

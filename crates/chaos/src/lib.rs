//! # dare-chaos — chaos fuzzing with delta-debugged counterexamples
//!
//! The bounded model checker (`dare-mc`) exhaustively verifies the
//! failure/replication protocol on 2–6-node clusters; the experiment
//! harness runs realistic clusters under *hand-written* fault schedules.
//! This crate stresses the regime between them: mid-size clusters
//! (50–500 nodes) under dense, randomly sampled fault schedules drawn
//! from the full [`dare_mapred::FaultEvent`] alphabet — kills, transient
//! crashes, rack outages, limplock slowdowns, silent corruption, network
//! partitions, and gray (degraded-but-alive) nodes.
//!
//! ## Pipeline
//!
//! 1. **Sample** ([`sample`]): each run index maps through its own named
//!    [`dare_simcore::DetRng`] substream to a valid-by-construction
//!    [`dare_mapred::FaultPlan`] — same `(seed, knobs)`, same schedule,
//!    byte for byte, regardless of thread count.
//! 2. **Run** ([`run`]): the real `mapred::engine` executes the plan with
//!    every `simcore::check` invariant armed, wrapped in `catch_unwind`
//!    so an engine panic is a verdict, not a fuzzer crash.
//! 3. **Shrink** ([`shrink`]): on any violation, ddmin over the plan's
//!    events followed by per-event time/duration shrinking yields a
//!    locally-minimal plan that still fails with the *same* invariant.
//! 4. **Export** ([`mod@fuzz`]): the minimal plan is written as replayable
//!    JSON (`dare-sim --fault-plan`) plus a `#`-header golden-trace
//!    counterexample in the exact format `dare-mc` emits (shared
//!    [`dare_trace::counterexample`] writer), and replay-verified before
//!    the fuzzer reports it.

#![warn(missing_docs)]

pub mod fuzz;
pub mod run;
pub mod sample;
pub mod shrink;

pub use fuzz::{bench_json, fuzz, replay_counterexample, ChaosReport, ChaosViolation};
pub use run::{run_plan, ChaosEnv, RunOutcome, Verdict};
pub use sample::sample_plan;
pub use shrink::{shrink_plan, ShrinkStats};

/// Which [`dare_mapred::FaultEvent`] kinds the sampler may draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alphabet {
    /// Permanent node kills.
    pub kill: bool,
    /// Transient crash/rejoin pairs.
    pub crash: bool,
    /// Whole-rack transient outages.
    pub rack_outage: bool,
    /// Limplock slowdowns (disk + compute).
    pub slowdown: bool,
    /// Silent replica corruption.
    pub corrupt: bool,
    /// Two-sided network partitions.
    pub partition: bool,
    /// Gray failures (degraded I/O, still heartbeating).
    pub gray: bool,
}

impl Default for Alphabet {
    fn default() -> Self {
        Alphabet::all()
    }
}

impl Alphabet {
    /// Every fault kind enabled.
    pub fn all() -> Self {
        Alphabet {
            kill: true,
            crash: true,
            rack_outage: true,
            slowdown: true,
            corrupt: true,
            partition: true,
            gray: true,
        }
    }

    /// Parse `"all"` or a comma list of kind names
    /// (`kill,crash,rack,slowdown,corrupt,partition,gray`).
    pub fn parse(s: &str) -> Result<Alphabet, String> {
        if s == "all" {
            return Ok(Alphabet::all());
        }
        let mut a = Alphabet {
            kill: false,
            crash: false,
            rack_outage: false,
            slowdown: false,
            corrupt: false,
            partition: false,
            gray: false,
        };
        for part in s.split(',') {
            match part.trim() {
                "kill" => a.kill = true,
                "crash" => a.crash = true,
                "rack" | "rack_outage" => a.rack_outage = true,
                "slowdown" | "slow" => a.slowdown = true,
                "corrupt" | "corruption" => a.corrupt = true,
                "partition" => a.partition = true,
                "gray" | "gray_node" => a.gray = true,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} \
                         (kill|crash|rack|slowdown|corrupt|partition|gray)"
                    ))
                }
            }
        }
        if a.enabled().is_empty() {
            return Err("empty fault alphabet".into());
        }
        Ok(a)
    }

    /// The enabled kinds, in a fixed canonical order (the sampler indexes
    /// into this, so the order is part of the schedule determinism
    /// contract).
    pub fn enabled(&self) -> Vec<Kind> {
        let mut v = Vec::new();
        if self.kill {
            v.push(Kind::Kill);
        }
        if self.crash {
            v.push(Kind::Crash);
        }
        if self.rack_outage {
            v.push(Kind::RackOutage);
        }
        if self.slowdown {
            v.push(Kind::Slowdown);
        }
        if self.corrupt {
            v.push(Kind::Corrupt);
        }
        if self.partition {
            v.push(Kind::Partition);
        }
        if self.gray {
            v.push(Kind::Gray);
        }
        v
    }

    /// Canonical comma-list rendering (inverse of [`Alphabet::parse`]).
    pub fn encode(&self) -> String {
        if *self == Alphabet::all() {
            return "all".into();
        }
        let names: Vec<&str> = self
            .enabled()
            .iter()
            .map(|k| match k {
                Kind::Kill => "kill",
                Kind::Crash => "crash",
                Kind::RackOutage => "rack",
                Kind::Slowdown => "slowdown",
                Kind::Corrupt => "corrupt",
                Kind::Partition => "partition",
                Kind::Gray => "gray",
            })
            .collect();
        names.join(",")
    }
}

/// One fault kind the sampler can draw (mirrors the
/// [`dare_mapred::FaultEvent`] variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Permanent kill.
    Kill,
    /// Transient crash.
    Crash,
    /// Rack outage.
    RackOutage,
    /// Limplock slowdown.
    Slowdown,
    /// Silent corruption.
    Corrupt,
    /// Network partition.
    Partition,
    /// Gray failure.
    Gray,
}

/// Bounds and knobs of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Worker nodes in the fuzzed cluster (mid-size regime: 50–500; the
    /// validator admits 8..=1000 so tests can run smaller).
    pub nodes: u32,
    /// Fault-injection horizon: every sampled fault lands in
    /// `[1, horizon_secs]`.
    pub horizon_secs: u64,
    /// Mean fault events per sampled schedule; each run draws
    /// `1..=2·density` events.
    pub density: f64,
    /// Which fault kinds the sampler draws.
    pub alphabet: Alphabet,
    /// Campaign seed: run `i` samples from substream `("chaos-run", i)`,
    /// and the engine itself always runs on this seed (fixed topology and
    /// workload — coverage comes from the schedules).
    pub seed: u64,
    /// Maximum schedules to try.
    pub budget_runs: u64,
    /// Wall-clock budget in seconds; `0` disables the clock. Checked
    /// between batches, so (unlike `budget_runs`) where it cuts off is
    /// machine-dependent — verdicts for the runs that did execute are
    /// still deterministic.
    pub budget_secs: u64,
    /// Worker threads for the fuzz loop; `0` means all available cores.
    /// Verdicts are thread-count-invariant: runs are processed in fixed
    /// batches and judged in run-index order.
    pub threads: usize,
    /// Delta-debug any violation down to a locally-minimal plan.
    pub shrink: bool,
    /// Arm the engine's deliberate recovery-path mutation
    /// (`SimConfig::seeded_bug_skip_heal_recheck`) to validate the whole
    /// find→shrink→replay pipeline end to end. Also pins
    /// `max_recovery_streams` to 1, the regime where that bug is
    /// reachable.
    pub seeded_bug: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 50,
            horizon_secs: 240,
            density: 5.0,
            alphabet: Alphabet::all(),
            seed: 0xC4A0_5FA7,
            budget_runs: 256,
            budget_secs: 0,
            threads: 0,
            shrink: true,
            seeded_bug: false,
        }
    }
}

impl ChaosConfig {
    /// Sanity-check the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if !(8..=1000).contains(&self.nodes) {
            return Err(format!("nodes {} out of 8..=1000", self.nodes));
        }
        if self.horizon_secs < 10 {
            return Err(format!("horizon {}s too short (min 10)", self.horizon_secs));
        }
        if self.density.is_nan() || self.density < 0.5 || self.density > 64.0 {
            return Err(format!("density {} out of [0.5, 64]", self.density));
        }
        if self.budget_runs == 0 {
            return Err("zero run budget".into());
        }
        if self.alphabet.enabled().is_empty() {
            return Err("empty fault alphabet".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_parses_and_encodes() {
        assert_eq!(Alphabet::parse("all").unwrap(), Alphabet::all());
        let a = Alphabet::parse("crash, partition,gray").unwrap();
        assert!(a.crash && a.partition && a.gray);
        assert!(!a.kill && !a.rack_outage && !a.slowdown && !a.corrupt);
        assert_eq!(a.encode(), "crash,partition,gray");
        assert_eq!(Alphabet::parse(&a.encode()).unwrap(), a);
        assert_eq!(Alphabet::all().encode(), "all");
        assert!(Alphabet::parse("warp").is_err());
        assert!(Alphabet::parse("").is_err());
    }

    #[test]
    fn config_bounds_validated() {
        assert!(ChaosConfig::default().validate().is_ok());
        assert!(ChaosConfig { nodes: 4, ..ChaosConfig::default() }.validate().is_err());
        assert!(ChaosConfig { nodes: 2000, ..ChaosConfig::default() }.validate().is_err());
        assert!(ChaosConfig { horizon_secs: 5, ..ChaosConfig::default() }.validate().is_err());
        assert!(ChaosConfig { density: 0.0, ..ChaosConfig::default() }.validate().is_err());
        assert!(ChaosConfig { budget_runs: 0, ..ChaosConfig::default() }.validate().is_err());
    }
}

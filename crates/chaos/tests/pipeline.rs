//! End-to-end pipeline properties: the seeded bug is found, shrunk to a
//! near-singleton plan, exported, and replay-verified; the whole fuzzer
//! is deterministic in `(seed, knobs)` regardless of thread count; and
//! the shrinker is idempotent.

use dare_chaos::{fuzz, replay_counterexample, sample_plan, shrink_plan, ChaosConfig, ChaosEnv};

fn seeded() -> ChaosConfig {
    ChaosConfig {
        nodes: 24,
        budget_runs: 16,
        seeded_bug: true,
        ..ChaosConfig::default()
    }
}

#[test]
fn seeded_bug_is_found_shrunk_and_replayed() {
    let cfg = seeded();
    let report = fuzz(&cfg).unwrap();
    let v = report
        .violation
        .expect("seeded bug must be found within the smoke budget");

    assert!(
        v.shrink.minimal_events <= 3,
        "minimal plan has {} events (wanted <= 3)",
        v.shrink.minimal_events
    );
    assert_eq!(v.minimal_plan.events.len(), v.shrink.minimal_events);
    assert!(
        v.key.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
        "failure key {} is an invariant name",
        v.key
    );
    assert!(
        v.replay_verified,
        "replay diverged: {:?}",
        v.replay_diff
    );

    // The exported artifacts round-trip: the plan JSON parses, and an
    // independent replay from the counterexample text alone reproduces
    // the same failure key with a byte-identical trace.
    dare_mapred::FaultPlan::from_json(&v.plan_json).unwrap();
    let replay = replay_counterexample(&cfg, &v.counterexample).unwrap();
    assert!(replay.reproduced);
    assert_eq!(replay.failure_key.as_deref(), Some(v.key.as_str()));
    assert_eq!(replay.expected_key.as_deref(), Some(v.key.as_str()));
    assert!(replay.diff.is_none(), "trace diverged: {:?}", replay.diff);
}

#[test]
fn fuzzer_is_thread_count_invariant() {
    let one = fuzz(&ChaosConfig { threads: 1, ..seeded() }).unwrap();
    let four = fuzz(&ChaosConfig { threads: 4, ..seeded() }).unwrap();
    let (a, b) = (one.violation.unwrap(), four.violation.unwrap());
    assert_eq!(a.run, b.run, "same first failing run");
    assert_eq!(a.key, b.key);
    assert_eq!(a.plan, b.plan, "same sampled schedule, byte for byte");
    assert_eq!(a.minimal_plan, b.minimal_plan);
    assert_eq!(a.plan_json, b.plan_json);
    assert_eq!(a.counterexample, b.counterexample, "identical exported bytes");
    assert_eq!(a.shrink, b.shrink);
}

#[test]
fn schedules_are_byte_identical_across_processes_and_threads() {
    // sample_plan depends only on (seed, knobs, run) — no global state.
    let cfg = ChaosConfig { nodes: 24, ..ChaosConfig::default() };
    let env = ChaosEnv::new(&cfg);
    let serial: Vec<String> = (0..32).map(|r| sample_plan(&cfg, &env, r).to_json()).collect();
    let parallel = dare_simcore::parallel::parallel_map_threads(
        (0..32u64).collect(),
        4,
        |r| sample_plan(&cfg, &env, r).to_json(),
    );
    assert_eq!(serial, parallel);
}

#[test]
fn shrinker_is_idempotent() {
    let cfg = seeded();
    let env = ChaosEnv::new(&cfg);
    let report = fuzz(&cfg).unwrap();
    let v = report.violation.unwrap();

    let (again, stats) = shrink_plan(&cfg, &env, &v.minimal_plan, &v.key);
    assert_eq!(again, v.minimal_plan, "re-shrinking a minimal plan is a no-op");
    assert_eq!(stats.original_events, v.shrink.minimal_events);
    assert_eq!(stats.minimal_events, v.shrink.minimal_events);
}

//! Results of one simulation run.

use dare_metrics::{FaultStats, JobOutcome, RunMetrics};
use dare_simcore::SimTime;

/// Everything the experiments read out of a finished run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Aggregate run metrics (locality, GMTT, slowdown, ...).
    pub run: RunMetrics,
    /// Per-job outcomes (for CDFs and significance checks).
    pub outcomes: Vec<JobOutcome>,
    /// Dynamic replicas created across all nodes — each one is a disk
    /// write, so this is also the thrashing cost axis.
    pub replicas_created: u64,
    /// Dynamic replicas evicted across all nodes.
    pub evictions: u64,
    /// Non-local tasks the sampling coin ignored (ElephantTrap only).
    pub skipped_by_sampling: u64,
    /// Replications abandoned for lack of an eviction victim.
    pub skipped_no_victim: u64,
    /// Average dynamically replicated blocks per job (Figs. 8-9).
    pub blocks_per_job: f64,
    /// Popularity-index coefficient of variation after ingest, before any
    /// job ran ("Before DARE" in Fig. 11).
    pub cv_before: f64,
    /// Popularity-index coefficient of variation at the end of the run
    /// ("After DARE").
    pub cv_after: f64,
    /// Bytes held in dynamic replicas at the end of the run.
    pub final_dynamic_bytes: u64,
    /// Remote bytes moved over the network for map input fetches.
    pub remote_bytes_fetched: u64,
    /// Stats of the proactive (Scarlett) baseline, when enabled.
    pub proactive: Option<ProactiveStats>,
    /// Map attempts re-executed because their node (or fetch source) died.
    pub reexecuted_tasks: u64,
    /// Speculative backup attempts launched.
    pub speculative_launches: u64,
    /// Task races resolved while a duplicate attempt was still running.
    pub speculative_wins: u64,
    /// Per-attempt timeline, when `SimConfig::record_timeline` is set.
    pub timeline: Option<Vec<TaskRecord>>,
    /// Failure-detection and recovery counters (all zero without faults).
    pub faults: FaultStats,
    /// Structured event trace, when `SimConfig::record_trace` is set.
    pub trace: Option<dare_trace::Trace>,
    /// Sampled cluster-state time-series, when `SimConfig::telemetry` is
    /// set. Observation-only: everything else in this result is
    /// bit-identical with or without it.
    pub telemetry: Option<dare_telemetry::Telemetry>,
    /// Per-subsystem wall-clock dispatch timings, when
    /// `SimConfig::self_profile` is set. Wall time never feeds the
    /// simulation, so the rest of the result is unaffected.
    pub profile: Option<dare_telemetry::ProfileReport>,
    /// Logical simulation events processed: one per dispatched event,
    /// except that a batched heartbeat tick counts one per node it
    /// services (the per-node work it replaces), so throughput is
    /// comparable between batched and per-node heartbeat runs.
    pub logical_events: u64,
    /// FNV-1a fingerprint of the DFS's final physical replica map (every
    /// datanode's held blocks plus their dynamic/primary status). Two runs
    /// with identical placement end with identical fingerprints, which is
    /// how the tracing-is-observation-only differential test proves a
    /// traced run leaves the file system in the same state as an untraced
    /// one.
    pub dfs_fingerprint: u64,
}

/// One map-task attempt's lifecycle (timeline tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// Job index.
    pub job: u32,
    /// Task index within the job.
    pub task: u32,
    /// Attempt id.
    pub attempt: u32,
    /// Node the attempt ran on.
    pub node: u32,
    /// True for a speculative backup attempt.
    pub speculative: bool,
    /// True when the input was read from local disk.
    pub local_read: bool,
    /// Launch time.
    pub launched: SimTime,
    /// Input-read completion (None if the attempt was aborted mid-read).
    pub read_done: Option<SimTime>,
    /// Completion (None if aborted or if it lost a speculation race and
    /// its result was discarded before finishing).
    pub finished: Option<SimTime>,
}

/// Render a timeline as CSV (one row per attempt).
pub fn timeline_csv(records: &[TaskRecord]) -> String {
    let mut s = String::from(
        "job,task,attempt,node,speculative,local_read,launched_s,read_done_s,finished_s\n",
    );
    for r in records {
        let opt = |t: Option<SimTime>| {
            t.map(|t| format!("{:.3}", t.as_secs_f64()))
                .unwrap_or_default()
        };
        s.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{},{}\n",
            r.job,
            r.task,
            r.attempt,
            r.node,
            r.speculative,
            r.local_read,
            r.launched.as_secs_f64(),
            opt(r.read_done),
            opt(r.finished),
        ));
    }
    s
}

/// Counters of the epoch-based proactive replicator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProactiveStats {
    /// Bytes pushed over the network for proactive replication — the
    /// explicit cost DARE avoids by piggybacking on existing fetches.
    pub bytes_moved: u64,
    /// Proactive replicas created.
    pub replicas_created: u64,
    /// Replicas aged out at epoch boundaries.
    pub evictions: u64,
}

impl SimResult {
    /// Re-derive [`RunMetrics::job_locality`] from the telemetry series'
    /// terminal per-job rows, replicating `dare_metrics::summarize`'s
    /// arithmetic (same values, same summation order) so the two paths
    /// agree bitwise. `None` without telemetry or with no terminal rows.
    pub fn telemetry_job_locality(&self) -> Option<f64> {
        let t = self.telemetry.as_ref()?;
        let last = t.cluster.last()?.t_us;
        let mut sum = 0.0f64;
        let mut jobs = 0usize;
        for j in t.jobs.iter().filter(|j| j.t_us == last) {
            if j.phase == dare_telemetry::JobPhase::Done {
                sum += j.node_local as f64 / j.maps_total.max(1) as f64;
                jobs += 1;
            }
        }
        if jobs == 0 {
            return None;
        }
        Some(sum / jobs as f64)
    }

    /// Re-derive the task-weighted [`RunMetrics::locality`] from the
    /// telemetry series' terminal per-job rows (bitwise equal to the
    /// summarized value). `None` without telemetry or terminal rows.
    pub fn telemetry_locality(&self) -> Option<f64> {
        let t = self.telemetry.as_ref()?;
        let last = t.cluster.last()?.t_us;
        let (mut local, mut maps, mut jobs) = (0u64, 0u64, 0usize);
        for j in t.jobs.iter().filter(|j| j.t_us == last) {
            if j.phase == dare_telemetry::JobPhase::Done {
                local += j.node_local as u64;
                maps += j.maps_total as u64;
                jobs += 1;
            }
        }
        if jobs == 0 {
            return None;
        }
        Some(local as f64 / maps.max(1) as f64)
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "jobs={} locality={:.3} gmtt={:.1}s slowdown={:.2} replicas={} evictions={} blocks/job={:.2}",
            self.run.jobs,
            self.run.locality,
            self.run.gmtt_secs,
            self.run.mean_slowdown,
            self.replicas_created,
            self.evictions,
            self.blocks_per_job,
        )
    }
}

//! Fault-injection plans: deterministic schedules of node failures,
//! transient crashes, rack outages, and slow-node degradation.
//!
//! A [`FaultPlan`] replaces the bare `Vec<(u64, u32)>` failure list the
//! engine used to take. It carries both the *schedule* (a list of
//! [`FaultEvent`]s) and the *failure-handling knobs* (heartbeat-timeout
//! detection, task retry cap, recovery parallelism). Plans can be written
//! by hand or generated from a [`FaultSpec`] with
//! [`FaultPlan::generate`], which draws every random choice from its own
//! named [`DetRng`] substream — so an identical
//! `(spec, seed)` pair always yields an identical plan, and an *empty*
//! plan leaves every other random stream in the simulator untouched.

use dare_simcore::DetRng;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Permanent node kill at `at_secs`: the node's disk contents are
    /// gone, it never heartbeats again, and it is declared dead after the
    /// plan's missed-heartbeat timeout elapses.
    Kill {
        /// Simulation time of the crash, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
    },
    /// Transient crash/rejoin pair: the node goes silent at `at_secs`,
    /// keeps its disk, and rejoins `down_secs` later with a block report
    /// reconciling the namenode's stale replica state.
    Crash {
        /// Simulation time of the crash, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Seconds until the node rejoins (must be ≥ 1).
        down_secs: u64,
    },
    /// Every node in a rack goes silent at once (switch failure) and
    /// rejoins `down_secs` later. Nodes keep their disks.
    RackOutage {
        /// Simulation time of the outage, in seconds.
        at_secs: u64,
        /// Rack index (must be a valid rack of the profile's topology).
        rack: u32,
        /// Seconds until the rack comes back (must be ≥ 1).
        down_secs: u64,
    },
    /// Slow-node ("limplock") degradation: from `at_secs` on, the node's
    /// disk reads and map compute run `factor`× slower. If
    /// `duration_secs` is set the node recovers to full speed afterwards.
    Slowdown {
        /// Simulation time the degradation starts, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Slowdown multiplier (must be ≥ 1).
        factor: f64,
        /// Optional duration; `None` means the node stays slow forever.
        duration_secs: Option<u64>,
    },
}

impl FaultEvent {
    /// The node index this event targets, if it targets a single node.
    fn node(&self) -> Option<u32> {
        match *self {
            FaultEvent::Kill { node, .. }
            | FaultEvent::Crash { node, .. }
            | FaultEvent::Slowdown { node, .. } => Some(node),
            FaultEvent::RackOutage { .. } => None,
        }
    }
}

/// A full fault-injection plan: the event schedule plus the knobs that
/// govern detection, retry, and recovery behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, in any order (the engine sorts by event time).
    pub events: Vec<FaultEvent>,
    /// A node is declared dead after this many missed heartbeats
    /// (Hadoop's default timeout is 10× the heartbeat interval).
    pub detect_heartbeats: u32,
    /// A task that fails this many attempts fails its whole job
    /// (Hadoop's `mapred.map.max.attempts`, default 4).
    pub max_task_attempts: u32,
    /// Base backoff between retry attempts of the same task, in seconds.
    pub retry_backoff_secs: u64,
    /// Maximum concurrent re-replication transfers. `0` disables
    /// recovery entirely (lost redundancy is never restored).
    pub max_recovery_streams: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            detect_heartbeats: 10,
            max_task_attempts: 4,
            retry_backoff_secs: 5,
            max_recovery_streams: 4,
        }
    }
}

impl FaultPlan {
    /// True when no faults are scheduled — the engine then behaves
    /// bit-identically to a fault-free build.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate the plan against a cluster of `nodes` nodes.
    ///
    /// Rejects out-of-range node indices, duplicate permanent kills of
    /// the same node, non-positive outage durations, slowdown factors
    /// below 1, and degenerate knob values. Rack indices are checked
    /// separately by [`FaultPlan::validate_racks`] once the topology is
    /// built.
    pub fn validate(&self, nodes: u32) -> Result<(), String> {
        if self.detect_heartbeats == 0 {
            return Err("detect_heartbeats must be >= 1".into());
        }
        if self.max_task_attempts == 0 {
            return Err("max_task_attempts must be >= 1".into());
        }
        let mut killed: Vec<u32> = Vec::new();
        for ev in &self.events {
            if let Some(node) = ev.node() {
                if node >= nodes {
                    return Err(format!(
                        "fault targets node {node} but the cluster has {nodes} nodes"
                    ));
                }
            }
            match *ev {
                FaultEvent::Kill { node, .. } => {
                    if killed.contains(&node) {
                        return Err(format!("node {node} is killed twice"));
                    }
                    killed.push(node);
                }
                FaultEvent::Crash { down_secs, .. } | FaultEvent::RackOutage { down_secs, .. } => {
                    if down_secs == 0 {
                        return Err("transient outage must last >= 1 s".into());
                    }
                }
                FaultEvent::Slowdown { factor, .. } => {
                    if factor < 1.0 || factor.is_nan() {
                        return Err(format!("slowdown factor {factor} must be >= 1"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate rack indices against the built topology's rack count.
    pub fn validate_racks(&self, racks: u32) -> Result<(), String> {
        for ev in &self.events {
            if let FaultEvent::RackOutage { rack, .. } = *ev {
                if rack >= racks {
                    return Err(format!(
                        "rack outage targets rack {rack} but the topology has {racks} racks"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generate a random plan from a [`FaultSpec`].
    ///
    /// All draws come from the `"fault-plan"` substream of `seed`, so the
    /// generated schedule is a pure function of `(spec, nodes, racks,
    /// seed)` and never perturbs the simulator's other random streams.
    pub fn generate(spec: &FaultSpec, nodes: u32, racks: u32, seed: u64) -> FaultPlan {
        assert!(nodes > 0, "cannot generate faults for an empty cluster");
        let mut rng = DetRng::new(seed).substream("fault-plan");
        let mut events = Vec::new();
        let horizon = spec.horizon_secs.max(1);

        // Permanent kills target distinct nodes.
        let kills = (spec.kills as usize).min(nodes.saturating_sub(1) as usize);
        let victims = rng.sample_indices(nodes as usize, kills);
        for &v in &victims {
            events.push(FaultEvent::Kill {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node: v as u32,
            });
        }

        // Transient crashes avoid the permanently-killed nodes.
        let mut pool: Vec<u32> = (0..nodes).filter(|n| !victims.contains(&(*n as usize))).collect();
        for _ in 0..spec.crashes {
            if pool.is_empty() {
                break;
            }
            let node = pool.swap_remove(rng.index(pool.len()));
            let down = 1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64;
            events.push(FaultEvent::Crash {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node,
                down_secs: down,
            });
        }

        for _ in 0..spec.rack_outages {
            if racks == 0 {
                break;
            }
            events.push(FaultEvent::RackOutage {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                rack: rng.index(racks as usize) as u32,
                down_secs: 1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64,
            });
        }

        for _ in 0..spec.stragglers {
            events.push(FaultEvent::Slowdown {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node: rng.index(nodes as usize) as u32,
                factor: spec.straggler_factor.max(1.0),
                duration_secs: Some(1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64),
            });
        }

        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }
}

/// Shape parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fault times are drawn uniformly from `[1, horizon_secs]`.
    pub horizon_secs: u64,
    /// Number of permanent node kills (distinct victims; capped at
    /// `nodes - 1` so the cluster never fully dies).
    pub kills: u32,
    /// Number of transient crash/rejoin events.
    pub crashes: u32,
    /// Mean downtime of transient outages, in seconds (actual downtimes
    /// are uniform on roughly `[1, 2 × mean]`).
    pub mean_down_secs: u64,
    /// Number of rack-level outages.
    pub rack_outages: u32,
    /// Number of slow-node degradation episodes.
    pub stragglers: u32,
    /// Slowdown multiplier applied during a straggler episode.
    pub straggler_factor: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            horizon_secs: 300,
            kills: 1,
            crashes: 2,
            mean_down_secs: 45,
            rack_outages: 0,
            stragglers: 1,
            straggler_factor: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.validate(10).is_ok());
        assert!(p.validate_racks(1).is_ok());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan {
            events: vec![FaultEvent::Kill { at_secs: 5, node: 10 }],
            ..FaultPlan::default()
        };
        assert!(p.validate(10).is_err(), "out-of-range node");

        p.events = vec![
            FaultEvent::Kill { at_secs: 5, node: 3 },
            FaultEvent::Kill { at_secs: 9, node: 3 },
        ];
        assert!(p.validate(10).is_err(), "duplicate kill");

        p.events = vec![FaultEvent::Crash {
            at_secs: 5,
            node: 3,
            down_secs: 0,
        }];
        assert!(p.validate(10).is_err(), "zero downtime");

        p.events = vec![FaultEvent::Slowdown {
            at_secs: 5,
            node: 3,
            factor: 0.5,
            duration_secs: None,
        }];
        assert!(p.validate(10).is_err(), "speedup factor");

        p.events = vec![FaultEvent::RackOutage {
            at_secs: 5,
            rack: 4,
            down_secs: 10,
        }];
        assert!(p.validate(10).is_ok(), "racks not checked here");
        assert!(p.validate_racks(4).is_err(), "out-of-range rack");
        assert!(p.validate_racks(5).is_ok());

        p.events.clear();
        p.detect_heartbeats = 0;
        assert!(p.validate(10).is_err(), "zero detection timeout");
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let spec = FaultSpec {
            kills: 2,
            crashes: 3,
            rack_outages: 1,
            stragglers: 2,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate(&spec, 19, 4, 42);
        let b = FaultPlan::generate(&spec, 19, 4, 42);
        assert_eq!(a, b, "same inputs must give the same plan");
        assert_eq!(a.events.len(), 8);
        assert!(a.validate(19).is_ok());
        assert!(a.validate_racks(4).is_ok());

        let c = FaultPlan::generate(&spec, 19, 4, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generate_kills_distinct_nodes_and_crashes_avoid_them() {
        let spec = FaultSpec {
            kills: 4,
            crashes: 6,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(&spec, 12, 2, 7);
        let mut killed = Vec::new();
        let mut crashed = Vec::new();
        for ev in &p.events {
            match *ev {
                FaultEvent::Kill { node, .. } => killed.push(node),
                FaultEvent::Crash { node, .. } => crashed.push(node),
                _ => {}
            }
        }
        let mut k = killed.clone();
        k.sort_unstable();
        k.dedup();
        assert_eq!(k.len(), killed.len(), "kills must be distinct");
        for c in &crashed {
            assert!(!killed.contains(c), "crash targets a killed node");
        }
    }
}

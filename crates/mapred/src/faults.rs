//! Fault-injection plans: deterministic schedules of node failures,
//! transient crashes, rack outages, and slow-node degradation.
//!
//! A [`FaultPlan`] replaces the bare `Vec<(u64, u32)>` failure list the
//! engine used to take. It carries both the *schedule* (a list of
//! [`FaultEvent`]s) and the *failure-handling knobs* (heartbeat-timeout
//! detection, task retry cap, recovery parallelism). Plans can be written
//! by hand or generated from a [`FaultSpec`] with
//! [`FaultPlan::generate`], which draws every random choice from its own
//! named [`DetRng`] substream — so an identical
//! `(spec, seed)` pair always yields an identical plan, and an *empty*
//! plan leaves every other random stream in the simulator untouched.

use dare_simcore::DetRng;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Permanent node kill at `at_secs`: the node's disk contents are
    /// gone, it never heartbeats again, and it is declared dead after the
    /// plan's missed-heartbeat timeout elapses.
    Kill {
        /// Simulation time of the crash, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
    },
    /// Transient crash/rejoin pair: the node goes silent at `at_secs`,
    /// keeps its disk, and rejoins `down_secs` later with a block report
    /// reconciling the namenode's stale replica state.
    Crash {
        /// Simulation time of the crash, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Seconds until the node rejoins (must be ≥ 1).
        down_secs: u64,
    },
    /// Every node in a rack goes silent at once (switch failure) and
    /// rejoins `down_secs` later. Nodes keep their disks.
    RackOutage {
        /// Simulation time of the outage, in seconds.
        at_secs: u64,
        /// Rack index (must be a valid rack of the profile's topology).
        rack: u32,
        /// Seconds until the rack comes back (must be ≥ 1).
        down_secs: u64,
    },
    /// Slow-node ("limplock") degradation: from `at_secs` on, the node's
    /// disk reads and map compute run `factor`× slower. If
    /// `duration_secs` is set the node recovers to full speed afterwards.
    Slowdown {
        /// Simulation time the degradation starts, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Slowdown multiplier (must be ≥ 1).
        factor: f64,
        /// Optional duration; `None` means the node stays slow forever.
        duration_secs: Option<u64>,
    },
    /// Silent bit-rot: the replica of `block` resident on `node` becomes
    /// unreadable at `at_secs`, but *nothing notices* until a map-side
    /// read or a background scrub checksums it. If the node holds no
    /// replica of the block at that time the rot lands on unallocated
    /// sectors and the event is a no-op.
    CorruptReplica {
        /// Simulation time the bytes rot, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Absolute block id (must be a valid block of the ingested
        /// workload; checked at engine build time via
        /// [`FaultPlan::validate_blocks`]).
        block: u64,
    },
    /// Network partition: the fabric splits into two rack groups at
    /// `at_secs` and heals `heal_secs` later. The master (JobTracker +
    /// NameNode) lives on side A, so every node in a `racks_b` rack goes
    /// silent from the master's point of view — heartbeats and `net`
    /// flows across the cut are dropped, the partitioned side is declared
    /// dead after the missed-heartbeat timeout, and the heal triggers a
    /// block report reconciling the namenode's stale replica state,
    /// exactly like a transient rejoin. Racks listed in neither group sit
    /// on the master's side. The two groups must be disjoint and
    /// non-empty.
    Partition {
        /// Simulation time of the cut, in seconds.
        at_secs: u64,
        /// Racks on the master's side of the cut.
        racks_a: Vec<u32>,
        /// Racks cut off from the master.
        racks_b: Vec<u32>,
        /// Seconds until the partition heals (must be ≥ 1).
        heal_secs: u64,
    },
    /// Gray failure: from `at_secs` for `secs` seconds the node's disk
    /// reads run `disk_factor`× slower and its NIC delivers
    /// `nic_factor`× less bandwidth, but the node *keeps heartbeating* —
    /// no crash, no declare-dead. Degraded-but-alive nodes stress the
    /// straggler-timeout/speculation path instead of the death path.
    GrayNode {
        /// Simulation time the degradation starts, in seconds.
        at_secs: u64,
        /// Node index (must be `< profile.nodes`).
        node: u32,
        /// Seconds until the node recovers to full speed (must be ≥ 1).
        secs: u64,
        /// Disk-read slowdown multiplier (must be ≥ 1).
        disk_factor: f64,
        /// NIC bandwidth derating multiplier (must be ≥ 1).
        nic_factor: f64,
    },
}

impl FaultEvent {
    /// The node index this event targets, if it targets a single node.
    fn node(&self) -> Option<u32> {
        match *self {
            FaultEvent::Kill { node, .. }
            | FaultEvent::Crash { node, .. }
            | FaultEvent::Slowdown { node, .. }
            | FaultEvent::CorruptReplica { node, .. }
            | FaultEvent::GrayNode { node, .. } => Some(node),
            FaultEvent::RackOutage { .. } | FaultEvent::Partition { .. } => None,
        }
    }

    /// The unavailability window `[start, end]` (inclusive) this event
    /// opens on its target node(s), if any. A kill never ends; a
    /// transient crash ends at the rejoin second — the rejoin itself is
    /// part of the window, since another fault landing on the rejoin
    /// second would race the block report.
    fn window(&self) -> Option<(u64, u64)> {
        match *self {
            FaultEvent::Kill { at_secs, .. } => Some((at_secs, u64::MAX)),
            FaultEvent::Crash {
                at_secs, down_secs, ..
            }
            | FaultEvent::RackOutage {
                at_secs, down_secs, ..
            } => Some((at_secs, at_secs.saturating_add(down_secs))),
            // A partition's per-node windows are expanded against real
            // rack membership in `validate_topology`; gray nodes keep
            // heartbeating, so they open no availability window at all.
            FaultEvent::Slowdown { .. }
            | FaultEvent::CorruptReplica { .. }
            | FaultEvent::Partition { .. }
            | FaultEvent::GrayNode { .. } => None,
        }
    }
}

/// A full fault-injection plan: the event schedule plus the knobs that
/// govern detection, retry, and recovery behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, in any order (the engine sorts by event time).
    pub events: Vec<FaultEvent>,
    /// A node is declared dead after this many missed heartbeats
    /// (Hadoop's default timeout is 10× the heartbeat interval).
    pub detect_heartbeats: u32,
    /// A task that fails this many attempts fails its whole job
    /// (Hadoop's `mapred.map.max.attempts`, default 4).
    pub max_task_attempts: u32,
    /// Base backoff between retry attempts of the same task, in seconds.
    pub retry_backoff_secs: u64,
    /// Maximum concurrent re-replication transfers. `0` disables
    /// recovery entirely (lost redundancy is never restored).
    pub max_recovery_streams: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            detect_heartbeats: 10,
            max_task_attempts: 4,
            retry_backoff_secs: 5,
            max_recovery_streams: 4,
        }
    }
}

impl FaultPlan {
    /// True when no faults are scheduled — the engine then behaves
    /// bit-identically to a fault-free build.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate the plan against a cluster of `nodes` nodes.
    ///
    /// Rejects out-of-range node indices, duplicate permanent kills of
    /// the same node, non-positive outage durations, slowdown factors
    /// below 1, degenerate knob values, and *overlapping availability
    /// faults on the same node* (a crash landing while the node is
    /// already down — or after its permanent kill — would produce
    /// ambiguous epoch ordering in the engine). Rack indices and
    /// rack-vs-node overlaps are checked by
    /// [`FaultPlan::validate_topology`] once the topology is built.
    pub fn validate(&self, nodes: u32) -> Result<(), String> {
        if self.detect_heartbeats == 0 {
            return Err("detect_heartbeats must be >= 1".into());
        }
        if self.max_task_attempts == 0 {
            return Err("max_task_attempts must be >= 1".into());
        }
        let mut killed: Vec<u32> = Vec::new();
        for ev in &self.events {
            if let Some(node) = ev.node() {
                if node >= nodes {
                    return Err(format!(
                        "fault targets node {node} but the cluster has {nodes} nodes"
                    ));
                }
            }
            match *ev {
                FaultEvent::Kill { node, .. } => {
                    if killed.contains(&node) {
                        return Err(format!("node {node} is killed twice"));
                    }
                    killed.push(node);
                }
                FaultEvent::Crash { down_secs, .. } | FaultEvent::RackOutage { down_secs, .. } => {
                    if down_secs == 0 {
                        return Err("transient outage must last >= 1 s".into());
                    }
                }
                FaultEvent::Slowdown { factor, .. } => {
                    if factor < 1.0 || factor.is_nan() {
                        return Err(format!("slowdown factor {factor} must be >= 1"));
                    }
                }
                FaultEvent::CorruptReplica { .. } => {}
                FaultEvent::Partition {
                    ref racks_a,
                    ref racks_b,
                    heal_secs,
                    ..
                } => {
                    if racks_a.is_empty() || racks_b.is_empty() {
                        return Err("partition sides must both be non-empty".into());
                    }
                    if heal_secs == 0 {
                        return Err("partition must last >= 1 s before healing".into());
                    }
                    if let Some(r) = racks_a.iter().find(|r| racks_b.contains(r)) {
                        return Err(format!(
                            "rack {r} appears on both sides of a partition \
                             (a rack cannot be partitioned from itself)"
                        ));
                    }
                }
                FaultEvent::GrayNode {
                    secs,
                    disk_factor,
                    nic_factor,
                    ..
                } => {
                    if secs == 0 {
                        return Err("gray episode must last >= 1 s".into());
                    }
                    for (name, f) in [("disk_factor", disk_factor), ("nic_factor", nic_factor)] {
                        if f < 1.0 || f.is_nan() {
                            return Err(format!("gray {name} {f} must be >= 1"));
                        }
                    }
                }
            }
        }
        // Gray episodes on one node must not overlap each other: the
        // engine keeps a single degradation factor per node, so two
        // concurrent episodes would race their restore events. (Overlap
        // with crash windows stays legal, like `Slowdown`.)
        let gray: Vec<(u32, u64, u64)> = self
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::GrayNode { at_secs, node, secs, .. } => {
                    Some((node, at_secs, at_secs.saturating_add(secs)))
                }
                _ => None,
            })
            .collect();
        check_overlap(&gray).map_err(|(n, a, b)| {
            format!(
                "node {n} has overlapping gray episodes [{}s, {}s] and [{}s, {}s] — \
                 their restore events would race",
                a.0, a.1, b.0, b.1
            )
        })?;
        // Per-node availability windows must not overlap. Rack outages
        // are expanded against real membership in `validate_topology`;
        // here only node-targeted events are paired.
        let windows: Vec<(u32, u64, u64)> = self
            .events
            .iter()
            .filter_map(|ev| {
                let n = ev.node()?;
                let (s, e) = ev.window()?;
                Some((n, s, e))
            })
            .collect();
        check_overlap(&windows).map_err(|(n, a, b)| overlap_msg(n, a, b))
    }

    /// Validate rack indices against the built topology's rack count.
    /// Prefer [`FaultPlan::validate_topology`], which also rejects
    /// rack-outage windows overlapping node faults.
    pub fn validate_racks(&self, racks: u32) -> Result<(), String> {
        for ev in &self.events {
            match *ev {
                FaultEvent::RackOutage { rack, .. } if rack >= racks => {
                    return Err(format!(
                        "rack outage targets rack {rack} but the topology has {racks} racks"
                    ));
                }
                FaultEvent::Partition {
                    ref racks_a,
                    ref racks_b,
                    ..
                } => {
                    for r in racks_a.iter().chain(racks_b) {
                        if *r >= racks {
                            return Err(format!(
                                "partition references rack {r} but the topology has {racks} racks"
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Validate the plan against the built topology: rack indices are in
    /// range, and rack-outage windows — expanded to every member node —
    /// do not overlap any other availability fault on those nodes (e.g. a
    /// `Crash` inside a `RackOutage` window for a node of that rack).
    pub fn validate_topology(&self, topo: &dare_net::Topology) -> Result<(), String> {
        self.validate_racks(topo.racks())?;
        let mut windows: Vec<(u32, u64, u64)> = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::RackOutage { rack, .. } => {
                    let (s, e) = ev.window().expect("rack outage has a window");
                    for n in topo.nodes_in_rack(dare_net::RackId(rack)) {
                        windows.push((n.0, s, e));
                    }
                }
                // Side B of a partition is unavailable to the master for
                // the whole cut, exactly like a rack outage of each of
                // its racks.
                FaultEvent::Partition {
                    at_secs,
                    ref racks_b,
                    heal_secs,
                    ..
                } => {
                    let (s, e) = (at_secs, at_secs.saturating_add(heal_secs));
                    for &rack in racks_b {
                        for n in topo.nodes_in_rack(dare_net::RackId(rack)) {
                            windows.push((n.0, s, e));
                        }
                    }
                }
                _ => {
                    if let (Some(n), Some((s, e))) = (ev.node(), ev.window()) {
                        windows.push((n, s, e));
                    }
                }
            }
        }
        check_overlap(&windows).map_err(|(n, a, b)| overlap_msg(n, a, b))
    }

    /// Validate corruption targets against the ingested namespace:
    /// every `CorruptReplica` block id must be `< blocks`.
    pub fn validate_blocks(&self, blocks: u64) -> Result<(), String> {
        for ev in &self.events {
            if let FaultEvent::CorruptReplica { block, .. } = *ev {
                if block >= blocks {
                    return Err(format!(
                        "corruption targets block {block} but the workload has {blocks} blocks"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generate a random plan from a [`FaultSpec`].
    ///
    /// Equivalent to [`FaultPlan::generate_with_blocks`] with an empty
    /// namespace: the corruption rate is ignored because there are no
    /// blocks to target. Kept for callers that build their plan before
    /// the workload is known.
    pub fn generate(spec: &FaultSpec, nodes: u32, racks: u32, seed: u64) -> FaultPlan {
        Self::generate_with_blocks(spec, nodes, racks, 0, seed)
    }

    /// Generate a random plan from a [`FaultSpec`], including silent
    /// corruption events sampled over a namespace of `blocks` blocks.
    ///
    /// The expected corruption count is
    /// `corruption_rate_per_node_hour × nodes × horizon / 3600`, rounded
    /// stochastically (one extra uniform draw settles the fraction); each
    /// event picks a uniform `(time, node, block)` triple. A sampled node
    /// that happens not to hold the block makes that event a no-op, so
    /// the *effective* replica-corruption rate scales with the replica
    /// density `replication_factor / nodes`.
    ///
    /// All draws come from the `"fault-plan"` substream of `seed`, so the
    /// generated schedule is a pure function of `(spec, nodes, racks,
    /// blocks, seed)` and never perturbs the simulator's other random
    /// streams. With a zero corruption rate (or zero blocks) the output
    /// is identical to what [`FaultPlan::generate`] produced before
    /// corruption existed.
    pub fn generate_with_blocks(
        spec: &FaultSpec,
        nodes: u32,
        racks: u32,
        blocks: u64,
        seed: u64,
    ) -> FaultPlan {
        assert!(nodes > 0, "cannot generate faults for an empty cluster");
        let mut rng = DetRng::new(seed).substream("fault-plan");
        let mut events = Vec::new();
        let horizon = spec.horizon_secs.max(1);

        // Permanent kills target distinct nodes.
        let kills = (spec.kills as usize).min(nodes.saturating_sub(1) as usize);
        let victims = rng.sample_indices(nodes as usize, kills);
        for &v in &victims {
            events.push(FaultEvent::Kill {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node: v as u32,
            });
        }

        // Transient crashes avoid the permanently-killed nodes.
        let mut pool: Vec<u32> = (0..nodes).filter(|n| !victims.contains(&(*n as usize))).collect();
        for _ in 0..spec.crashes {
            if pool.is_empty() {
                break;
            }
            let node = pool.swap_remove(rng.index(pool.len()));
            let down = 1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64;
            events.push(FaultEvent::Crash {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node,
                down_secs: down,
            });
        }

        for _ in 0..spec.rack_outages {
            if racks == 0 {
                break;
            }
            events.push(FaultEvent::RackOutage {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                rack: rng.index(racks as usize) as u32,
                down_secs: 1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64,
            });
        }

        for _ in 0..spec.stragglers {
            events.push(FaultEvent::Slowdown {
                at_secs: 1 + rng.index(horizon as usize) as u64,
                node: rng.index(nodes as usize) as u32,
                factor: spec.straggler_factor.max(1.0),
                duration_secs: Some(1 + (rng.uniform() * 2.0 * spec.mean_down_secs as f64) as u64),
            });
        }

        if blocks > 0 && spec.corruption_rate_per_node_hour > 0.0 {
            let expected =
                spec.corruption_rate_per_node_hour * nodes as f64 * horizon as f64 / 3600.0;
            let mut count = expected.floor() as u64;
            if rng.uniform() < expected.fract() {
                count += 1;
            }
            for _ in 0..count {
                events.push(FaultEvent::CorruptReplica {
                    at_secs: 1 + rng.index(horizon as usize) as u64,
                    node: rng.index(nodes as usize) as u32,
                    block: rng.index(blocks as usize) as u64,
                });
            }
        }

        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }
}

impl FaultPlan {
    /// Serialize the plan to JSON (the `dare-sim --fault-plan` format).
    /// Round-trips exactly through [`FaultPlan::from_json`].
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(s, "  \"detect_heartbeats\": {},", self.detect_heartbeats);
        let _ = writeln!(s, "  \"max_task_attempts\": {},", self.max_task_attempts);
        let _ = writeln!(s, "  \"retry_backoff_secs\": {},", self.retry_backoff_secs);
        let _ = writeln!(s, "  \"max_recovery_streams\": {},", self.max_recovery_streams);
        s.push_str("  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            match *ev {
                FaultEvent::Kill { at_secs, node } => {
                    let _ = write!(s, "{{\"kind\": \"kill\", \"at_secs\": {at_secs}, \"node\": {node}}}");
                }
                FaultEvent::Crash {
                    at_secs,
                    node,
                    down_secs,
                } => {
                    let _ = write!(
                        s,
                        "{{\"kind\": \"crash\", \"at_secs\": {at_secs}, \"node\": {node}, \"down_secs\": {down_secs}}}"
                    );
                }
                FaultEvent::RackOutage {
                    at_secs,
                    rack,
                    down_secs,
                } => {
                    let _ = write!(
                        s,
                        "{{\"kind\": \"rack_outage\", \"at_secs\": {at_secs}, \"rack\": {rack}, \"down_secs\": {down_secs}}}"
                    );
                }
                FaultEvent::Slowdown {
                    at_secs,
                    node,
                    factor,
                    duration_secs,
                } => {
                    let _ = write!(
                        s,
                        "{{\"kind\": \"slowdown\", \"at_secs\": {at_secs}, \"node\": {node}, \"factor\": {factor}"
                    );
                    if let Some(d) = duration_secs {
                        let _ = write!(s, ", \"duration_secs\": {d}");
                    }
                    s.push('}');
                }
                FaultEvent::CorruptReplica {
                    at_secs,
                    node,
                    block,
                } => {
                    let _ = write!(
                        s,
                        "{{\"kind\": \"corrupt_replica\", \"at_secs\": {at_secs}, \"node\": {node}, \"block\": {block}}}"
                    );
                }
                FaultEvent::Partition {
                    at_secs,
                    ref racks_a,
                    ref racks_b,
                    heal_secs,
                } => {
                    let list = |racks: &[u32]| {
                        racks
                            .iter()
                            .map(u32::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    let _ = write!(
                        s,
                        "{{\"kind\": \"partition\", \"at_secs\": {at_secs}, \"racks_a\": [{}], \"racks_b\": [{}], \"heal_secs\": {heal_secs}}}",
                        list(racks_a),
                        list(racks_b),
                    );
                }
                FaultEvent::GrayNode {
                    at_secs,
                    node,
                    secs,
                    disk_factor,
                    nic_factor,
                } => {
                    let _ = write!(
                        s,
                        "{{\"kind\": \"gray_node\", \"at_secs\": {at_secs}, \"node\": {node}, \"secs\": {secs}, \"disk_factor\": {disk_factor}, \"nic_factor\": {nic_factor}}}"
                    );
                }
            }
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parse a plan from the JSON produced by [`FaultPlan::to_json`] (or
    /// written by hand). Knob fields fall back to their defaults when
    /// absent; unknown keys and malformed events are rejected with a
    /// descriptive error so `dare-sim --fault-plan` can surface them.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj("fault plan")?;
        let mut plan = FaultPlan::default();
        for (key, val) in obj {
            match key.as_str() {
                "version" => {
                    let ver = val.as_u64("version")?;
                    if ver != 1 {
                        return Err(format!("unsupported fault-plan version {ver}"));
                    }
                }
                "detect_heartbeats" => plan.detect_heartbeats = val.as_u32("detect_heartbeats")?,
                "max_task_attempts" => plan.max_task_attempts = val.as_u32("max_task_attempts")?,
                "retry_backoff_secs" => {
                    plan.retry_backoff_secs = val.as_u64("retry_backoff_secs")?;
                }
                "max_recovery_streams" => {
                    plan.max_recovery_streams = val.as_u64("max_recovery_streams")? as usize;
                }
                "events" => {
                    let arr = val.as_arr("events")?;
                    plan.events = arr
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            parse_event(e).map_err(|m| format!("events[{i}]: {m}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown fault-plan key \"{other}\"")),
            }
        }
        Ok(plan)
    }
}

/// Parse one event object; `kind` selects the variant and the remaining
/// keys must exactly match that variant's fields.
fn parse_event(v: &json::Json) -> Result<FaultEvent, String> {
    let obj = v.as_obj("event")?;
    let mut kind: Option<&str> = None;
    let mut fields: Vec<(&str, &json::Json)> = Vec::new();
    for (k, val) in obj {
        if k == "kind" {
            kind = Some(val.as_str("kind")?);
        } else {
            fields.push((k.as_str(), val));
        }
    }
    let kind = kind.ok_or("event is missing \"kind\"")?;
    fn take<'a>(
        kind: &str,
        fields: &[(&str, &'a json::Json)],
        name: &str,
    ) -> Result<&'a json::Json, String> {
        fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{kind} event is missing \"{name}\""))
    }
    let allow = |fields: &[(&str, &json::Json)], names: &[&str]| -> Result<(), String> {
        for (k, _) in fields {
            if !names.contains(k) {
                return Err(format!("{kind} event has unknown key \"{k}\""));
            }
        }
        Ok(())
    };
    match kind {
        "kill" => {
            allow(&fields, &["at_secs", "node"])?;
            Ok(FaultEvent::Kill {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                node: take(kind, &fields, "node")?.as_u32("node")?,
            })
        }
        "crash" => {
            allow(&fields, &["at_secs", "node", "down_secs"])?;
            Ok(FaultEvent::Crash {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                node: take(kind, &fields, "node")?.as_u32("node")?,
                down_secs: take(kind, &fields, "down_secs")?.as_u64("down_secs")?,
            })
        }
        "rack_outage" => {
            allow(&fields, &["at_secs", "rack", "down_secs"])?;
            Ok(FaultEvent::RackOutage {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                rack: take(kind, &fields, "rack")?.as_u32("rack")?,
                down_secs: take(kind, &fields, "down_secs")?.as_u64("down_secs")?,
            })
        }
        "slowdown" => {
            allow(&fields, &["at_secs", "node", "factor", "duration_secs"])?;
            let duration_secs = match fields.iter().find(|(k, _)| *k == "duration_secs") {
                Some((_, v)) => Some(v.as_u64("duration_secs")?),
                None => None,
            };
            Ok(FaultEvent::Slowdown {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                node: take(kind, &fields, "node")?.as_u32("node")?,
                factor: take(kind, &fields, "factor")?.as_f64("factor")?,
                duration_secs,
            })
        }
        "corrupt_replica" => {
            allow(&fields, &["at_secs", "node", "block"])?;
            Ok(FaultEvent::CorruptReplica {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                node: take(kind, &fields, "node")?.as_u32("node")?,
                block: take(kind, &fields, "block")?.as_u64("block")?,
            })
        }
        "partition" => {
            allow(&fields, &["at_secs", "racks_a", "racks_b", "heal_secs"])?;
            fn racks(
                kind: &str,
                fields: &[(&str, &json::Json)],
                name: &str,
            ) -> Result<Vec<u32>, String> {
                take(kind, fields, name)?
                    .as_arr(name)?
                    .iter()
                    .map(|v| v.as_u32(name))
                    .collect()
            }
            Ok(FaultEvent::Partition {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                racks_a: racks(kind, &fields, "racks_a")?,
                racks_b: racks(kind, &fields, "racks_b")?,
                heal_secs: take(kind, &fields, "heal_secs")?.as_u64("heal_secs")?,
            })
        }
        "gray_node" => {
            allow(&fields, &["at_secs", "node", "secs", "disk_factor", "nic_factor"])?;
            Ok(FaultEvent::GrayNode {
                at_secs: take(kind, &fields, "at_secs")?.as_u64("at_secs")?,
                node: take(kind, &fields, "node")?.as_u32("node")?,
                secs: take(kind, &fields, "secs")?.as_u64("secs")?,
                disk_factor: take(kind, &fields, "disk_factor")?.as_f64("disk_factor")?,
                nic_factor: take(kind, &fields, "nic_factor")?.as_f64("nic_factor")?,
            })
        }
        other => Err(format!("unknown event kind \"{other}\"")),
    }
}

/// A minimal hand-rolled JSON reader — the workspace deliberately has no
/// serde dependency. Supports exactly what fault-plan files need:
/// objects, arrays, strings (with basic escapes), numbers, booleans and
/// null, with byte-offset error reporting.
mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as f64; integer-ness checked at use sites).
        Num(f64),
        /// String literal.
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, in source key order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
            match self {
                Json::Obj(o) => Ok(o),
                _ => Err(format!("{what} must be a JSON object")),
            }
        }

        pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
            match self {
                Json::Arr(a) => Ok(a),
                _ => Err(format!("{what} must be a JSON array")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Json::Str(s) => Ok(s),
                _ => Err(format!("{what} must be a string")),
            }
        }

        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Json::Num(n) => Ok(*n),
                _ => Err(format!("{what} must be a number")),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                    Ok(*n as u64)
                }
                _ => Err(format!("{what} must be a non-negative integer")),
            }
        }

        pub fn as_u32(&self, what: &str) -> Result<u32, String> {
            let v = self.as_u64(what)?;
            u32::try_from(v).map_err(|_| format!("{what} must fit in 32 bits"))
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> String {
            format!("invalid JSON at byte {}: {msg}", self.i)
        }

        fn skip_ws(&mut self) {
            while let Some(&c) = self.s.get(self.i) {
                if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", c as char)))
            }
        }

        fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(self.err(&format!("expected \"{word}\"")))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.lit("true", Json::Bool(true)),
                Some(b'f') => self.lit("false", Json::Bool(false)),
                Some(b'n') => self.lit("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                let val = self.value()?;
                if out.iter().any(|(k, _)| *k == key) {
                    return Err(self.err(&format!("duplicate key \"{key}\"")));
                }
                out.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                self.skip_ws();
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        out.push(match esc {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            _ => return Err(self.err("unsupported string escape")),
                        });
                        self.i += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 passes through untouched.
                        let rest = &self.s[self.i..];
                        let ch_len = match rest[0] {
                            c if c < 0x80 => 1,
                            c if c >= 0xF0 => 4,
                            c if c >= 0xE0 => 3,
                            _ => 2,
                        };
                        let chunk = std::str::from_utf8(&rest[..ch_len.min(rest.len())])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.i += chunk.len();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit()
                    || c == b'-'
                    || c == b'+'
                    || c == b'.'
                    || c == b'e'
                    || c == b'E'
                {
                    self.i += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err(&format!("malformed number \"{text}\"")))
        }
    }
}

/// Pairwise intersection test over inclusive per-node windows. Returns
/// the offending `(node, window_a, window_b)` on the first overlap.
#[allow(clippy::type_complexity)]
fn check_overlap(
    windows: &[(u32, u64, u64)],
) -> Result<(), (u32, (u64, u64), (u64, u64))> {
    for (i, &(n, s, e)) in windows.iter().enumerate() {
        for &(n2, s2, e2) in &windows[i + 1..] {
            if n == n2 && s <= e2 && s2 <= e {
                return Err((n, (s, e), (s2, e2)));
            }
        }
    }
    Ok(())
}

fn overlap_msg(node: u32, a: (u64, u64), b: (u64, u64)) -> String {
    let show = |w: (u64, u64)| {
        if w.1 == u64::MAX {
            format!("[{}s, ∞)", w.0)
        } else {
            format!("[{}s, {}s]", w.0, w.1)
        }
    };
    format!(
        "node {node} has overlapping fault windows {} and {} — \
         epoch ordering would be ambiguous",
        show(a),
        show(b)
    )
}

/// Shape parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fault times are drawn uniformly from `[1, horizon_secs]`.
    pub horizon_secs: u64,
    /// Number of permanent node kills (distinct victims; capped at
    /// `nodes - 1` so the cluster never fully dies).
    pub kills: u32,
    /// Number of transient crash/rejoin events.
    pub crashes: u32,
    /// Mean downtime of transient outages, in seconds (actual downtimes
    /// are uniform on roughly `[1, 2 × mean]`).
    pub mean_down_secs: u64,
    /// Number of rack-level outages.
    pub rack_outages: u32,
    /// Number of slow-node degradation episodes.
    pub stragglers: u32,
    /// Slowdown multiplier applied during a straggler episode.
    pub straggler_factor: f64,
    /// Silent-corruption events per node per simulated hour (HDFS-style
    /// bit-rot). Only consumed by [`FaultPlan::generate_with_blocks`];
    /// `0.0` (the default) draws nothing and keeps the generated plan
    /// identical to the pre-corruption generator.
    pub corruption_rate_per_node_hour: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            horizon_secs: 300,
            kills: 1,
            crashes: 2,
            mean_down_secs: 45,
            rack_outages: 0,
            stragglers: 1,
            straggler_factor: 4.0,
            corruption_rate_per_node_hour: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.validate(10).is_ok());
        assert!(p.validate_racks(1).is_ok());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan {
            events: vec![FaultEvent::Kill { at_secs: 5, node: 10 }],
            ..FaultPlan::default()
        };
        assert!(p.validate(10).is_err(), "out-of-range node");

        p.events = vec![
            FaultEvent::Kill { at_secs: 5, node: 3 },
            FaultEvent::Kill { at_secs: 9, node: 3 },
        ];
        assert!(p.validate(10).is_err(), "duplicate kill");

        p.events = vec![FaultEvent::Crash {
            at_secs: 5,
            node: 3,
            down_secs: 0,
        }];
        assert!(p.validate(10).is_err(), "zero downtime");

        p.events = vec![FaultEvent::Slowdown {
            at_secs: 5,
            node: 3,
            factor: 0.5,
            duration_secs: None,
        }];
        assert!(p.validate(10).is_err(), "speedup factor");

        p.events = vec![FaultEvent::RackOutage {
            at_secs: 5,
            rack: 4,
            down_secs: 10,
        }];
        assert!(p.validate(10).is_ok(), "racks not checked here");
        assert!(p.validate_racks(4).is_err(), "out-of-range rack");
        assert!(p.validate_racks(5).is_ok());

        p.events.clear();
        p.detect_heartbeats = 0;
        assert!(p.validate(10).is_err(), "zero detection timeout");
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let spec = FaultSpec {
            kills: 2,
            crashes: 3,
            rack_outages: 1,
            stragglers: 2,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate(&spec, 19, 4, 42);
        let b = FaultPlan::generate(&spec, 19, 4, 42);
        assert_eq!(a, b, "same inputs must give the same plan");
        assert_eq!(a.events.len(), 8);
        assert!(a.validate(19).is_ok());
        assert!(a.validate_racks(4).is_ok());

        let c = FaultPlan::generate(&spec, 19, 4, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn overlapping_node_windows_are_rejected() {
        // Two crashes of the same node with intersecting windows.
        let mut p = FaultPlan {
            events: vec![
                FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 20 },
                FaultEvent::Crash { at_secs: 25, node: 3, down_secs: 5 },
            ],
            ..FaultPlan::default()
        };
        let err = p.validate(10).unwrap_err();
        assert!(err.contains("overlapping"), "got: {err}");

        // A crash landing exactly on the rejoin second is ambiguous too.
        p.events = vec![
            FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 20 },
            FaultEvent::Crash { at_secs: 30, node: 3, down_secs: 5 },
        ];
        assert!(p.validate(10).is_err(), "rejoin-second collision");

        // Disjoint windows on the same node are fine.
        p.events = vec![
            FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 20 },
            FaultEvent::Crash { at_secs: 31, node: 3, down_secs: 5 },
        ];
        assert!(p.validate(10).is_ok());

        // Overlapping windows on *different* nodes are fine.
        p.events = vec![
            FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 20 },
            FaultEvent::Crash { at_secs: 15, node: 4, down_secs: 20 },
        ];
        assert!(p.validate(10).is_ok());

        // A crash after a permanent kill of the same node can never run.
        p.events = vec![
            FaultEvent::Kill { at_secs: 10, node: 3 },
            FaultEvent::Crash { at_secs: 500, node: 3, down_secs: 5 },
        ];
        let err = p.validate(10).unwrap_err();
        assert!(err.contains("overlapping"), "kill window never closes: {err}");

        // A crash *before* the kill is a legal sequence.
        p.events = vec![
            FaultEvent::Kill { at_secs: 100, node: 3 },
            FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 5 },
        ];
        assert!(p.validate(10).is_ok());

        // Slowdowns and corruption open no availability window.
        p.events = vec![
            FaultEvent::Crash { at_secs: 10, node: 3, down_secs: 20 },
            FaultEvent::Slowdown { at_secs: 15, node: 3, factor: 2.0, duration_secs: None },
            FaultEvent::CorruptReplica { at_secs: 15, node: 3, block: 0 },
        ];
        assert!(p.validate(10).is_ok());
    }

    #[test]
    fn crash_inside_rack_outage_window_is_rejected() {
        use dare_net::Topology;
        // Two racks of 5 nodes: rack 0 = nodes 0-4, rack 1 = nodes 5-9.
        let topo = Topology::explicit(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1], 2);
        let mut p = FaultPlan {
            events: vec![
                FaultEvent::RackOutage { at_secs: 20, rack: 0, down_secs: 30 },
                FaultEvent::Crash { at_secs: 30, node: 2, down_secs: 5 },
            ],
            ..FaultPlan::default()
        };
        assert!(p.validate(10).is_ok(), "node-only validation cannot see racks");
        let err = p.validate_topology(&topo).unwrap_err();
        assert!(err.contains("overlapping"), "got: {err}");

        // Same crash against the *other* rack's nodes is fine.
        p.events[1] = FaultEvent::Crash { at_secs: 30, node: 7, down_secs: 5 };
        assert!(p.validate_topology(&topo).is_ok());

        // Two outages of the same rack overlapping are rejected.
        p.events = vec![
            FaultEvent::RackOutage { at_secs: 20, rack: 0, down_secs: 30 },
            FaultEvent::RackOutage { at_secs: 40, rack: 0, down_secs: 10 },
        ];
        assert!(p.validate_topology(&topo).is_err());

        // Overlapping outages of different racks are fine.
        p.events = vec![
            FaultEvent::RackOutage { at_secs: 20, rack: 0, down_secs: 30 },
            FaultEvent::RackOutage { at_secs: 40, rack: 1, down_secs: 10 },
        ];
        assert!(p.validate_topology(&topo).is_ok());
    }

    #[test]
    fn corruption_generation_is_rate_scaled_and_deterministic() {
        let spec = FaultSpec {
            kills: 0,
            crashes: 0,
            stragglers: 0,
            horizon_secs: 3600,
            corruption_rate_per_node_hour: 0.5,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate_with_blocks(&spec, 20, 2, 100, 42);
        let b = FaultPlan::generate_with_blocks(&spec, 20, 2, 100, 42);
        assert_eq!(a, b, "same inputs must give the same plan");
        // E[count] = 0.5 × 20 nodes × 1 h = 10.
        let n = a.events.len();
        assert!((9..=11).contains(&n), "expected ~10 corruptions, got {n}");
        for ev in &a.events {
            match *ev {
                FaultEvent::CorruptReplica { at_secs, node, block } => {
                    assert!((1..=3600).contains(&at_secs));
                    assert!(node < 20);
                    assert!(block < 100);
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(a.validate(20).is_ok());
        assert!(a.validate_blocks(100).is_ok());
        assert!(a.validate_blocks(50).is_err(), "out-of-range block");

        // Zero rate (or zero blocks) must reproduce the legacy stream.
        let legacy_spec = FaultSpec { corruption_rate_per_node_hour: 0.0, ..spec };
        assert_eq!(
            FaultPlan::generate_with_blocks(&legacy_spec, 20, 2, 100, 42),
            FaultPlan::generate(&legacy_spec, 20, 2, 42),
        );
        let full = FaultSpec { kills: 1, crashes: 2, stragglers: 1, ..legacy_spec };
        assert_eq!(
            FaultPlan::generate_with_blocks(&full, 20, 2, 100, 42),
            FaultPlan::generate(&full, 20, 2, 42),
            "corruption draws come last, so earlier events are unchanged"
        );
    }

    #[test]
    fn json_roundtrip_preserves_every_event_kind() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Kill { at_secs: 5, node: 3 },
                FaultEvent::Crash { at_secs: 40, node: 7, down_secs: 12 },
                FaultEvent::RackOutage { at_secs: 90, rack: 1, down_secs: 30 },
                FaultEvent::Slowdown {
                    at_secs: 60,
                    node: 2,
                    factor: 2.5,
                    duration_secs: Some(45),
                },
                FaultEvent::Slowdown {
                    at_secs: 70,
                    node: 4,
                    factor: 4.0,
                    duration_secs: None,
                },
                FaultEvent::CorruptReplica { at_secs: 33, node: 6, block: 17 },
            ],
            detect_heartbeats: 7,
            max_task_attempts: 3,
            retry_backoff_secs: 9,
            max_recovery_streams: 2,
        };
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("own output parses");
        assert_eq!(back, plan);

        // An empty plan round-trips too.
        let empty = FaultPlan::default();
        assert_eq!(FaultPlan::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_parse_surfaces_descriptive_errors() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(FaultPlan::from_json("[1, 2]").unwrap_err().contains("object"));
        let err = FaultPlan::from_json("{\"evnets\": []}").unwrap_err();
        assert!(err.contains("unknown fault-plan key"), "typo caught: {err}");
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"kill\", \"at_secs\": 5}]}",
        )
        .unwrap_err();
        assert!(err.contains("missing \"node\""), "got: {err}");
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"melt\", \"at_secs\": 5}]}",
        )
        .unwrap_err();
        assert!(err.contains("unknown event kind"), "got: {err}");
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"kill\", \"at_secs\": 5, \"node\": -1}]}",
        )
        .unwrap_err();
        assert!(err.contains("non-negative integer"), "got: {err}");
        let err = FaultPlan::from_json("{\"version\": 9}").unwrap_err();
        assert!(err.contains("version"), "got: {err}");
        let err = FaultPlan::from_json("{\"events\": [{\"kind\": \"kill\", \"at_secs\": 5, \"node\": 1, \"down_secs\": 3}]}").unwrap_err();
        assert!(err.contains("unknown key"), "got: {err}");
        assert!(FaultPlan::from_json("{} trailing").is_err());
    }

    #[test]
    fn partition_and_gray_round_trip_through_json() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Partition {
                    at_secs: 40,
                    racks_a: vec![0, 2],
                    racks_b: vec![1, 3],
                    heal_secs: 35,
                },
                FaultEvent::GrayNode {
                    at_secs: 12,
                    node: 5,
                    secs: 90,
                    disk_factor: 8.0,
                    nic_factor: 2.5,
                },
            ],
            ..FaultPlan::default()
        };
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("own output parses");
        assert_eq!(back, plan);
        assert!(plan.validate(10).is_ok());
        assert!(plan.validate_racks(4).is_ok());
        assert!(plan.validate_racks(3).is_err(), "rack 3 out of range");

        // Required fields are enforced per variant.
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"partition\", \"at_secs\": 5, \"racks_a\": [0], \"heal_secs\": 9}]}",
        )
        .unwrap_err();
        assert!(err.contains("missing \"racks_b\""), "got: {err}");
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"gray_node\", \"at_secs\": 5, \"node\": 1, \"secs\": 9, \"disk_factor\": 2}]}",
        )
        .unwrap_err();
        assert!(err.contains("missing \"nic_factor\""), "got: {err}");
        let err = FaultPlan::from_json(
            "{\"events\": [{\"kind\": \"partition\", \"at_secs\": 5, \"racks_a\": [0], \"racks_b\": 1, \"heal_secs\": 9}]}",
        )
        .unwrap_err();
        assert!(err.contains("array"), "got: {err}");
    }

    #[test]
    fn self_partition_and_overlapping_gray_are_rejected() {
        // A rack on both sides of the cut is a self-partition.
        let mut p = FaultPlan {
            events: vec![FaultEvent::Partition {
                at_secs: 10,
                racks_a: vec![0, 1],
                racks_b: vec![1, 2],
                heal_secs: 30,
            }],
            ..FaultPlan::default()
        };
        let err = p.validate(10).unwrap_err();
        assert!(err.contains("both sides"), "got: {err}");

        // Empty sides and zero heal are degenerate.
        p.events = vec![FaultEvent::Partition {
            at_secs: 10,
            racks_a: vec![],
            racks_b: vec![1],
            heal_secs: 30,
        }];
        assert!(p.validate(10).is_err(), "empty side A");
        p.events = vec![FaultEvent::Partition {
            at_secs: 10,
            racks_a: vec![0],
            racks_b: vec![1],
            heal_secs: 0,
        }];
        assert!(p.validate(10).is_err(), "zero heal");

        // Overlapping gray episodes on one node race their restores.
        p.events = vec![
            FaultEvent::GrayNode { at_secs: 10, node: 3, secs: 20, disk_factor: 4.0, nic_factor: 1.0 },
            FaultEvent::GrayNode { at_secs: 25, node: 3, secs: 10, disk_factor: 2.0, nic_factor: 2.0 },
        ];
        let err = p.validate(10).unwrap_err();
        assert!(err.contains("gray"), "got: {err}");

        // The same two episodes on different nodes are fine, as is a gray
        // episode overlapping a crash window (the node is down anyway).
        p.events = vec![
            FaultEvent::GrayNode { at_secs: 10, node: 3, secs: 20, disk_factor: 4.0, nic_factor: 1.0 },
            FaultEvent::GrayNode { at_secs: 25, node: 4, secs: 10, disk_factor: 2.0, nic_factor: 2.0 },
            FaultEvent::Crash { at_secs: 15, node: 3, down_secs: 5 },
        ];
        assert!(p.validate(10).is_ok());

        // Sub-unity factors are speedups, not degradations.
        p.events = vec![FaultEvent::GrayNode {
            at_secs: 10,
            node: 3,
            secs: 20,
            disk_factor: 0.5,
            nic_factor: 1.0,
        }];
        assert!(p.validate(10).is_err(), "disk speedup rejected");
    }

    #[test]
    fn partition_windows_expand_against_topology() {
        use dare_net::Topology;
        // Two racks of 5 nodes: rack 0 = nodes 0-4, rack 1 = nodes 5-9.
        let topo = Topology::explicit(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1], 2);
        let mut p = FaultPlan {
            events: vec![
                FaultEvent::Partition { at_secs: 20, racks_a: vec![0], racks_b: vec![1], heal_secs: 30 },
                FaultEvent::Crash { at_secs: 30, node: 7, down_secs: 5 },
            ],
            ..FaultPlan::default()
        };
        assert!(p.validate(10).is_ok(), "node-only validation cannot see racks");
        let err = p.validate_topology(&topo).unwrap_err();
        assert!(err.contains("overlapping"), "crash inside the cut: {err}");

        // The same crash on the master's side is fine — side A stays up.
        p.events[1] = FaultEvent::Crash { at_secs: 30, node: 2, down_secs: 5 };
        assert!(p.validate_topology(&topo).is_ok());
    }

    #[test]
    fn generate_kills_distinct_nodes_and_crashes_avoid_them() {
        let spec = FaultSpec {
            kills: 4,
            crashes: 6,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(&spec, 12, 2, 7);
        let mut killed = Vec::new();
        let mut crashed = Vec::new();
        for ev in &p.events {
            match *ev {
                FaultEvent::Kill { node, .. } => killed.push(node),
                FaultEvent::Crash { node, .. } => crashed.push(node),
                _ => {}
            }
        }
        let mut k = killed.clone();
        k.sort_unstable();
        k.dedup();
        assert_eq!(k.len(), killed.len(), "kills must be distinct");
        for c in &crashed {
            assert!(!killed.contains(c), "crash targets a killed node");
        }
    }
}

//! Structured simulation errors.
//!
//! The engine's failure paths used to `unwrap()`/`panic!` with bare
//! messages; [`SimError`] replaces those with a typed error naming the
//! event that broke, so a malformed fault plan produces a diagnosable
//! report instead of a backtrace. Internal-consistency checks that can
//! only fire on engine bugs stay as `debug_assert!`s.

use dare_simcore::SimTime;

/// A simulation that could not run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The event queue drained before every job finished — usually a
    /// fault plan that killed the resources a job needed without any
    /// path to retry or fail it.
    Stalled {
        /// Simulation time when the queue drained.
        now: SimTime,
        /// Jobs that reached a terminal state (completed or failed).
        finished: usize,
        /// Jobs the run was supposed to terminate.
        total: usize,
        /// Map tasks still queued when the simulation stalled.
        pending: usize,
    },
    /// A network flow completed that no subsystem (fetch, proactive
    /// replication, recovery) had a record of.
    OrphanFlow {
        /// Simulation time of the completion.
        now: SimTime,
        /// The flow's identifier within the flow simulator.
        flow: u64,
    },
    /// A runtime invariant check (enabled via
    /// `SimConfig::check_invariants`) failed.
    InvariantViolation(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                now,
                finished,
                total,
                pending,
            } => write!(
                f,
                "event queue drained at t={:.1}s with {finished}/{total} jobs terminal \
                 ({pending} map tasks still pending)",
                now.as_secs_f64()
            ),
            SimError::OrphanFlow { now, flow } => write!(
                f,
                "flow {flow} completed at t={:.1}s with no fetch/proactive/recovery record",
                now.as_secs_f64()
            ),
            SimError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Stalled {
            now: SimTime::from_secs(12),
            finished: 3,
            total: 5,
            pending: 7,
        };
        let s = e.to_string();
        assert!(s.contains("3/5"), "{s}");
        assert!(s.contains("12.0"), "{s}");
        let o = SimError::OrphanFlow {
            now: SimTime::from_secs(1),
            flow: 99,
        }
        .to_string();
        assert!(o.contains("99"), "{o}");
    }
}

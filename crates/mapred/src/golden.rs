//! Canonical traced scenarios for the golden-trace regression harness.
//!
//! The golden suite pins the *behavior* of the whole simulator: each
//! scenario is a small SWIM workload run under a fixed seed with tracing
//! on, and its JSONL export is compared byte-for-byte against a checked-in
//! file under `tests/golden/`. The integration tests
//! (`tests/golden_trace.rs`), the `trace-smoke` bench experiment, and the
//! CI trace step all run exactly these scenarios, so a behavioral drift in
//! the engine shows up as the same golden diff everywhere at once.
//!
//! Refreshing after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use crate::config::{SchedulerKind, SimConfig};
use crate::SimResult;
use dare_core::PolicyKind;
use dare_workload::swim::{synthesize, SwimParams};
use dare_workload::Workload;

/// Seed every golden scenario runs under.
pub const GOLDEN_SEED: u64 = 0xDA7E;

/// The small SWIM workload all golden scenarios replay: a dozen wl1-style
/// jobs over a dozen files — big enough to exercise remote fetches,
/// delay-scheduling skips and dynamic replication, small enough that a
/// golden file stays reviewable in a diff.
pub fn golden_workload() -> Workload {
    synthesize("golden", &golden_params(), GOLDEN_SEED)
}

/// SWIM parameters behind [`golden_workload`], exposed so replicated
/// experiments can resynthesize the same shape under derived seeds.
pub fn golden_params() -> SwimParams {
    SwimParams {
        jobs: 12,
        files: 12,
        ..SwimParams::wl1()
    }
}

/// The skew-heavy companion workload for the attribution experiment: a
/// "yahoo"-style profile where a few hot files dominate the access
/// stream (steeper Zipf exponent, short hot-set phases), so dynamic
/// replication has real headroom to convert critical-path remote
/// fetches into local reads. Same pinned seed as the golden matrix.
pub fn yahoo_workload() -> Workload {
    synthesize("yahoo", &yahoo_params(), GOLDEN_SEED)
}

/// SWIM parameters behind [`yahoo_workload`].
pub fn yahoo_params() -> SwimParams {
    SwimParams {
        jobs: 40,
        files: 16,
        zipf_s: 1.6,
        phase_jobs: 20,
        focal_per_phase: 2,
        focal_prob: 0.9,
        ..SwimParams::wl1()
    }
}

/// The scenario matrix: FIFO/Fair × vanilla/DARE-LRU, all on
/// [`golden_workload`] under [`GOLDEN_SEED`] with tracing enabled.
pub fn golden_scenarios() -> Vec<(&'static str, SimConfig)> {
    let combos = [
        ("fifo-vanilla", SchedulerKind::Fifo, PolicyKind::Vanilla),
        ("fifo-dare-lru", SchedulerKind::Fifo, PolicyKind::GreedyLru),
        (
            "fair-vanilla",
            SchedulerKind::fair_default(),
            PolicyKind::Vanilla,
        ),
        (
            "fair-dare-lru",
            SchedulerKind::fair_default(),
            PolicyKind::GreedyLru,
        ),
    ];
    combos
        .into_iter()
        .map(|(name, sched, policy)| {
            let mut cfg = SimConfig::cct(policy, sched, GOLDEN_SEED);
            // The golden dataset is tiny; at the paper's 0.2 budget a
            // node's budget would be under one block, so use a full-share
            // budget to make the LRU policy actually replicate.
            cfg.budget_frac = 1.0;
            cfg.record_trace = true;
            (name, cfg)
        })
        .collect()
}

/// Run one golden scenario by name. Panics on an unknown name (the golden
/// harness enumerates [`golden_scenarios`], so a typo is a bug).
pub fn run_golden(name: &str) -> SimResult {
    let cfg = golden_scenarios()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown golden scenario {name:?}"))
        .1;
    crate::run(cfg, &golden_workload())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_produces_a_trace() {
        for (name, cfg) in golden_scenarios() {
            assert!(cfg.record_trace, "{name} must trace");
            assert_eq!(cfg.seed, GOLDEN_SEED);
        }
        let r = run_golden("fifo-dare-lru");
        let trace = r.trace.expect("golden runs record traces");
        assert!(trace.counters().tasks_launched > 0);
        assert!(
            trace.counters().replicas_committed > 0,
            "the dare-lru scenario must exercise dynamic replication"
        );
    }
}

//! Scarlett — the proactive, centralized, epoch-based replication baseline
//! (Ananthanarayanan et al., EuroSys 2011), which the DARE paper contrasts
//! itself against in Section VI:
//!
//! > "While Scarlett uses a proactive replication scheme that periodically
//! > replicates files based on predicted popularity, we proposed a reactive
//! > approach that is able to adapt to popularity changes at smaller time
//! > scales."
//!
//! This module implements the comparison point so the claim is measurable:
//!
//! * the name node counts file accesses over each **epoch**;
//! * at every epoch boundary it computes a desired extra-replica count per
//!   file (one extra replica per `accesses_per_replica` observed accesses,
//!   capped), *proactively* pushes the missing replicas over the network
//!   (unlike DARE, this consumes real bandwidth — tracked), and ages out
//!   replicas of files that cooled down;
//! * placement targets are the nodes with the least dynamic-replica bytes,
//!   mirroring Scarlett's load-smoothing goal, subject to the same per-node
//!   budget DARE gets.
//!
//! The `ablation scarlett` experiment runs this head-to-head with DARE on
//! stable and drifting workloads: with epochs shorter than the workload's
//! hot-set rotation Scarlett tracks well (at a network cost); with longer
//! epochs it lags — the paper's "smaller time scales" argument.

use dare_dfs::{BlockId, FileId};
use dare_simcore::SimDuration;

/// Configuration of the proactive baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScarlettConfig {
    /// Rearrangement period (Scarlett's evaluation used minutes-scale).
    pub epoch: SimDuration,
    /// One desired extra replica per this many accesses in the last epoch.
    pub accesses_per_replica: f64,
    /// Cap on extra replicas per block.
    pub max_extra_replicas: u32,
}

impl Default for ScarlettConfig {
    fn default() -> Self {
        ScarlettConfig {
            epoch: SimDuration::from_secs(60),
            accesses_per_replica: 4.0,
            max_extra_replicas: 16,
        }
    }
}

/// Per-run state of the epoch replicator.
#[derive(Debug)]
pub struct ScarlettState {
    /// Active configuration.
    pub cfg: ScarlettConfig,
    /// Accesses per file during the current epoch.
    pub epoch_accesses: Vec<u64>,
    /// Desired extra replicas per file, from the last completed epoch.
    pub desired_extra: Vec<u32>,
    /// Bytes pushed over the network for proactive replication (the cost
    /// DARE avoids by construction).
    pub bytes_moved: u64,
    /// Proactive replicas created.
    pub replicas_created: u64,
    /// Replicas aged out at epoch boundaries.
    pub evictions: u64,
}

impl ScarlettState {
    /// Fresh state over `files` files.
    pub fn new(cfg: ScarlettConfig, files: usize) -> Self {
        ScarlettState {
            cfg,
            epoch_accesses: vec![0; files],
            desired_extra: vec![0; files],
            bytes_moved: 0,
            replicas_created: 0,
            evictions: 0,
        }
    }

    /// Record that a scheduled map task read a block of `file`.
    pub fn record_access(&mut self, file: FileId) {
        self.epoch_accesses[file.idx()] += 1;
    }

    /// Close the epoch: recompute desired extra replica counts from the
    /// observed accesses and reset the counters. Returns the files whose
    /// desire changed (ascending id) for the engine to reconcile.
    pub fn close_epoch(&mut self) -> Vec<FileId> {
        let mut changed = Vec::new();
        for (i, count) in self.epoch_accesses.iter_mut().enumerate() {
            let desired = ((*count as f64 / self.cfg.accesses_per_replica).ceil() as u32)
                .min(self.cfg.max_extra_replicas);
            if desired != self.desired_extra[i] {
                self.desired_extra[i] = desired;
                changed.push(FileId(i as u32));
            }
            *count = 0;
        }
        changed
    }

    /// Desired extra replicas of a file right now.
    pub fn desired_for(&self, file: FileId) -> u32 {
        self.desired_extra[file.idx()]
    }
}

/// A proactive replication transfer in flight.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveTransfer {
    /// Block being pushed.
    pub block: BlockId,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desired_counts_follow_accesses() {
        let mut s = ScarlettState::new(
            ScarlettConfig {
                epoch: SimDuration::from_secs(60),
                accesses_per_replica: 4.0,
                max_extra_replicas: 5,
            },
            3,
        );
        for _ in 0..10 {
            s.record_access(FileId(0));
        }
        s.record_access(FileId(1));
        let changed = s.close_epoch();
        assert_eq!(changed, vec![FileId(0), FileId(1)]);
        assert_eq!(s.desired_for(FileId(0)), 3, "ceil(10/4)");
        assert_eq!(s.desired_for(FileId(1)), 1);
        assert_eq!(s.desired_for(FileId(2)), 0);

        // A quiet epoch ages the desires back down.
        let changed = s.close_epoch();
        assert_eq!(changed, vec![FileId(0), FileId(1)]);
        assert_eq!(s.desired_for(FileId(0)), 0);
    }

    #[test]
    fn desired_counts_are_capped() {
        let mut s = ScarlettState::new(
            ScarlettConfig {
                epoch: SimDuration::from_secs(60),
                accesses_per_replica: 1.0,
                max_extra_replicas: 4,
            },
            1,
        );
        for _ in 0..100 {
            s.record_access(FileId(0));
        }
        s.close_epoch();
        assert_eq!(s.desired_for(FileId(0)), 4);
    }

    #[test]
    fn unchanged_desires_are_not_reported() {
        let mut s = ScarlettState::new(ScarlettConfig::default(), 2);
        for _ in 0..8 {
            s.record_access(FileId(0));
        }
        s.close_epoch();
        // Same traffic again: desire stays 2, so nothing is "changed".
        for _ in 0..8 {
            s.record_access(FileId(0));
        }
        let changed = s.close_epoch();
        assert!(changed.is_empty());
    }
}

//! The discrete-event simulation engine.

use crate::config::{SchedulerKind, SimConfig};
use crate::result::{ProactiveStats, SimResult, TaskRecord};
use crate::scarlett::{ProactiveTransfer, ScarlettState};
use dare_core::{build_policy, PolicyCtx, ReplicationDecision, ReplicationPolicy};
use dare_dfs::{BlockId, DefaultPlacement, Dfs};
use dare_net::flow::{FlowId, FlowSim};
use dare_net::{NodeId, MB};
use dare_sched::{
    locality::classify, FairScheduler, FifoScheduler, JobId, JobQueue, Locality, LocationLookup,
    PendingTask, Scheduler, TaskId,
};
use dare_simcore::{DetRng, EventQueue, SimDuration, SimTime};
use dare_workload::Workload;
use std::collections::HashMap;

/// Borrow-based location lookup over the DFS's merged visible-location
/// lists. `locations` returns the name node's maintained slice, so the
/// scheduler's probe path performs no allocation.
pub struct DfsLookup<'a>(pub &'a Dfs);

impl LocationLookup for DfsLookup<'_> {
    fn locations(&self, block: BlockId) -> &[NodeId] {
        self.0.visible_locations(block)
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Job `idx` (into the workload) is submitted.
    JobArrival(u32),
    /// Node heartbeat; `periodic` heartbeats reschedule themselves,
    /// out-of-band ones (sent on task completion) do not.
    Heartbeat { node: u32, periodic: bool },
    /// A node-local input read finished.
    LocalReadDone {
        /// Node running the task.
        node: u32,
        /// Job index.
        job: u32,
        /// Task index within the job.
        task: u32,
        /// Attempt id (stale events from failed attempts are dropped).
        attempt: u32,
    },
    /// Poll the flow simulator for completed fetches.
    NetCheck,
    /// A map task's compute phase finished.
    ComputeDone {
        /// Node running the task.
        node: u32,
        /// Job index.
        job: u32,
        /// Task index within the job.
        task: u32,
        /// Attempt id (stale events from failed attempts are dropped).
        attempt: u32,
    },
    /// One reduce task of a job finished on a node.
    ReduceDone { node: u32, job: u32 },
    /// Epoch boundary of the proactive (Scarlett) replicator.
    Epoch,
    /// Injected failure of a node.
    NodeFail(u32),
    /// Injected degradation of a node: its work slows by the factor.
    NodeDegrade(u32, f64),
}

/// Mutable per-job simulation state.
#[derive(Debug, Clone)]
struct JobState {
    arrival: SimTime,
    blocks: Vec<BlockId>,
    map_compute: SimDuration,
    output_bytes: u64,
    reduces: u32,
    reduces_done: u32,
    /// Current attempt id per task; bumped when a failure aborts a run.
    attempts: Vec<u32>,
    /// Locality class of each task's latest attempt (for failure rollback).
    task_class: Vec<Locality>,
    /// Task committed (first finishing attempt wins).
    done: Vec<bool>,
    /// Start time of each task's most recent attempt.
    started_at: Vec<SimTime>,
    /// Live attempts per task (1 normally, 2 with a speculative backup).
    live_attempts: Vec<u8>,
    /// Conservative lower bound on the earliest `started_at` among live
    /// single-attempt tasks. Lets `try_speculate` reject a job without
    /// scanning its tasks when even the oldest attempt is under threshold.
    oldest_live_start: SimTime,
    /// Sum of committed map durations, seconds (speculation threshold).
    completed_secs: f64,
    maps_done: u32,
    node_local: u32,
    rack_local: u32,
    remote: u32,
    dedicated: SimDuration,
}

/// A remote input fetch in flight.
#[derive(Debug, Clone, Copy)]
struct Fetch {
    node: u32,
    src: u32,
    job: u32,
    task: u32,
    attempt: u32,
    /// The node's policy asked to keep the bytes as a dynamic replica.
    replicate: bool,
    /// Path latency to add before compute starts.
    latency: SimDuration,
}

/// The MapReduce cluster simulator. Construct with [`Engine::new`], run
/// with [`Engine::run`].
pub struct Engine {
    cfg: SimConfig,
    workload_name: String,
    dfs: Dfs,
    flows: FlowSim,
    scheduler: Box<dyn Scheduler>,
    queue: JobQueue,
    policies: Vec<Box<dyn ReplicationPolicy>>,
    policy_rngs: Vec<DetRng>,
    jobs: Vec<JobState>,
    events: EventQueue<Ev>,
    now: SimTime,
    free_map_slots: Vec<u32>,
    free_reduce_slots: Vec<u32>,
    /// Reduce tasks awaiting a slot: (job, per-reducer duration), FIFO.
    pending_reduces: std::collections::VecDeque<(u32, SimDuration)>,
    active_local_reads: Vec<u32>,
    disk_caps_mbps: Vec<f64>,
    fetches: HashMap<FlowId, Fetch>,
    next_netcheck: Option<SimTime>,
    jitter_rng: DetRng,
    fetch_rng: DetRng,
    rtt_rng: DetRng,
    /// Promoted (block, node) pairs copied out of the name node each
    /// heartbeat, so the borrow of `dfs` ends before the queue is told.
    promoted_scratch: Vec<(BlockId, NodeId)>,
    /// Reusable candidate buffers for `pick_source`.
    src_same_rack: Vec<NodeId>,
    src_any: Vec<NodeId>,
    file_popularity: Vec<f64>,
    finished: usize,
    outcomes: Vec<dare_metrics::JobOutcome>,
    cv_before: f64,
    remote_bytes_fetched: u64,
    /// Per-node dynamic-replica budget in bytes (shared by DARE and the
    /// proactive baseline).
    budget_bytes: u64,
    /// Bytes of in-flight proactive transfers per node (budget reservation).
    inflight_proactive: Vec<u64>,
    scarlett: Option<ScarlettState>,
    proactive_flows: HashMap<FlowId, ProactiveTransfer>,
    /// True once the node has been failed; it stops heartbeating and its
    /// tasks are re-executed elsewhere.
    dead: Vec<bool>,
    /// Map tasks currently running (or fetching) per node.
    running_on: Vec<Vec<(u32, u32)>>,
    /// Per-node slowdown factor (1.0 = healthy; limplock injection).
    slow_factor: Vec<f64>,
    /// Map-task attempts that had to be re-executed due to failures.
    pub reexecuted_tasks: u64,
    /// Per-attempt timeline (only populated with `record_timeline`).
    timeline: Vec<TaskRecord>,
    timeline_idx: HashMap<(u32, u32, u32), usize>,
    /// Speculative backup attempts launched.
    pub speculative_launches: u64,
    /// Races resolved while a duplicate attempt was still running (the
    /// committed completion "won"; the duplicate's work is discarded).
    pub speculative_wins: u64,
}

impl Engine {
    /// Build a simulator for `cfg` over `workload`: instantiates topology,
    /// bandwidth draws, the DFS (with the dataset ingested at t = 0), the
    /// per-node DARE policies, and the job-arrival events.
    pub fn new(cfg: SimConfig, workload: &Workload) -> Self {
        cfg.validate().expect("invalid simulation config");
        workload.validate().expect("invalid workload");
        let root = DetRng::new(cfg.seed);

        let mut topo_rng = root.substream("topology");
        let topo = cfg.profile.build_topology(&mut topo_rng);
        let n = topo.nodes() as usize;

        let mut cap_rng = root.substream("capacities");
        let disk_caps_mbps = cfg.profile.sample_disk_capacities(&mut cap_rng);
        let nic_caps = cfg.profile.sample_nic_capacities(&mut cap_rng);
        let flows = FlowSim::new(nic_caps, cfg.profile.oversub);

        let mut dfs = Dfs::new(cfg.dfs.clone(), topo);

        // Ingest the dataset at t = 0.
        let mut ingest_rng = root.substream("ingest");
        let mut file_ids = Vec::with_capacity(workload.files.len());
        for f in &workload.files {
            let fid = dfs.create_file(
                SimTime::ZERO,
                f.name.clone(),
                f.size_bytes,
                None,
                &DefaultPlacement,
                &mut ingest_rng,
                false,
            );
            file_ids.push(fid);
        }

        // Access popularity per file (fraction of jobs reading it) — the
        // blockPopularity of the Fig. 11 metric.
        let mut file_popularity = vec![0.0f64; workload.files.len()];
        for j in &workload.jobs {
            file_popularity[j.file] += 1.0 / workload.jobs.len() as f64;
        }

        // Per-node dynamic-replica budget.
        let budget_bytes = ((dfs.total_primary_bytes() as f64 / n as f64) * cfg.budget_frac) as u64;
        let policies: Vec<Box<dyn ReplicationPolicy>> = (0..n)
            .map(|_| build_policy(cfg.policy, budget_bytes))
            .collect();
        let policy_rngs: Vec<DetRng> = (0..n)
            .map(|i| root.substream_idx("policy-node", i as u64))
            .collect();

        let scheduler: Box<dyn Scheduler> = if cfg.naive_scan {
            // Retained O(tasks × replicas) reference implementations; used
            // by the engine-level differential test and the benchmarks.
            match cfg.scheduler {
                SchedulerKind::Fifo => Box::new(dare_sched::oracle::NaiveFifoScheduler::new()),
                SchedulerKind::Fair(fc) => {
                    Box::new(dare_sched::oracle::NaiveFairScheduler::with_config(fc))
                }
                SchedulerKind::Capacity(q) => {
                    Box::new(dare_sched::oracle::NaiveCapacityScheduler::new(q))
                }
            }
        } else {
            match cfg.scheduler {
                SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
                SchedulerKind::Fair(fc) => Box::new(FairScheduler::with_config(fc)),
                SchedulerKind::Capacity(q) => Box::new(dare_sched::CapacityScheduler::new(q)),
            }
        };

        // Job states with analytic dedicated-cluster runtimes.
        let total_slots = cfg.profile.total_map_slots().max(1);
        let total_reduce_slots = (cfg.profile.nodes * cfg.profile.reduce_slots_per_node).max(1);
        let disk_mean = cfg.profile.disk.mean();
        let net_mean = cfg.profile.network.mean();
        let jobs: Vec<JobState> = workload
            .jobs
            .iter()
            .map(|j| {
                let blocks = dfs.namenode().file(file_ids[j.file]).blocks.clone();
                let maps = blocks.len() as u64;
                let waves = maps.div_ceil(total_slots as u64);
                let read_secs = cfg.dfs.block_size as f64 / (disk_mean * MB as f64);
                let per_map = SimDuration::from_secs_f64(read_secs) + j.map_compute;
                let per_reducer = reduce_duration(
                    j.output_bytes,
                    j.reduces,
                    j.map_compute,
                    net_mean,
                    disk_mean,
                    cfg.dfs.replication_factor,
                );
                let reduce_waves = (j.reduces as u64).div_ceil(total_reduce_slots as u64);
                let dedicated =
                    per_map.mul_f64(waves as f64) + per_reducer.mul_f64(reduce_waves as f64);
                JobState {
                    arrival: j.arrival,
                    attempts: vec![0; blocks.len()],
                    task_class: vec![Locality::Remote; blocks.len()],
                    done: vec![false; blocks.len()],
                    started_at: vec![SimTime::ZERO; blocks.len()],
                    live_attempts: vec![0; blocks.len()],
                    oldest_live_start: SimTime::ZERO,
                    completed_secs: 0.0,
                    blocks,
                    map_compute: j.map_compute,
                    output_bytes: j.output_bytes,
                    reduces: j.reduces,
                    reduces_done: 0,
                    maps_done: 0,
                    node_local: 0,
                    rack_local: 0,
                    remote: 0,
                    dedicated,
                }
            })
            .collect();

        let mut events = EventQueue::with_capacity(jobs.len() * 4 + n * 2);
        for (i, j) in jobs.iter().enumerate() {
            events.push(j.arrival, Ev::JobArrival(i as u32));
        }
        // Staggered periodic heartbeats.
        let hb = cfg.heartbeat;
        for i in 0..n {
            let offset = SimDuration::from_micros(hb.as_micros() * i as u64 / n as u64);
            events.push(
                SimTime::ZERO + offset,
                Ev::Heartbeat {
                    node: i as u32,
                    periodic: true,
                },
            );
        }

        let cv_before = popularity_cv_of(&dfs, &file_popularity);
        let slots = cfg.profile.map_slots_per_node;

        let scarlett = cfg.scarlett.map(|sc| {
            events.push(SimTime::ZERO + sc.epoch, Ev::Epoch);
            ScarlettState::new(sc, workload.files.len())
        });
        for &(secs, node) in &cfg.failures {
            assert!((node as usize) < n, "failure of unknown node {node}");
            events.push(SimTime::from_secs(secs), Ev::NodeFail(node));
        }
        for &(secs, node, factor) in &cfg.degradations {
            assert!((node as usize) < n, "degradation of unknown node {node}");
            events.push(SimTime::from_secs(secs), Ev::NodeDegrade(node, factor));
        }

        Engine {
            workload_name: workload.name.clone(),
            dfs,
            flows,
            scheduler,
            queue: JobQueue::new(),
            policies,
            policy_rngs,
            jobs,
            events,
            now: SimTime::ZERO,
            free_map_slots: vec![slots; n],
            free_reduce_slots: vec![cfg.profile.reduce_slots_per_node; n],
            pending_reduces: std::collections::VecDeque::new(),
            active_local_reads: vec![0; n],
            disk_caps_mbps,
            fetches: HashMap::new(),
            next_netcheck: None,
            jitter_rng: root.substream("task-jitter"),
            fetch_rng: root.substream("fetch-pick"),
            rtt_rng: root.substream("rtt"),
            promoted_scratch: Vec::new(),
            src_same_rack: Vec::new(),
            src_any: Vec::new(),
            file_popularity,
            finished: 0,
            outcomes: Vec::new(),
            cv_before,
            remote_bytes_fetched: 0,
            budget_bytes,
            inflight_proactive: vec![0; n],
            scarlett,
            proactive_flows: HashMap::new(),
            dead: vec![false; n],
            running_on: vec![Vec::new(); n],
            slow_factor: vec![1.0; n],
            timeline: Vec::new(),
            timeline_idx: HashMap::new(),
            reexecuted_tasks: 0,
            speculative_launches: 0,
            speculative_wins: 0,
            cfg,
        }
    }

    /// Run to completion and summarize.
    pub fn run(mut self) -> SimResult {
        let total_jobs = self.jobs.len();
        while self.finished < total_jobs {
            let (t, ev) = self
                .events
                .pop()
                .expect("event queue drained before all jobs finished");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
        }
        self.finish()
    }

    /// Route one event to its handler (also used by white-box tests).
    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::JobArrival(j) => self.on_job_arrival(j),
            Ev::Heartbeat { node, periodic } => self.on_heartbeat(node, periodic),
            Ev::LocalReadDone {
                node,
                job,
                task,
                attempt,
            } => self.on_local_read_done(node, job, task, attempt),
            Ev::NetCheck => self.on_net_check(),
            Ev::ComputeDone {
                node,
                job,
                task,
                attempt,
            } => self.on_compute_done(node, job, task, attempt),
            Ev::ReduceDone { node, job } => self.on_reduce_done(node, job),
            Ev::Epoch => self.on_epoch(),
            Ev::NodeFail(node) => self.on_node_fail(node),
            Ev::NodeDegrade(node, factor) => {
                self.slow_factor[node as usize] = factor.max(1.0);
            }
        }
    }

    fn on_job_arrival(&mut self, j: u32) {
        let job = &self.jobs[j as usize];
        let tasks: Vec<PendingTask> = job
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: b,
            })
            .collect();
        let arrival = job.arrival;
        self.queue.add_job(
            JobId(j),
            arrival,
            tasks,
            &DfsLookup(&self.dfs),
            self.dfs.topology(),
        );
    }

    fn on_heartbeat(&mut self, node: u32, periodic: bool) {
        if self.dead[node as usize] {
            return;
        }
        // Dynamic replicas become visible in a batch; mirror every
        // promotion into the queue's locality index.
        self.promoted_scratch.clear();
        self.promoted_scratch
            .extend_from_slice(self.dfs.process_reports(self.now));
        for i in 0..self.promoted_scratch.len() {
            let (b, n) = self.promoted_scratch[i];
            self.queue.note_replica_added(b, n, self.dfs.topology());
        }
        // Fill every free slot the scheduler can use.
        while self.free_map_slots[node as usize] > 0 {
            let assignment = {
                let lookup = DfsLookup(&self.dfs);
                self.scheduler.pick_map(
                    &mut self.queue,
                    NodeId(node),
                    &lookup,
                    self.dfs.topology(),
                    self.now,
                )
            };
            match assignment {
                Some(a) => self.launch_map(node, a.job.0, a.task.0, a.block, false),
                None => {
                    // No regular work: consider a speculative backup for a
                    // straggling attempt before giving the slot up.
                    if !self.try_speculate(node) {
                        break;
                    }
                }
            }
        }
        self.fill_reduce_slots();
        if periodic {
            // Heartbeat intervals drift a few percent in real clusters; the
            // jitter also prevents the simulator from phase-locking job
            // arrivals to a fixed node rotation.
            let interval = self
                .cfg
                .heartbeat
                .mul_f64(self.jitter_rng.uniform_range(0.95, 1.05));
            self.events.push(
                self.now + interval,
                Ev::Heartbeat {
                    node,
                    periodic: true,
                },
            );
        }
    }

    /// Start a map task on `node` reading `block`. `speculative` marks a
    /// backup attempt: it skips locality accounting (the original attempt
    /// already recorded the task) but still drives the DARE policy, since
    /// a backup is a genuinely scheduled map task.
    fn launch_map(&mut self, node: u32, job: u32, task: u32, block: BlockId, speculative: bool) {
        let node_id = NodeId(node);
        {
            let js = &mut self.jobs[job as usize];
            js.started_at[task as usize] = self.now;
            js.live_attempts[task as usize] += 1;
        }
        let attempt = self.jobs[job as usize].attempts[task as usize];
        self.running_on[node as usize].push((job, task));
        let present = self.dfs.is_physically_present(node_id, block);
        if self.cfg.record_timeline {
            self.timeline_idx
                .insert((job, task, attempt), self.timeline.len());
            self.timeline.push(TaskRecord {
                job,
                task,
                attempt,
                node,
                speculative,
                local_read: present,
                launched: self.now,
                read_done: None,
                finished: None,
            });
        }
        let bytes = self.dfs.namenode().block_size(block);
        let file = self.dfs.namenode().file_of(block);
        if let Some(sc) = self.scarlett.as_mut() {
            sc.record_access(file);
        }

        // Metrics: actual read locality (an unreported local replica counts
        // as node-local because the bytes are read from local disk).
        // Backup attempts don't re-count their task.
        if !speculative {
            let lookup = DfsLookup(&self.dfs);
            let level = if present {
                Locality::NodeLocal
            } else {
                classify(block, node_id, &lookup, self.dfs.topology())
            };
            let js = &mut self.jobs[job as usize];
            js.task_class[task as usize] = level;
            match level {
                Locality::NodeLocal => js.node_local += 1,
                Locality::RackLocal => js.rack_local += 1,
                Locality::Remote => js.remote += 1,
            }
        }

        // DARE hook: the node's policy sees every scheduled map task.
        let decision = self.policies[node as usize].on_map_task(PolicyCtx {
            block,
            file,
            block_bytes: bytes,
            is_local: present,
            rng: &mut self.policy_rngs[node as usize],
        });
        let mut replicate = false;
        if let ReplicationDecision::Replicate { evict } = decision {
            for v in evict {
                if self.dfs.evict_dynamic(node_id, v) == Some(true) {
                    self.queue
                        .note_replica_removed(v, node_id, self.dfs.topology());
                }
            }
            replicate = true;
        }

        self.free_map_slots[node as usize] -= 1;

        if present {
            // Local read: disk capacity shared among concurrent readers.
            let readers = self.active_local_reads[node as usize] + 1;
            self.active_local_reads[node as usize] = readers;
            let share = self.disk_caps_mbps[node as usize]
                / readers as f64
                / self.slow_factor[node as usize];
            let dur = SimDuration::from_secs_f64(bytes as f64 / (share * MB as f64));
            self.events.push(
                self.now + dur,
                Ev::LocalReadDone {
                    node,
                    job,
                    task,
                    attempt,
                },
            );
        } else {
            // Remote fetch through the flow simulator.
            let src = self.pick_source(block, node_id);
            let cross = self.dfs.topology().crosses_racks(src, node_id);
            let hops = self.dfs.topology().base_hops(src, node_id).max(1);
            let latency = SimDuration::from_secs_f64(
                self.cfg.profile.rtt.sample_secs(&mut self.rtt_rng) * hops as f64 / 2.0,
            );
            let fid = self.flows.start(self.now, src, node_id, bytes, cross);
            self.fetches.insert(
                fid,
                Fetch {
                    node,
                    src: src.0,
                    job,
                    task,
                    attempt,
                    replicate,
                    latency,
                },
            );
            self.remote_bytes_fetched += bytes;
            self.schedule_netcheck();
        }
    }

    /// Choose the replica a remote reader fetches from: same-rack replicas
    /// preferred, ties broken uniformly at random.
    fn pick_source(&mut self, block: BlockId, reader: NodeId) -> NodeId {
        let locs = self.dfs.visible_locations(block);
        assert!(!locs.is_empty(), "block {block} has no replicas");
        let topo = self.dfs.topology();
        // One pass over the replica list into reusable buffers, preserving
        // the list's order so the rng draw is unchanged.
        self.src_same_rack.clear();
        self.src_any.clear();
        for &l in locs {
            if l == reader {
                continue;
            }
            self.src_any.push(l);
            if topo.same_rack(l, reader) {
                self.src_same_rack.push(l);
            }
        }
        let pool: &[NodeId] = if self.src_same_rack.is_empty() {
            &self.src_any
        } else {
            &self.src_same_rack
        };
        if pool.is_empty() {
            // Every replica is on the reader itself (can happen transiently
            // after failures) — read "remotely" from itself at NIC speed.
            return reader;
        }
        pool[self.fetch_rng.index(pool.len())]
    }

    fn schedule_netcheck(&mut self) {
        if let Some((t, _)) = self.flows.next_completion() {
            let t = t.max(self.now);
            if self.next_netcheck.is_none_or(|cur| t < cur) {
                self.events.push(t, Ev::NetCheck);
                self.next_netcheck = Some(t);
            }
        }
    }

    fn on_net_check(&mut self) {
        self.next_netcheck = None;
        let done = self.flows.collect_completed(self.now);
        for fid in done {
            if let Some(pt) = self.proactive_flows.remove(&fid) {
                self.on_proactive_done(pt);
                continue;
            }
            let f = self
                .fetches
                .remove(&fid)
                .expect("completed flow has a fetch record");
            let js = &self.jobs[f.job as usize];
            let block = js.blocks[f.task as usize];
            if f.replicate {
                // The bytes are here; keep them (DNA_DYNREPL). On failure
                // (e.g. the block arrived by another path meanwhile) roll
                // back the policy's bookkeeping.
                if !self.dfs.insert_dynamic(self.now, NodeId(f.node), block) {
                    self.policies[f.node as usize].forget(block);
                }
            }
            if self.jobs[f.job as usize].attempts[f.task as usize] != f.attempt {
                continue; // attempt aborted by a failure while fetching
            }
            self.mark_timeline(f.job, f.task, f.attempt, true, false);
            let compute = self.task_compute(f.job, f.node);
            self.events.push(
                self.now + f.latency + compute,
                Ev::ComputeDone {
                    node: f.node,
                    job: f.job,
                    task: f.task,
                    attempt: f.attempt,
                },
            );
        }
        self.schedule_netcheck();
    }

    fn on_local_read_done(&mut self, node: u32, job: u32, task: u32, attempt: u32) {
        if self.jobs[job as usize].attempts[task as usize] != attempt {
            return; // attempt aborted by a failure mid-read
        }
        debug_assert!(self.active_local_reads[node as usize] > 0);
        self.active_local_reads[node as usize] -= 1;
        self.mark_timeline(job, task, attempt, true, false);
        let compute = self.task_compute(job, node);
        self.events.push(
            self.now + compute,
            Ev::ComputeDone {
                node,
                job,
                task,
                attempt,
            },
        );
    }

    /// Record a timeline milestone for an attempt (no-op unless tracing).
    fn mark_timeline(&mut self, job: u32, task: u32, attempt: u32, read: bool, finish: bool) {
        if !self.cfg.record_timeline {
            return;
        }
        if let Some(&i) = self.timeline_idx.get(&(job, task, attempt)) {
            if read {
                self.timeline[i].read_done = Some(self.now);
            }
            if finish {
                self.timeline[i].finished = Some(self.now);
            }
        }
    }

    /// Per-task compute time: the job's base compute ±10 % jitter, scaled
    /// by the running node's health factor.
    fn task_compute(&mut self, job: u32, node: u32) -> SimDuration {
        let base = self.jobs[job as usize].map_compute;
        base.mul_f64(self.jitter_rng.uniform_range(0.9, 1.1) * self.slow_factor[node as usize])
    }

    /// Try to launch one speculative backup attempt on `node`. Returns true
    /// when a backup was launched (the caller may offer the slot again).
    fn try_speculate(&mut self, node: u32) -> bool {
        let Some(spec) = self.cfg.speculation else {
            return false;
        };
        if self.dead[node as usize] || self.free_map_slots[node as usize] == 0 {
            return false;
        }
        // A job is speculation-eligible when all its maps are handed out
        // but some attempts straggle well past the job's average. The
        // common case (nothing straggling anywhere) must stay O(jobs):
        // `oldest_live_start` lower-bounds every live attempt's start, so
        // a job whose oldest attempt is under threshold needs no scan.
        for ji in 0..self.queue.len() {
            let (job, eligible) = {
                let j = &self.queue.jobs()[ji];
                (j.id.0, j.pending().is_empty() && j.running_maps() > 0)
            };
            if !eligible {
                continue;
            }
            let js = &self.jobs[job as usize];
            if js.maps_done == 0 {
                continue; // no baseline duration yet
            }
            let avg = js.completed_secs / js.maps_done as f64;
            let threshold = (avg * spec.slowdown_factor).max(spec.min_elapsed_secs);
            if self
                .now
                .saturating_since(js.oldest_live_start)
                .as_secs_f64()
                <= threshold
            {
                continue; // even the oldest attempt is not straggling
            }
            let straggler = (0..js.blocks.len()).find(|&t| {
                !js.done[t]
                    && js.live_attempts[t] == 1
                    && self.now.saturating_since(js.started_at[t]).as_secs_f64() > threshold
                    // never co-locate the backup with the straggler
                    && !self.running_on[node as usize].contains(&(job, t as u32))
            });
            if let Some(task) = straggler {
                let block = js.blocks[task];
                self.speculative_launches += 1;
                self.launch_map(node, job, task as u32, block, true);
                return true;
            }
            // Scan came up empty: tighten the bound to the true minimum so
            // the next offer can reject cheaply. A task can only become
            // live via a fresh launch (start >= now), which keeps the
            // bound conservative.
            let min_start = (0..js.blocks.len())
                .filter(|&t| !js.done[t] && js.live_attempts[t] == 1)
                .map(|t| js.started_at[t])
                .min()
                .unwrap_or(self.now);
            self.jobs[job as usize].oldest_live_start = min_start;
        }
        false
    }

    fn on_compute_done(&mut self, node: u32, job: u32, task: u32, attempt: u32) {
        if self.jobs[job as usize].attempts[task as usize] != attempt {
            return; // stale completion from an aborted attempt
        }
        self.running_on[node as usize].retain(|&(j, t)| !(j == job && t == task));
        self.free_map_slots[node as usize] += 1;
        self.mark_timeline(job, task, attempt, false, true);
        {
            let js = &mut self.jobs[job as usize];
            js.live_attempts[task as usize] = js.live_attempts[task as usize].saturating_sub(1);
            if js.done[task as usize] {
                // The other attempt already committed; this one is wasted
                // work (Hadoop would have killed it).
                return;
            }
            js.done[task as usize] = true;
            if js.live_attempts[task as usize] > 0 {
                // The straggler is still running somewhere: the backup (or
                // the original) just won the race.
                self.speculative_wins += 1;
            }
        }
        self.queue.on_map_complete(JobId(job));
        let js = &mut self.jobs[job as usize];
        js.completed_secs += self
            .now
            .saturating_since(js.started_at[task as usize])
            .as_secs_f64();
        js.maps_done += 1;
        if js.maps_done as usize == js.blocks.len() {
            let per_reducer = reduce_duration(
                js.output_bytes,
                js.reduces,
                js.map_compute,
                self.cfg.profile.network.mean(),
                self.cfg.profile.disk.mean(),
                self.cfg.dfs.replication_factor,
            );
            self.queue.retire_job(JobId(job));
            for _ in 0..js.reduces {
                self.pending_reduces.push_back((job, per_reducer));
            }
            self.fill_reduce_slots();
        }
        // Out-of-band heartbeat: the freed slot is offered immediately.
        self.events.push(
            self.now,
            Ev::Heartbeat {
                node,
                periodic: false,
            },
        );
    }

    /// Hand pending reduce tasks to free reduce slots (FIFO, any node —
    /// reducers pull from every map output, so placement has no locality).
    fn fill_reduce_slots(&mut self) {
        while let Some(&(job, dur)) = self.pending_reduces.front() {
            let Some(node) = (0..self.free_reduce_slots.len())
                .find(|&i| !self.dead[i] && self.free_reduce_slots[i] > 0)
            else {
                return;
            };
            self.pending_reduces.pop_front();
            self.free_reduce_slots[node] -= 1;
            self.events.push(
                self.now + dur,
                Ev::ReduceDone {
                    node: node as u32,
                    job,
                },
            );
        }
    }

    fn on_reduce_done(&mut self, node: u32, job: u32) {
        if !self.dead[node as usize] {
            self.free_reduce_slots[node as usize] += 1;
        }
        let js = &mut self.jobs[job as usize];
        js.reduces_done += 1;
        if js.reduces_done == js.reduces {
            let js = &self.jobs[job as usize];
            self.outcomes.push(dare_metrics::JobOutcome {
                id: job,
                arrival: js.arrival,
                completed: self.now,
                maps: js.blocks.len() as u32,
                node_local: js.node_local,
                rack_local: js.rack_local,
                remote: js.remote,
                dedicated: js.dedicated,
            });
            self.finished += 1;
        }
        self.fill_reduce_slots();
    }

    /// Injected node failure: the node stops heartbeating forever, its
    /// running/fetching map attempts are aborted and re-queued, transfers
    /// touching it are cancelled, and the name node re-replicates the
    /// blocks it held (dynamic replicas participate like primaries).
    fn on_node_fail(&mut self, node: u32) {
        if self.dead[node as usize] {
            return;
        }
        self.dead[node as usize] = true;
        self.free_map_slots[node as usize] = 0;
        self.free_reduce_slots[node as usize] = 0;
        self.active_local_reads[node as usize] = 0;

        // Abort every attempt running (or fetching) on the dead node.
        let victims: Vec<(u32, u32)> = std::mem::take(&mut self.running_on[node as usize]);
        for (job, task) in victims {
            self.abort_attempt(job, task);
        }

        // Fetches *sourced* from the dead node but running elsewhere: abort
        // those attempts too (their stream broke mid-read); the freed slot
        // comes back to the running node.
        let broken: Vec<FlowId> = self
            .fetches
            .iter()
            .filter(|(_, f)| f.src == node)
            .map(|(&fid, _)| fid)
            .collect();
        for fid in broken {
            let f = self.fetches[&fid];
            self.abort_attempt(f.job, f.task);
        }

        // Proactive pushes to or from the dead node are cancelled; the next
        // epoch reconciles.
        let dead_pro: Vec<FlowId> = self
            .proactive_flows
            .iter()
            .filter(|(_, t)| t.dst == node)
            .map(|(&fid, _)| fid)
            .collect();
        for fid in dead_pro {
            let t = self.proactive_flows.remove(&fid).expect("listed");
            let bytes = self.dfs.namenode().block_size(t.block);
            self.inflight_proactive[t.dst as usize] =
                self.inflight_proactive[t.dst as usize].saturating_sub(bytes);
            self.flows.cancel(self.now, fid);
        }

        // Name-node failure handling with instant re-replication onto live
        // nodes (the repair traffic is off the experiment's critical path).
        let live: Vec<NodeId> = (0..self.dead.len() as u32)
            .filter(|&i| !self.dead[i as usize])
            .map(NodeId)
            .collect();
        assert!(!live.is_empty(), "entire cluster failed");
        self.dfs.fail_node(NodeId(node), &live, &mut self.fetch_rng);
        // Replica sets changed wholesale (lost copies, instant repairs):
        // rebuild the queue's locality index against the new merged lists.
        self.queue
            .rebuild_index(&DfsLookup(&self.dfs), self.dfs.topology());
    }

    /// Abort one task attempt (node failure): bump its attempt id so
    /// in-flight events go stale, cancel its fetch flow if any, give the
    /// slot back to a surviving runner, and re-queue the task.
    fn abort_attempt(&mut self, job: u32, task: u32) {
        let js = &mut self.jobs[job as usize];
        js.attempts[task as usize] += 1;
        let block = js.blocks[task as usize];
        // Undo the aborted attempt's locality accounting; the re-execution
        // records its own class when it launches.
        match js.task_class[task as usize] {
            Locality::NodeLocal => js.node_local -= 1,
            Locality::RackLocal => js.rack_local -= 1,
            Locality::Remote => js.remote -= 1,
        }
        self.reexecuted_tasks += 1;

        // Cancel every in-flight fetch of this task (the original and any
        // speculative duplicate), refunding surviving runners' slots.
        let fetch_fids: Vec<FlowId> = self
            .fetches
            .iter()
            .filter(|(_, f)| f.job == job && f.task == task)
            .map(|(&fid, _)| fid)
            .collect();
        for fid in fetch_fids {
            let f = self.fetches.remove(&fid).expect("listed fetch");
            self.flows.cancel(self.now, fid);
            self.running_on[f.node as usize].retain(|&(j, t)| !(j == job && t == task));
            if !self.dead[f.node as usize] {
                self.free_map_slots[f.node as usize] += 1;
            }
        }
        // Attempts in their read/compute phase: clear every registry entry.
        for n in 0..self.running_on.len() {
            let before = self.running_on[n].len();
            self.running_on[n].retain(|&(j, t)| !(j == job && t == task));
            let removed = before - self.running_on[n].len();
            if removed > 0 && !self.dead[n] {
                self.free_map_slots[n] += removed as u32;
            }
        }
        self.jobs[job as usize].live_attempts[task as usize] = 0;

        // Put the task back in the scheduler's pending set (and the
        // locality index, under the block's current locations).
        self.queue.requeue_task(
            JobId(job),
            TaskId(task),
            block,
            &DfsLookup(&self.dfs),
            self.dfs.topology(),
        );
    }

    /// Epoch boundary of the proactive baseline: re-derive desired extra
    /// replica counts from the epoch's accesses, push missing replicas over
    /// the network, and age out replicas of files that cooled down.
    fn on_epoch(&mut self) {
        let Some(mut sc) = self.scarlett.take() else {
            return;
        };
        sc.close_epoch();
        let num_files = self.dfs.namenode().num_files();
        for fi in 0..num_files {
            let file = dare_dfs::FileId(fi as u32);
            let desired = sc.desired_for(file);
            let blocks = self.dfs.namenode().file(file).blocks.clone();
            for b in blocks {
                self.reconcile_block(&mut sc, b, desired);
            }
        }
        self.events.push(self.now + sc.cfg.epoch, Ev::Epoch);
        self.scarlett = Some(sc);
        self.schedule_netcheck();
    }

    /// Bring one block's dynamic-replica count toward `desired`: push
    /// missing copies to the least-loaded nodes with budget headroom, or
    /// evict surplus copies from the most-loaded ones.
    fn reconcile_block(&mut self, sc: &mut ScarlettState, b: BlockId, desired: u32) {
        let bytes = self.dfs.namenode().block_size(b);
        let n = self.dfs.datanodes().len();
        let holders: Vec<u32> = (0..n as u32)
            .filter(|&i| self.dfs.datanode(NodeId(i)).holds_dynamic(b))
            .collect();
        let inflight_for_block = self
            .proactive_flows
            .values()
            .filter(|t| t.block == b)
            .count() as u32;
        let current = holders.len() as u32 + inflight_for_block;

        if current < desired {
            // Targets: nodes without the block, enough budget headroom,
            // least dynamic bytes first (load smoothing).
            let mut candidates: Vec<(u64, u32)> = (0..n as u32)
                .filter(|&i| {
                    let node = NodeId(i);
                    !self.dfs.is_physically_present(node, b)
                        && self.dfs.datanode(node).dynamic_bytes()
                            + self.inflight_proactive[i as usize]
                            + bytes
                            <= self.budget_bytes
                })
                .map(|i| {
                    (
                        self.dfs.datanode(NodeId(i)).dynamic_bytes()
                            + self.inflight_proactive[i as usize],
                        i,
                    )
                })
                .collect();
            candidates.sort_unstable();
            for &(_, dst) in candidates.iter().take((desired - current) as usize) {
                let src = self.pick_source(b, NodeId(dst));
                let cross = self.dfs.topology().crosses_racks(src, NodeId(dst));
                let fid = self.flows.start(self.now, src, NodeId(dst), bytes, cross);
                self.proactive_flows
                    .insert(fid, ProactiveTransfer { block: b, dst });
                self.inflight_proactive[dst as usize] += bytes;
                sc.bytes_moved += bytes;
            }
        } else if current > desired {
            // Age out surplus replicas from the most-loaded holders.
            let mut by_load: Vec<(u64, u32)> = holders
                .iter()
                .map(|&i| (self.dfs.datanode(NodeId(i)).dynamic_bytes(), i))
                .collect();
            by_load.sort_unstable_by(|a, b| b.cmp(a));
            let surplus = (holders.len() as u32).saturating_sub(desired) as usize;
            for &(_, node) in by_load.iter().take(surplus) {
                if let Some(visible) = self.dfs.evict_dynamic(NodeId(node), b) {
                    sc.evictions += 1;
                    if visible {
                        self.queue
                            .note_replica_removed(b, NodeId(node), self.dfs.topology());
                    }
                }
            }
        }
    }

    /// A proactive push finished: commit the replica.
    fn on_proactive_done(&mut self, pt: ProactiveTransfer) {
        let bytes = self.dfs.namenode().block_size(pt.block);
        self.inflight_proactive[pt.dst as usize] =
            self.inflight_proactive[pt.dst as usize].saturating_sub(bytes);
        if self.dfs.insert_dynamic(self.now, NodeId(pt.dst), pt.block) {
            if let Some(sc) = self.scarlett.as_mut() {
                sc.replicas_created += 1;
            }
        }
    }

    fn finish(mut self) -> SimResult {
        self.outcomes.sort_by_key(|o| o.id);
        let run = dare_metrics::summarize(&self.outcomes);
        let mut replicas_created = 0;
        let mut evictions = 0;
        let mut skipped_by_sampling = 0;
        let mut skipped_no_victim = 0;
        for p in &self.policies {
            let s = p.stats();
            replicas_created += s.replicas_created;
            evictions += s.evictions;
            skipped_by_sampling += s.skipped_by_sampling;
            skipped_no_victim += s.skipped_no_victim;
        }
        let cv_after = popularity_cv_of(&self.dfs, &self.file_popularity);
        let proactive = self.scarlett.as_ref().map(|sc| ProactiveStats {
            bytes_moved: sc.bytes_moved,
            replicas_created: sc.replicas_created,
            evictions: sc.evictions,
        });
        let _ = &self.workload_name;
        SimResult {
            blocks_per_job: dare_metrics::blocks_created_per_job(
                replicas_created,
                self.outcomes.len(),
            ),
            run,
            outcomes: self.outcomes,
            replicas_created,
            evictions,
            skipped_by_sampling,
            skipped_no_victim,
            cv_before: self.cv_before,
            cv_after,
            final_dynamic_bytes: self.dfs.total_dynamic_bytes(),
            remote_bytes_fetched: self.remote_bytes_fetched,
            proactive,
            reexecuted_tasks: self.reexecuted_tasks,
            speculative_launches: self.speculative_launches,
            speculative_wins: self.speculative_wins,
            timeline: if self.cfg.record_timeline {
                Some(self.timeline)
            } else {
                None
            },
        }
    }
}

/// Modeled shuffle + reduce duration: each of the `reduces` reducers pulls
/// its share of the job's output over the fabric (at roughly half the mean
/// NIC rate, reflecting the many-to-many shuffle), spends half a map's
/// compute merging it, then commits its partition through an HDFS write
/// pipeline whose steady-state rate is the min of mean disk and NIC rates
/// (see `dare_dfs::pipeline`; the replication chain re-sends the bytes
/// `replication - 1` times through NICs of that rate).
fn reduce_duration(
    output_bytes: u64,
    reduces: u32,
    map_compute: SimDuration,
    net_mean_mbps: f64,
    disk_mean_mbps: f64,
    replication: u32,
) -> SimDuration {
    let per_reducer = output_bytes as f64 / reduces.max(1) as f64;
    let shuffle_secs = per_reducer / (net_mean_mbps * 0.5 * MB as f64);
    // First replica is a local write; each further replica adds a network
    // hop, so the chain rate is min(disk, nic) and hops are pipelined —
    // duration stays bytes/chain_rate regardless of replica count >= 2.
    let chain_rate = if replication <= 1 {
        disk_mean_mbps
    } else {
        disk_mean_mbps.min(net_mean_mbps)
    };
    let write_secs = per_reducer / (chain_rate * MB as f64);
    SimDuration::from_secs_f64(shuffle_secs + write_secs) + map_compute.mul_f64(0.5)
}

/// Fig. 11's uniformity score over the current DFS placement.
fn popularity_cv_of(dfs: &Dfs, file_popularity: &[f64]) -> f64 {
    let per_node: Vec<Vec<(u64, f64)>> = dfs
        .datanodes()
        .iter()
        .map(|dn| {
            dn.all_blocks()
                .into_iter()
                .map(|b| {
                    let meta = dfs.namenode().block(b);
                    (meta.size_bytes, file_popularity[meta.file.idx()])
                })
                .collect()
        })
        .collect();
    dare_metrics::popularity_cv(&per_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_core::PolicyKind;
    use dare_workload::{FileSpec, JobSpec};

    /// A small deterministic workload: `files` files of `blocks` blocks,
    /// `jobs` jobs hammering file 0 mostly (high skew).
    fn tiny_workload(files: usize, blocks: u64, jobs: u32) -> Workload {
        let bs = 128 * MB;
        let file_specs: Vec<FileSpec> = (0..files)
            .map(|i| FileSpec {
                name: format!("f{i}"),
                size_bytes: blocks * bs,
            })
            .collect();
        let job_specs: Vec<JobSpec> = (0..jobs)
            .map(|id| JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64 * 10),
                file: if id % 4 == 0 { (id as usize / 4) % files } else { 0 },
                map_compute: SimDuration::from_secs(20),
                reduces: 1,
                output_bytes: 10 * MB,
            })
            .collect();
        Workload {
            name: "tiny".into(),
            files: file_specs,
            jobs: job_specs,
        }
    }

    fn run_cfg(policy: PolicyKind, sched: SchedulerKind, seed: u64) -> SimResult {
        let mut cfg = SimConfig::cct(policy, sched, seed);
        // The test dataset is tiny (24 blocks over 19 nodes); at the paper's
        // 0.2 budget a node's budget would be smaller than one block, so use
        // a full-share budget to exercise the replication paths.
        cfg.budget_frac = 1.0;
        crate::run(cfg, &tiny_workload(8, 3, 40))
    }

    #[test]
    fn all_jobs_complete_and_metrics_sane() {
        let r = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        assert_eq!(r.run.jobs, 40);
        assert_eq!(r.run.maps, 120);
        assert!((0.0..=1.0).contains(&r.run.locality));
        assert!(r.run.gmtt_secs > 0.0);
        assert!(r.run.mean_slowdown >= 0.99, "slowdown {}", r.run.mean_slowdown);
        assert!(r.run.makespan_secs > 0.0);
        // locality counters per job sum to maps
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
    }

    #[test]
    fn vanilla_creates_no_replicas() {
        let r = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 2);
        assert_eq!(r.replicas_created, 0);
        assert_eq!(r.final_dynamic_bytes, 0);
        assert_eq!(r.blocks_per_job, 0.0);
    }

    #[test]
    fn greedy_replicates_and_improves_locality() {
        let v = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 3);
        let d = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 3);
        assert!(d.replicas_created > 0, "greedy must replicate");
        assert!(
            d.run.locality > v.run.locality + 0.1,
            "DARE {} vs vanilla {}",
            d.run.locality,
            v.run.locality
        );
    }

    #[test]
    fn elephant_trap_replicates_less_than_greedy() {
        let g = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 4);
        let e = run_cfg(
            PolicyKind::ElephantTrap { p: 0.3, threshold: 1 },
            SchedulerKind::Fifo,
            4,
        );
        assert!(e.replicas_created > 0);
        assert!(
            e.replicas_created < g.replicas_created,
            "sampling cuts writes: et={} lru={}",
            e.replicas_created,
            g.replicas_created
        );
    }

    #[test]
    fn fair_scheduler_beats_fifo_locality_on_vanilla() {
        let f = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 5);
        let d = run_cfg(PolicyKind::Vanilla, SchedulerKind::fair_default(), 5);
        assert!(
            d.run.locality > f.run.locality,
            "delay scheduling helps: fair={} fifo={}",
            d.run.locality,
            f.run.locality
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 7);
        let b = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 7);
        assert_eq!(a.run.locality, b.run.locality);
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.replicas_created, b.replicas_created);
        let c = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 8);
        assert!(
            a.run.gmtt_secs != c.run.gmtt_secs || a.replicas_created != c.replicas_created,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn ec2_profile_runs() {
        let cfg = SimConfig::ec2(PolicyKind::elephant_default(), SchedulerKind::Fifo, 9);
        let r = crate::run(cfg, &tiny_workload(8, 3, 20));
        assert_eq!(r.run.jobs, 20);
        assert!((0.0..=1.0).contains(&r.run.locality));
    }

    #[test]
    fn turnaround_improves_with_replication_under_load() {
        // Heavier load so remote-read contention matters.
        let w = tiny_workload(6, 4, 60);
        let v = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 10),
            &w,
        );
        let d = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 10),
            &w,
        );
        assert!(
            d.run.gmtt_secs <= v.run.gmtt_secs * 1.02,
            "replication shouldn't hurt turnaround: dare {} vanilla {}",
            d.run.gmtt_secs,
            v.run.gmtt_secs
        );
    }

    #[test]
    fn node_failures_reexecute_tasks_and_finish_all_jobs() {
        let wl = tiny_workload(8, 3, 40);
        // Fail three nodes while the trace is in full swing.
        let cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 31)
            .with_failures(vec![(40, 2), (90, 7), (150, 11)]);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40, "every job completes despite failures");
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
        assert!((0.0..=1.0).contains(&r.run.locality));
    }

    #[test]
    fn failures_are_deterministic_too() {
        let wl = tiny_workload(8, 3, 30);
        let run = || {
            let cfg = SimConfig::cct(
                PolicyKind::elephant_default(),
                SchedulerKind::fair_default(),
                77,
            )
            .with_failures(vec![(30, 0), (60, 5)]);
            crate::run(cfg, &wl)
        };
        let a = run();
        let b = run();
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.replicas_created, b.replicas_created);
    }

    #[test]
    fn failed_node_serves_no_further_tasks() {
        let wl = tiny_workload(6, 2, 30);
        let cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 13)
            .with_failures(vec![(1, 4)]);
        let mut engine = Engine::new(cfg, &wl);
        let total_jobs = engine.jobs.len();
        while engine.finished < total_jobs {
            let (t, ev) = engine.events.pop().expect("events pending");
            engine.now = t;
            let was_heartbeat = matches!(ev, Ev::Heartbeat { .. });
            engine.dispatch(ev);
            if was_heartbeat && t > SimTime::from_secs(1) {
                assert!(
                    engine.running_on[4].is_empty(),
                    "dead node must not run tasks after failing"
                );
            }
        }
        assert!(engine.reexecuted_tasks <= wl.jobs.len() as u64 * 3);
    }

    #[test]
    fn failure_with_scarlett_stays_consistent() {
        let wl = tiny_workload(8, 3, 40);
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 15)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(30),
                accesses_per_replica: 2.0,
                max_extra_replicas: 8,
            })
            .with_failures(vec![(45, 3), (100, 9)]);
        cfg.budget_frac = 1.0;
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40);
        assert!(r.proactive.expect("scarlett ran").replicas_created > 0);
    }

    #[test]
    fn degraded_node_slows_and_speculation_rescues() {
        let wl = tiny_workload(8, 3, 40);
        // Node 3 limps at 8x from t=10s.
        let degraded = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51)
                .with_degradations(vec![(10, 3, 8.0)]),
            &wl,
        );
        let healthy = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51),
            &wl,
        );
        assert!(
            degraded.run.gmtt_secs > healthy.run.gmtt_secs * 1.02,
            "limplock must hurt: degraded {} healthy {}",
            degraded.run.gmtt_secs,
            healthy.run.gmtt_secs
        );
        // Speculation claws most of it back.
        let rescued = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51)
                .with_degradations(vec![(10, 3, 8.0)])
                .with_speculation(crate::config::SpeculationConfig {
                    slowdown_factor: 1.5,
                    min_elapsed_secs: 3.0,
                }),
            &wl,
        );
        assert!(rescued.speculative_launches > 0);
        assert!(
            rescued.run.gmtt_secs < degraded.run.gmtt_secs,
            "speculation helps: rescued {} degraded {}",
            rescued.run.gmtt_secs,
            degraded.run.gmtt_secs
        );
    }

    #[test]
    fn degradation_rejects_bad_factor() {
        let result = std::panic::catch_unwind(|| {
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1)
                .with_degradations(vec![(10, 0, 0.5)])
        });
        assert!(result.is_err(), "factor < 1 must be rejected");
    }

    #[test]
    fn speculation_launches_backups_on_straggling_cluster() {
        // EC2 profile: per-node disk bandwidth varies 67-358 MB/s, so slow
        // nodes straggle and speculation fires.
        let wl = tiny_workload(8, 4, 40);
        let cfg = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, 42)
            .with_speculation(crate::config::SpeculationConfig {
                slowdown_factor: 1.2,
                min_elapsed_secs: 2.0,
            });
        let mut engine = Engine::new(cfg, &wl);
        let total = engine.jobs.len();
        while engine.finished < total {
            let (t, ev) = engine.events.pop().expect("events pending");
            engine.now = t;
            engine.dispatch(ev);
        }
        assert!(
            engine.speculative_launches > 0,
            "heterogeneous disks must trigger backups"
        );
        // Slots never leak: every node ends with its full slot count.
        for (i, &slots) in engine.free_map_slots.iter().enumerate() {
            assert_eq!(
                slots,
                engine.cfg.profile.map_slots_per_node,
                "node {i} leaked slots"
            );
        }
    }

    #[test]
    fn speculation_does_not_change_job_counts_or_violate_invariants() {
        let wl = tiny_workload(6, 3, 30);
        let base = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 43),
            &wl,
        );
        let spec = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 43)
                .with_speculation(Default::default()),
            &wl,
        );
        assert_eq!(base.run.jobs, spec.run.jobs);
        for o in &spec.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
        // Backups can only help or match turnaround on a deterministic rig.
        assert!(spec.run.gmtt_secs <= base.run.gmtt_secs * 1.10);
    }

    #[test]
    fn speculation_with_failures_is_stable() {
        let wl = tiny_workload(8, 3, 40);
        let cfg = SimConfig::ec2(PolicyKind::elephant_default(), SchedulerKind::fair_default(), 47)
            .with_speculation(Default::default())
            .with_failures(vec![(30, 1), (70, 8), (110, 42)]);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40);
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
    }

    #[test]
    fn timeline_records_every_attempt_with_monotone_milestones() {
        let wl = tiny_workload(8, 3, 30);
        let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 61);
        cfg.record_timeline = true;
        let r = crate::run(cfg, &wl);
        let tl = r.timeline.as_ref().expect("timeline recorded");
        // No failures/speculation: exactly one attempt per map task.
        assert_eq!(tl.len() as u64, r.run.maps);
        for rec in tl {
            assert!(!rec.speculative);
            assert_eq!(rec.attempt, 0);
            let read = rec.read_done.expect("attempt finished its read");
            let fin = rec.finished.expect("attempt completed");
            assert!(rec.launched <= read && read <= fin);
        }
        // Local-read attempts in the timeline match the locality metric.
        let local = tl.iter().filter(|t| t.local_read).count() as u64;
        let metric_local: u64 = r.outcomes.iter().map(|o| o.node_local as u64).sum();
        assert_eq!(local, metric_local);
        // CSV export is well-formed.
        let csv = crate::result::timeline_csv(tl);
        assert_eq!(csv.lines().count(), tl.len() + 1);
        assert!(csv.starts_with("job,task,attempt,node"));
    }

    #[test]
    fn timeline_includes_failed_and_speculative_attempts() {
        let wl = tiny_workload(8, 3, 30);
        let mut cfg = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, 62)
            .with_failures(vec![(25, 5)])
            .with_speculation(crate::config::SpeculationConfig {
                slowdown_factor: 1.2,
                min_elapsed_secs: 2.0,
            });
        cfg.record_timeline = true;
        let r = crate::run(cfg, &wl);
        let tl = r.timeline.as_ref().expect("timeline recorded");
        assert!(
            tl.len() as u64 >= r.run.maps,
            "extra attempts appear in the timeline"
        );
        let aborted = tl.iter().filter(|t| t.finished.is_none()).count() as u64;
        assert!(
            aborted <= r.reexecuted_tasks + r.speculative_launches,
            "unfinished rows only from aborts/races"
        );
        if r.speculative_launches > 0 {
            assert!(tl.iter().any(|t| t.speculative));
        }
        // By default the timeline is absent.
        let plain = crate::run(SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1), &wl);
        assert!(plain.timeline.is_none());
    }

    #[test]
    fn scarlett_replicates_proactively_and_improves_locality() {
        let wl = tiny_workload(8, 3, 40);
        let vanilla = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 21),
            &wl,
        );
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 21)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(30),
                accesses_per_replica: 2.0,
                max_extra_replicas: 12,
            });
        cfg.budget_frac = 1.0;
        let scar = crate::run(cfg, &wl);
        let stats = scar.proactive.expect("scarlett stats present");
        assert!(stats.replicas_created > 0, "proactive replication happened");
        assert!(stats.bytes_moved > 0, "proactive replication costs network");
        assert!(
            scar.run.job_locality > vanilla.run.job_locality,
            "scarlett {} vs vanilla {}",
            scar.run.job_locality,
            vanilla.run.job_locality
        );
        // DARE's counters stay at zero: only the proactive scheme ran.
        assert_eq!(scar.replicas_created, 0);
        assert!(vanilla.proactive.is_none());
    }

    #[test]
    fn scarlett_ages_out_cooled_files() {
        // Hot phase on file 0, then a quiet tail: desired counts fall to
        // zero at the next epoch and the replicas get evicted.
        let bs = 128 * MB;
        let files: Vec<dare_workload::FileSpec> = (0..4)
            .map(|i| dare_workload::FileSpec {
                name: format!("f{i}"),
                size_bytes: 2 * bs,
            })
            .collect();
        let mut jobs: Vec<dare_workload::JobSpec> = (0..30u32)
            .map(|id| dare_workload::JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64 * 3),
                file: 0,
                map_compute: SimDuration::from_secs(5),
                reduces: 1,
                output_bytes: MB,
            })
            .collect();
        // Long-delayed closing job so several quiet epochs elapse.
        jobs.push(dare_workload::JobSpec {
            id: 30,
            arrival: SimTime::from_secs(1200),
            file: 1,
            map_compute: SimDuration::from_secs(5),
            reduces: 1,
            output_bytes: MB,
        });
        let wl = Workload {
            name: "cooling".into(),
            files,
            jobs,
        };
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 5)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(60),
                accesses_per_replica: 2.0,
                max_extra_replicas: 8,
            });
        cfg.budget_frac = 1.0;
        let r = crate::run(cfg, &wl);
        let stats = r.proactive.expect("scarlett stats");
        assert!(stats.replicas_created > 0);
        assert!(
            stats.evictions > 0,
            "cooled file's replicas must be aged out"
        );
        assert!(
            r.final_dynamic_bytes < stats.replicas_created * 2 * bs,
            "not all proactive replicas survive to the end"
        );
    }

    #[test]
    fn cv_after_not_worse_with_dare() {
        // Greedy converges fastest on 40 jobs; the sampled policy needs the
        // full 500-job traces (Fig. 11) to spread the hot file everywhere.
        let r = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 11);
        assert!(r.cv_before > 0.0);
        assert!(
            r.cv_after <= r.cv_before * 1.05,
            "placement uniformity: before {} after {}",
            r.cv_before,
            r.cv_after
        );
    }
}

//! The discrete-event simulation engine.

use crate::config::{SchedulerKind, SimConfig};
use crate::result::{ProactiveStats, SimResult, TaskRecord};
use crate::scarlett::{ProactiveTransfer, ScarlettState};
use dare_core::{build_policy, PolicyCtx, ReplicationDecision, ReplicationPolicy};
use dare_dfs::{BlockId, DefaultPlacement, Dfs};
use dare_net::flow::{FlowId, FlowSim};
use dare_net::{NodeId, MB};
use dare_sched::{
    locality::classify, FairScheduler, FifoScheduler, JobId, JobQueue, Locality, LocationLookup,
    PendingTask, Scheduler, SkipDecision, TaskId,
};
use dare_simcore::{DetRng, EventQueue, FxHashMap, FxHashSet, SimDuration, SimTime};
use dare_telemetry::{JobPhase, JobSample, MetricId, MetricRegistry, NodeSample, Profiler, Subsystem, Telemetry};
use dare_trace::{FlowCtx, FlowKind, Loc, TraceEvent, Tracer};
use dare_workload::Workload;

/// Borrow-based location lookup over the DFS's merged visible-location
/// lists. `locations` returns the name node's maintained slice, so the
/// scheduler's probe path performs no allocation.
pub struct DfsLookup<'a>(pub &'a Dfs);

impl LocationLookup for DfsLookup<'_> {
    fn locations(&self, block: BlockId) -> &[NodeId] {
        self.0.visible_locations(block)
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Job `idx` (into the workload) is submitted.
    JobArrival(u32),
    /// Node heartbeat; `periodic` heartbeats reschedule themselves,
    /// out-of-band ones (sent on task completion) do not. `epoch` stales
    /// periodic chains started before a crash or rejoin.
    Heartbeat { node: u32, periodic: bool, epoch: u32 },
    /// Batched-heartbeat timer (`SimConfig::batched_heartbeats`): one
    /// event per interval drains every live node's heartbeat in node
    /// order, replacing the per-node periodic chains entirely.
    HeartbeatTick,
    /// A node-local input read finished.
    LocalReadDone {
        /// Node running the task.
        node: u32,
        /// Job index.
        job: u32,
        /// Task index within the job.
        task: u32,
        /// Attempt id (stale events from failed attempts are dropped).
        attempt: u32,
    },
    /// Poll the flow simulator for completed fetches.
    NetCheck,
    /// A map task's compute phase finished.
    ComputeDone {
        /// Node running the task.
        node: u32,
        /// Job index.
        job: u32,
        /// Task index within the job.
        task: u32,
        /// Attempt id (stale events from failed attempts are dropped).
        attempt: u32,
    },
    /// One reduce task of a job finished on a node.
    ReduceDone { node: u32, job: u32 },
    /// Epoch boundary of the proactive (Scarlett) replicator.
    Epoch,
    /// Injected crash of a node: it goes silent. `permanent` wipes the
    /// disk (the classic kill); otherwise the node rejoins after
    /// `down_secs`.
    NodeCrash {
        node: u32,
        permanent: bool,
        down_secs: u64,
    },
    /// A transiently crashed node comes back up and sends a block report.
    NodeRejoin(u32),
    /// The missed-heartbeat timeout expired: the JobTracker/NameNode
    /// declare the node dead. Stale if the node's liveness epoch moved on
    /// (it rejoined before the timer fired).
    DeclareDead { node: u32, epoch: u32 },
    /// Retry a task after its backoff delay. Stale if the attempt id
    /// moved on or the job failed meanwhile.
    TaskRetry { job: u32, task: u32, attempt: u32 },
    /// Injected degradation of a node: its work slows by the factor.
    NodeDegrade(u32, f64),
    /// Injected gray failure of a node: disk reads run `disk`× slower
    /// and the NIC delivers `nic`× less bandwidth, but the node keeps
    /// heartbeating. The restore event carries `1.0`/`1.0`.
    NodeGray { node: u32, disk: f64, nic: f64 },
    /// Injected silent corruption of a replica: the bytes rot on disk,
    /// invisible to the master until a read or scrub checksums them.
    CorruptReplica { node: u32, block: u64 },
    /// A background scrub pass starts on a node. Stale if the node's
    /// liveness epoch moved on (the rejoin handler restarts the chain).
    ScrubStart { node: u32, epoch: u32 },
    /// A background scrub pass finished reading the node's disk;
    /// detection happens here, over the replicas corrupt at pass end.
    ScrubDone { node: u32, epoch: u32, pass_bytes: u64 },
}

/// Outcome of one [`Engine::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One event was dispatched; the run is still in progress.
    Progressed,
    /// Every job has reached a terminal state; nothing was dispatched.
    Quiescent,
}

/// Order-insensitive 64-bit digest of one pending event, for the state
/// fingerprint: variant tag plus every payload field. Times inside
/// events (none today) would need now-relative treatment; all current
/// payloads are ids, epochs, and durations.
fn ev_digest(ev: &Ev) -> u64 {
    const P: u64 = 0x9e37_79b9_7f4a_7c15;
    let fold = |tag: u64, fields: &[u64]| {
        let mut h = tag.wrapping_mul(P);
        for &f in fields {
            h = (h.rotate_left(13) ^ f).wrapping_mul(P);
        }
        h
    };
    match *ev {
        Ev::JobArrival(j) => fold(1, &[j as u64]),
        Ev::Heartbeat {
            node,
            periodic,
            epoch,
        } => fold(2, &[node as u64, periodic as u64, epoch as u64]),
        Ev::HeartbeatTick => fold(3, &[]),
        Ev::LocalReadDone {
            node,
            job,
            task,
            attempt,
        } => fold(4, &[node as u64, job as u64, task as u64, attempt as u64]),
        Ev::NetCheck => fold(5, &[]),
        Ev::ComputeDone {
            node,
            job,
            task,
            attempt,
        } => fold(6, &[node as u64, job as u64, task as u64, attempt as u64]),
        Ev::ReduceDone { node, job } => fold(7, &[node as u64, job as u64]),
        Ev::Epoch => fold(8, &[]),
        Ev::NodeCrash {
            node,
            permanent,
            down_secs,
        } => fold(9, &[node as u64, permanent as u64, down_secs]),
        Ev::NodeRejoin(n) => fold(10, &[n as u64]),
        Ev::DeclareDead { node, epoch } => fold(11, &[node as u64, epoch as u64]),
        Ev::TaskRetry { job, task, attempt } => {
            fold(12, &[job as u64, task as u64, attempt as u64])
        }
        Ev::NodeDegrade(n, f) => fold(13, &[n as u64, f.to_bits()]),
        Ev::NodeGray { node, disk, nic } => {
            fold(17, &[node as u64, disk.to_bits(), nic.to_bits()])
        }
        Ev::CorruptReplica { node, block } => fold(14, &[node as u64, block]),
        Ev::ScrubStart { node, epoch } => fold(15, &[node as u64, epoch as u64]),
        Ev::ScrubDone {
            node,
            epoch,
            pass_bytes,
        } => fold(16, &[node as u64, epoch as u64, pass_bytes]),
    }
}

/// A re-replication transfer in flight (recovery traffic shares the flow
/// simulator with map fetches, so repair contends with job I/O).
#[derive(Debug, Clone, Copy)]
struct RecoveryXfer {
    block: BlockId,
    src: u32,
    dst: u32,
    /// Scheduler-visible replica count when the transfer started. The
    /// `rereplication-convergence` invariant asserts this was below the
    /// replication factor: repair traffic must be need-driven.
    visible_at_start: u32,
}

/// What destroyed a block's last physical copy — crash-path losses and
/// corruption-path losses are accounted separately.
#[derive(Debug, Clone, Copy)]
enum LossCause {
    Crash,
    Corruption,
}

/// Mutable per-job simulation state.
#[derive(Debug, Clone)]
struct JobState {
    arrival: SimTime,
    blocks: Vec<BlockId>,
    map_compute: SimDuration,
    output_bytes: u64,
    reduces: u32,
    reduces_done: u32,
    /// Current attempt id per task; bumped when a failure aborts a run.
    attempts: Vec<u32>,
    /// Locality class of each task's latest attempt (for failure rollback).
    task_class: Vec<Locality>,
    /// Task committed (first finishing attempt wins).
    done: Vec<bool>,
    /// Job abandoned after a task exhausted its retry budget.
    failed: bool,
    /// Start time of each task's most recent attempt.
    started_at: Vec<SimTime>,
    /// Live attempts per task (1 normally, 2 with a speculative backup).
    live_attempts: Vec<u8>,
    /// Conservative lower bound on the earliest `started_at` among live
    /// single-attempt tasks. Lets `try_speculate` reject a job without
    /// scanning its tasks when even the oldest attempt is under threshold.
    oldest_live_start: SimTime,
    /// Sum of committed map durations, seconds (speculation threshold).
    completed_secs: f64,
    maps_done: u32,
    node_local: u32,
    rack_local: u32,
    remote: u32,
    dedicated: SimDuration,
}

/// A remote input fetch in flight.
#[derive(Debug, Clone, Copy)]
struct Fetch {
    node: u32,
    src: u32,
    job: u32,
    task: u32,
    attempt: u32,
    /// The node's policy asked to keep the bytes as a dynamic replica.
    replicate: bool,
    /// Path latency to add before compute starts.
    latency: SimDuration,
}

/// The MapReduce cluster simulator. Construct with [`Engine::new`], run
/// with [`Engine::run`].
pub struct Engine {
    cfg: SimConfig,
    workload_name: String,
    dfs: Dfs,
    flows: FlowSim,
    scheduler: Box<dyn Scheduler>,
    queue: JobQueue,
    policies: Vec<Box<dyn ReplicationPolicy>>,
    policy_rngs: Vec<DetRng>,
    jobs: Vec<JobState>,
    events: EventQueue<Ev>,
    now: SimTime,
    free_map_slots: Vec<u32>,
    free_reduce_slots: Vec<u32>,
    /// Nodes with at least one free reduce slot, kept sorted so
    /// `fill_reduce_slots` finds the lowest-index candidate in O(log n)
    /// instead of scanning all nodes (the scan dominated 10k-node runs).
    /// Membership tracks `free_reduce_slots[i] > 0` only; liveness is
    /// re-checked at pick time, exactly like the old linear scan did.
    reduce_free_nodes: std::collections::BTreeSet<u32>,
    /// Reduce tasks awaiting a slot: (job, per-reducer duration), FIFO.
    pending_reduces: std::collections::VecDeque<(u32, SimDuration)>,
    active_local_reads: Vec<u32>,
    disk_caps_mbps: Vec<f64>,
    fetches: FxHashMap<FlowId, Fetch>,
    next_netcheck: Option<SimTime>,
    /// Flows cancelled while the current NetCheck completion batch is
    /// being processed. A completion earlier in the batch can tear down
    /// a flow drained into the *same* batch (job failure aborts a
    /// sibling fetch, quarantine cancels a tainted repair); those fids
    /// are excused from the orphan-flow check. Cleared per batch, always
    /// empty between events.
    batch_cancelled: Vec<u64>,
    jitter_rng: DetRng,
    fetch_rng: DetRng,
    rtt_rng: DetRng,
    /// Promoted (block, node) pairs copied out of the name node each
    /// heartbeat, so the borrow of `dfs` ends before the queue is told.
    promoted_scratch: Vec<(BlockId, NodeId)>,
    /// Reusable candidate buffers for `pick_source`.
    src_same_rack: Vec<NodeId>,
    src_any: Vec<NodeId>,
    file_popularity: Vec<f64>,
    finished: usize,
    outcomes: Vec<dare_metrics::JobOutcome>,
    cv_before: f64,
    remote_bytes_fetched: u64,
    /// Per-node dynamic-replica budget in bytes (shared by DARE and the
    /// proactive baseline).
    budget_bytes: u64,
    /// Bytes of in-flight proactive transfers per node (budget reservation).
    inflight_proactive: Vec<u64>,
    scarlett: Option<ScarlettState>,
    proactive_flows: FxHashMap<FlowId, ProactiveTransfer>,
    /// Node is silently down: it stops heartbeating, its in-flight work
    /// becomes zombie state, but the master does not know yet.
    crashed: Vec<bool>,
    /// Node declared dead by the master after the missed-heartbeat
    /// timeout; its replicas are dropped and its attempts re-queued.
    declared: Vec<bool>,
    /// Per-node liveness epoch, bumped on every crash and rejoin so
    /// in-flight heartbeat chains and death timers go stale.
    node_epoch: Vec<u32>,
    /// Reduce tasks currently running per node (slot restore on rejoin).
    running_reduces: Vec<u32>,
    /// Under-replicated blocks awaiting recovery, fewest visible replicas
    /// first: (visible count, enqueue seq, block id).
    recovery_q: std::collections::BTreeSet<(u32, u64, u64)>,
    /// Blocks currently in `recovery_q` (dedup; point lookups only).
    recovery_queued: FxHashSet<u64>,
    recovery_seq: u64,
    /// Re-replication transfers in flight, bounded by
    /// `FaultPlan::max_recovery_streams`.
    recovery_flows: FxHashMap<FlowId, RecoveryXfer>,
    recovery_rng: DetRng,
    /// Blocks whose every physical copy is gone (point lookups only).
    lost_blocks: FxHashSet<u64>,
    /// Failure-detection and recovery counters.
    stats: dare_metrics::FaultStats,
    /// Map tasks currently running (or fetching) per node.
    running_on: Vec<Vec<(u32, u32)>>,
    /// A background scrub pass is reading this node's disk (task reads
    /// share the bandwidth left after the scrub budget).
    scrubbing: Vec<bool>,
    /// Quarantine time of corrupt blocks awaiting repair, keyed by block
    /// id — the time-to-repair clock behind `RepairCommit`.
    repair_started: FxHashMap<u64, SimTime>,
    /// Per-node slowdown factor (1.0 = healthy; limplock injection).
    slow_factor: Vec<f64>,
    /// Per-node gray-failure disk derating (1.0 = healthy). Unlike
    /// `slow_factor` this touches disk reads only — compute is intact,
    /// so the node keeps making (slow) progress and heartbeating.
    gray_disk: Vec<f64>,
    /// Per-node gray-failure NIC derating, mirrored into
    /// [`FlowSim::set_node_factor`] (kept here for the fingerprint).
    gray_nic: Vec<f64>,
    /// Map-task attempts that had to be re-executed due to failures.
    pub reexecuted_tasks: u64,
    /// Per-attempt timeline (only populated with `record_timeline`).
    timeline: Vec<TaskRecord>,
    timeline_idx: FxHashMap<(u32, u32, u32), usize>,
    /// Speculative backup attempts launched.
    pub speculative_launches: u64,
    /// Races resolved while a duplicate attempt was still running (the
    /// committed completion "won"; the duplicate's work is discarded).
    pub speculative_wins: u64,
    /// Structured event recorder (only with `SimConfig::record_trace`).
    /// Every emission point is guarded so untraced runs pay nothing.
    tracer: Option<Tracer>,
    /// Reusable buffer for draining the scheduler's skip decisions.
    skip_scratch: Vec<SkipDecision>,
    /// Periodic cluster-state sampler (only with `SimConfig::telemetry`).
    /// Boxed so a disabled run pays one pointer and one branch per event.
    telem: Option<Box<TelemetryState>>,
    /// Wall-clock dispatch profiler (only with `SimConfig::self_profile`).
    profiler: Option<Box<Profiler>>,
    /// Logical events processed (see `SimResult::logical_events`).
    logical_events: u64,
}

/// Column handles of the cluster-series schema, registered once at engine
/// construction so every sample writes the same columns in the same order.
struct MetricIds {
    map_slots_used: MetricId,
    map_slots_total: MetricId,
    reduce_slots_used: MetricId,
    reduce_slots_total: MetricId,
    queued_jobs: MetricId,
    pending_tasks: MetricId,
    running_maps: MetricId,
    pending_reduces: MetricId,
    running_reduces: MetricId,
    maps_done: MetricId,
    node_local: MetricId,
    rack_local: MetricId,
    remote: MetricId,
    locality_rate: MetricId,
    dynamic_replicas: MetricId,
    dynamic_bytes: MetricId,
    storage_overhead: MetricId,
    under_replicated: MetricId,
    lost_blocks: MetricId,
    active_flows: MetricId,
    fetch_flows: MetricId,
    recovery_flows: MetricId,
    proactive_flows: MetricId,
    link_util: MetricId,
    d_nodes_declared_dead: MetricId,
    d_nodes_rejoined: MetricId,
    d_blocks_re_replicated: MetricId,
    d_recovery_bytes: MetricId,
    d_blocks_lost: MetricId,
    d_tasks_retried: MetricId,
    d_tasks_failed: MetricId,
    d_jobs_failed: MetricId,
    /// Data-integrity columns, registered only when corruption faults or
    /// the block scanner are configured — a corruption-free run's export
    /// stays byte-identical to the pre-integrity-layer schema.
    corruption: Option<CorruptionIds>,
}

/// Column handles of the data-integrity schema extension.
struct CorruptionIds {
    corrupt_replicas: MetricId,
    quarantine_depth: MetricId,
    d_scrub_bytes: MetricId,
    d_checksum_failures: MetricId,
    repair_time: MetricId,
}

/// Live state of a telemetry-enabled run. The sampler holds no events in
/// the queue: `try_run` pumps it from the main loop, emitting the sample
/// for a tick only once the next popped event's timestamp exceeds it —
/// i.e. after every event sharing the tick's timestamp has drained — so a
/// sample always reflects a settled cluster state and sequence numbers of
/// real events are untouched (a sampled run is bit-identical to an
/// unsampled one).
struct TelemetryState {
    interval: SimDuration,
    /// Next tick awaiting emission.
    next: SimTime,
    reg: MetricRegistry,
    ids: MetricIds,
    nodes: Vec<NodeSample>,
    jobs: Vec<JobSample>,
    /// Cumulative fault counters at the previous tick (delta reporting).
    prev_faults: dare_metrics::FaultStats,
    /// Reusable per-node `(tx, rx)` utilization buffer.
    util_scratch: Vec<(f64, f64)>,
}

impl TelemetryState {
    fn new(interval: SimDuration, corruption: bool) -> Self {
        let mut reg = MetricRegistry::new();
        let ids = MetricIds {
            map_slots_used: reg.gauge_int("map_slots_used"),
            map_slots_total: reg.gauge_int("map_slots_total"),
            reduce_slots_used: reg.gauge_int("reduce_slots_used"),
            reduce_slots_total: reg.gauge_int("reduce_slots_total"),
            queued_jobs: reg.gauge_int("queued_jobs"),
            pending_tasks: reg.gauge_int("pending_tasks"),
            running_maps: reg.gauge_int("running_maps"),
            pending_reduces: reg.gauge_int("pending_reduces"),
            running_reduces: reg.gauge_int("running_reduces"),
            maps_done: reg.counter("maps_done"),
            node_local: reg.gauge_int("node_local"),
            rack_local: reg.gauge_int("rack_local"),
            remote: reg.gauge_int("remote"),
            locality_rate: reg.gauge_float("locality_rate"),
            dynamic_replicas: reg.gauge_int("dynamic_replicas"),
            dynamic_bytes: reg.gauge_int("dynamic_bytes"),
            storage_overhead: reg.gauge_float("storage_overhead"),
            under_replicated: reg.gauge_int("under_replicated"),
            lost_blocks: reg.gauge_int("lost_blocks"),
            active_flows: reg.gauge_int("active_flows"),
            fetch_flows: reg.gauge_int("fetch_flows"),
            recovery_flows: reg.gauge_int("recovery_flows"),
            proactive_flows: reg.gauge_int("proactive_flows"),
            link_util: reg.windowed("link_util"),
            d_nodes_declared_dead: reg.gauge_int("d_nodes_declared_dead"),
            d_nodes_rejoined: reg.gauge_int("d_nodes_rejoined"),
            d_blocks_re_replicated: reg.gauge_int("d_blocks_re_replicated"),
            d_recovery_bytes: reg.gauge_int("d_recovery_bytes"),
            d_blocks_lost: reg.gauge_int("d_blocks_lost"),
            d_tasks_retried: reg.gauge_int("d_tasks_retried"),
            d_tasks_failed: reg.gauge_int("d_tasks_failed"),
            d_jobs_failed: reg.gauge_int("d_jobs_failed"),
            corruption: corruption.then(|| CorruptionIds {
                corrupt_replicas: reg.gauge_int("corrupt_replicas"),
                quarantine_depth: reg.gauge_int("quarantine_depth"),
                d_scrub_bytes: reg.gauge_int("d_scrub_bytes"),
                d_checksum_failures: reg.gauge_int("d_checksum_failures"),
                repair_time: reg.windowed("repair_time_secs"),
            }),
        };
        TelemetryState {
            interval,
            next: SimTime::ZERO,
            reg,
            ids,
            nodes: Vec::new(),
            jobs: Vec::new(),
            prev_faults: dare_metrics::FaultStats::default(),
            util_scratch: Vec::new(),
        }
    }

    /// Seal into the exported time-series.
    fn seal(self) -> Telemetry {
        let (columns, cluster) = self.reg.into_series();
        Telemetry {
            interval_us: self.interval.as_micros(),
            columns,
            cluster,
            nodes: self.nodes,
            jobs: self.jobs,
        }
    }
}

/// The dispatch arm an event is charged to by the self-profiler.
fn subsystem_of(ev: &Ev) -> Subsystem {
    match ev {
        Ev::JobArrival(_)
        | Ev::Heartbeat { .. }
        | Ev::HeartbeatTick
        | Ev::ComputeDone { .. }
        | Ev::ReduceDone { .. } => Subsystem::Sched,
        Ev::LocalReadDone { .. } | Ev::Epoch | Ev::ScrubStart { .. } | Ev::ScrubDone { .. } => {
            Subsystem::Dfs
        }
        Ev::NetCheck => Subsystem::Net,
        Ev::NodeCrash { .. }
        | Ev::NodeRejoin(_)
        | Ev::DeclareDead { .. }
        | Ev::TaskRetry { .. }
        | Ev::NodeDegrade(..)
        | Ev::NodeGray { .. }
        | Ev::CorruptReplica { .. } => Subsystem::Fault,
    }
}

/// Map the scheduler's locality class onto the trace schema's.
fn trace_loc(l: Locality) -> Loc {
    match l {
        Locality::NodeLocal => Loc::Node,
        Locality::RackLocal => Loc::Rack,
        Locality::Remote => Loc::Remote,
    }
}

impl Engine {
    /// Build a simulator for `cfg` over `workload`: instantiates topology,
    /// bandwidth draws, the DFS (with the dataset ingested at t = 0), the
    /// per-node DARE policies, and the job-arrival events.
    pub fn new(cfg: SimConfig, workload: &Workload) -> Self {
        cfg.validate().expect("invalid simulation config");
        workload.validate().expect("invalid workload");
        let root = DetRng::new(cfg.seed);

        let mut topo_rng = root.substream("topology");
        let topo = cfg.profile.build_topology(&mut topo_rng);
        let n = topo.nodes() as usize;
        cfg.faults
            .validate_racks(topo.racks())
            .expect("invalid fault plan");

        let mut cap_rng = root.substream("capacities");
        let disk_caps_mbps = cfg.profile.sample_disk_capacities(&mut cap_rng);
        let nic_caps = cfg.profile.sample_nic_capacities(&mut cap_rng);
        let flows = FlowSim::new(nic_caps, cfg.profile.oversub);

        let mut dfs = Dfs::new(cfg.dfs.clone(), topo);

        // Ingest the dataset at t = 0.
        let mut ingest_rng = root.substream("ingest");
        let mut file_ids = Vec::with_capacity(workload.files.len());
        for f in &workload.files {
            let fid = dfs.create_file(
                SimTime::ZERO,
                f.name.clone(),
                f.size_bytes,
                None,
                &DefaultPlacement,
                &mut ingest_rng,
                false,
            );
            file_ids.push(fid);
        }
        // Corruption targets reference concrete block ids, known only now
        // that the dataset is ingested.
        cfg.faults
            .validate_blocks(dfs.namenode().num_blocks() as u64)
            .expect("invalid fault plan");

        // Access popularity per file (fraction of jobs reading it) — the
        // blockPopularity of the Fig. 11 metric.
        let mut file_popularity = vec![0.0f64; workload.files.len()];
        for j in &workload.jobs {
            file_popularity[j.file] += 1.0 / workload.jobs.len() as f64;
        }

        // Per-node dynamic-replica budget.
        let budget_bytes = ((dfs.total_primary_bytes() as f64 / n as f64) * cfg.budget_frac) as u64;
        let policies: Vec<Box<dyn ReplicationPolicy>> = (0..n)
            .map(|_| build_policy(cfg.policy, budget_bytes))
            .collect();
        let policy_rngs: Vec<DetRng> = (0..n)
            .map(|i| root.substream_idx("policy-node", i as u64))
            .collect();

        let mut scheduler: Box<dyn Scheduler> = if cfg.naive_scan {
            // Retained O(tasks × replicas) reference implementations; used
            // by the engine-level differential test and the benchmarks.
            match cfg.scheduler {
                SchedulerKind::Fifo => Box::new(dare_sched::oracle::NaiveFifoScheduler::new()),
                SchedulerKind::Fair(fc) => {
                    Box::new(dare_sched::oracle::NaiveFairScheduler::with_config(fc))
                }
                SchedulerKind::Capacity(q) => {
                    Box::new(dare_sched::oracle::NaiveCapacityScheduler::new(q))
                }
            }
        } else {
            match cfg.scheduler {
                SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
                SchedulerKind::Fair(fc) => Box::new(FairScheduler::with_config(fc)),
                SchedulerKind::Capacity(q) => Box::new(dare_sched::CapacityScheduler::new(q)),
            }
        };
        if cfg.record_trace {
            scheduler.set_tracing(true);
        }

        // Job states with analytic dedicated-cluster runtimes.
        let total_slots = cfg.profile.total_map_slots().max(1);
        let total_reduce_slots = (cfg.profile.nodes * cfg.profile.reduce_slots_per_node).max(1);
        let disk_mean = cfg.profile.disk.mean();
        let net_mean = cfg.profile.network.mean();
        let jobs: Vec<JobState> = workload
            .jobs
            .iter()
            .map(|j| {
                let blocks = dfs.namenode().file(file_ids[j.file]).blocks.clone();
                let maps = blocks.len() as u64;
                let waves = maps.div_ceil(total_slots as u64);
                let read_secs = cfg.dfs.block_size as f64 / (disk_mean * MB as f64);
                let per_map = SimDuration::from_secs_f64(read_secs) + j.map_compute;
                let per_reducer = reduce_duration(
                    j.output_bytes,
                    j.reduces,
                    j.map_compute,
                    net_mean,
                    disk_mean,
                    cfg.dfs.replication_factor,
                );
                let reduce_waves = (j.reduces as u64).div_ceil(total_reduce_slots as u64);
                let dedicated =
                    per_map.mul_f64(waves as f64) + per_reducer.mul_f64(reduce_waves as f64);
                JobState {
                    arrival: j.arrival,
                    attempts: vec![0; blocks.len()],
                    task_class: vec![Locality::Remote; blocks.len()],
                    done: vec![false; blocks.len()],
                    failed: false,
                    started_at: vec![SimTime::ZERO; blocks.len()],
                    live_attempts: vec![0; blocks.len()],
                    oldest_live_start: SimTime::ZERO,
                    completed_secs: 0.0,
                    blocks,
                    map_compute: j.map_compute,
                    output_bytes: j.output_bytes,
                    reduces: j.reduces,
                    reduces_done: 0,
                    maps_done: 0,
                    node_local: 0,
                    rack_local: 0,
                    remote: 0,
                    dedicated,
                }
            })
            .collect();

        let mut events = EventQueue::with_kind(cfg.event_queue);
        for (i, j) in jobs.iter().enumerate() {
            events.push(j.arrival, Ev::JobArrival(i as u32));
        }
        if cfg.batched_heartbeats {
            // One timer drives every node's heartbeat (no per-node chains,
            // no jitter) — the million-task configuration.
            events.push(SimTime::ZERO, Ev::HeartbeatTick);
        } else {
            // Staggered periodic heartbeats.
            let hb = cfg.heartbeat;
            for i in 0..n {
                let offset = SimDuration::from_micros(hb.as_micros() * i as u64 / n as u64);
                events.push(
                    SimTime::ZERO + offset,
                    Ev::Heartbeat {
                        node: i as u32,
                        periodic: true,
                        epoch: 0,
                    },
                );
            }
        }

        let cv_before = popularity_cv_of(&dfs, &file_popularity);
        let slots = cfg.profile.map_slots_per_node;

        let scarlett = cfg.scarlett.map(|sc| {
            events.push(SimTime::ZERO + sc.epoch, Ev::Epoch);
            ScarlettState::new(sc, workload.files.len())
        });
        // Expand the fault plan into concrete injection events. A rack
        // outage is modeled as a simultaneous transient crash of every
        // node in the rack (shared switch/PDU failure).
        for ev in &cfg.faults.events {
            match *ev {
                crate::faults::FaultEvent::Kill { at_secs, node } => {
                    events.push(
                        SimTime::from_secs(at_secs),
                        Ev::NodeCrash {
                            node,
                            permanent: true,
                            down_secs: 0,
                        },
                    );
                }
                crate::faults::FaultEvent::Crash {
                    at_secs,
                    node,
                    down_secs,
                } => {
                    events.push(
                        SimTime::from_secs(at_secs),
                        Ev::NodeCrash {
                            node,
                            permanent: false,
                            down_secs,
                        },
                    );
                }
                crate::faults::FaultEvent::RackOutage {
                    at_secs,
                    rack,
                    down_secs,
                } => {
                    for nid in dfs.topology().nodes_in_rack(dare_net::RackId(rack)) {
                        events.push(
                            SimTime::from_secs(at_secs),
                            Ev::NodeCrash {
                                node: nid.0,
                                permanent: false,
                                down_secs,
                            },
                        );
                    }
                }
                crate::faults::FaultEvent::Slowdown {
                    at_secs,
                    node,
                    factor,
                    duration_secs,
                } => {
                    events.push(SimTime::from_secs(at_secs), Ev::NodeDegrade(node, factor));
                    if let Some(d) = duration_secs {
                        events.push(SimTime::from_secs(at_secs + d), Ev::NodeDegrade(node, 1.0));
                    }
                }
                crate::faults::FaultEvent::CorruptReplica { at_secs, node, block } => {
                    events.push(SimTime::from_secs(at_secs), Ev::CorruptReplica { node, block });
                }
                // The master lives on side A, so a partition is — from
                // its point of view — a simultaneous transient crash of
                // every side-B node: heartbeats and flows across the cut
                // stop, the missed-heartbeat timeout declares the far
                // side dead, and the heal rejoins each node with a block
                // report (the same reconciliation path as a rejoin).
                crate::faults::FaultEvent::Partition {
                    at_secs,
                    ref racks_b,
                    heal_secs,
                    ..
                } => {
                    for &rack in racks_b {
                        for nid in dfs.topology().nodes_in_rack(dare_net::RackId(rack)) {
                            events.push(
                                SimTime::from_secs(at_secs),
                                Ev::NodeCrash {
                                    node: nid.0,
                                    permanent: false,
                                    down_secs: heal_secs,
                                },
                            );
                        }
                    }
                }
                crate::faults::FaultEvent::GrayNode {
                    at_secs,
                    node,
                    secs,
                    disk_factor,
                    nic_factor,
                } => {
                    events.push(
                        SimTime::from_secs(at_secs),
                        Ev::NodeGray {
                            node,
                            disk: disk_factor,
                            nic: nic_factor,
                        },
                    );
                    events.push(
                        SimTime::from_secs(at_secs + secs),
                        Ev::NodeGray {
                            node,
                            disk: 1.0,
                            nic: 1.0,
                        },
                    );
                }
            }
        }
        // Staggered background scrub passes (one chain per node).
        if let Some(sc) = cfg.scanner {
            for i in 0..n {
                let offset =
                    SimDuration::from_micros(sc.period.as_micros() * i as u64 / n as u64);
                events.push(
                    SimTime::ZERO + offset,
                    Ev::ScrubStart {
                        node: i as u32,
                        epoch: 0,
                    },
                );
            }
        }

        Engine {
            workload_name: workload.name.clone(),
            dfs,
            flows,
            scheduler,
            queue: JobQueue::new(),
            policies,
            policy_rngs,
            jobs,
            events,
            now: SimTime::ZERO,
            free_map_slots: vec![slots; n],
            free_reduce_slots: vec![cfg.profile.reduce_slots_per_node; n],
            reduce_free_nodes: if cfg.profile.reduce_slots_per_node > 0 {
                (0..n as u32).collect()
            } else {
                std::collections::BTreeSet::new()
            },
            pending_reduces: std::collections::VecDeque::new(),
            active_local_reads: vec![0; n],
            disk_caps_mbps,
            fetches: FxHashMap::default(),
            next_netcheck: None,
            batch_cancelled: Vec::new(),
            jitter_rng: root.substream("task-jitter"),
            fetch_rng: root.substream("fetch-pick"),
            rtt_rng: root.substream("rtt"),
            promoted_scratch: Vec::new(),
            src_same_rack: Vec::new(),
            src_any: Vec::new(),
            file_popularity,
            finished: 0,
            outcomes: Vec::new(),
            cv_before,
            remote_bytes_fetched: 0,
            budget_bytes,
            inflight_proactive: vec![0; n],
            scarlett,
            proactive_flows: FxHashMap::default(),
            crashed: vec![false; n],
            declared: vec![false; n],
            node_epoch: vec![0; n],
            running_reduces: vec![0; n],
            recovery_q: std::collections::BTreeSet::new(),
            recovery_queued: FxHashSet::default(),
            recovery_seq: 0,
            recovery_flows: FxHashMap::default(),
            recovery_rng: root.substream("recovery"),
            lost_blocks: FxHashSet::default(),
            stats: dare_metrics::FaultStats::default(),
            running_on: vec![Vec::new(); n],
            scrubbing: vec![false; n],
            repair_started: FxHashMap::default(),
            slow_factor: vec![1.0; n],
            gray_disk: vec![1.0; n],
            gray_nic: vec![1.0; n],
            timeline: Vec::new(),
            timeline_idx: FxHashMap::default(),
            reexecuted_tasks: 0,
            speculative_launches: 0,
            speculative_wins: 0,
            tracer: cfg.record_trace.then(Tracer::new),
            skip_scratch: Vec::new(),
            telem: {
                let corruption = cfg.scanner.is_some()
                    || cfg.faults.events.iter().any(|e| {
                        matches!(e, crate::faults::FaultEvent::CorruptReplica { .. })
                    });
                cfg.telemetry
                    .map(|tc| Box::new(TelemetryState::new(tc.interval, corruption)))
            },
            profiler: cfg.self_profile.then(|| Box::new(Profiler::new())),
            logical_events: 0,
            cfg,
        }
    }

    /// Record one trace event at the current simulation time (no-op
    /// unless `record_trace` is set).
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(self.now, ev);
        }
    }

    /// Drain the scheduler's recorded delay-scheduling declines into the
    /// trace. Called after every slot offer so skips land in the log
    /// before the launch (or give-up) they preceded.
    fn drain_skip_trace(&mut self) {
        if self.tracer.is_none() {
            return;
        }
        let mut skips = std::mem::take(&mut self.skip_scratch);
        self.scheduler.drain_skips(&mut skips);
        for s in skips.drain(..) {
            self.emit(TraceEvent::DelaySkip {
                job: s.job.0,
                node: s.node.0,
                skips: s.skips,
                offered: trace_loc(s.offered),
            });
        }
        self.skip_scratch = skips;
    }

    /// Run to completion and summarize.
    ///
    /// # Panics
    ///
    /// On any [`crate::SimError`]; use [`Engine::try_run`] to get the
    /// structured error instead.
    pub fn run(self) -> SimResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Run to completion, reporting engine-level faults (a stalled event
    /// queue, an orphaned flow, a violated invariant) as a structured
    /// [`crate::SimError`] rather than panicking.
    pub fn try_run(mut self) -> Result<SimResult, crate::SimError> {
        let total_jobs = self.jobs.len();
        while self.finished < total_jobs {
            // The pop is charged to the queue arm so the profile separates
            // event-kernel cost from scheduler-decision cost. Observation
            // only: `Instant` never feeds the simulation.
            let popped = if self.profiler.is_some() {
                let depth = self.events.len() as u64;
                let start = std::time::Instant::now();
                let popped = self.events.pop();
                let elapsed = start.elapsed();
                if let Some(p) = self.profiler.as_mut() {
                    p.record(Subsystem::Queue, elapsed);
                    p.note_queue_peak(depth);
                }
                popped
            } else {
                self.events.pop()
            };
            let Some((t, ev)) = popped else {
                return Err(crate::SimError::Stalled {
                    now: self.now,
                    finished: self.finished,
                    total: total_jobs,
                    pending: self.queue.total_pending(),
                });
            };
            debug_assert!(t >= self.now, "time went backwards");
            // Emit the samples of every telemetry tick the popped event
            // has passed: all events at times <= the tick have drained.
            if self.telem.is_some() {
                self.pump_telemetry(t);
            }
            self.now = t;
            self.dispatch(ev)?;
            if self.cfg.check_invariants {
                self.check_invariants()?;
            }
        }
        if self.telem.is_some() {
            self.final_telemetry();
        }
        if self.cfg.check_invariants {
            self.check_terminal_invariants()?;
        }
        Ok(self.finish())
    }

    // ----- model-checker step control -------------------------------
    //
    // The bounded model checker (`dare-mc`) drives the engine one event
    // at a time instead of through `try_run`, injecting faults between
    // events and fingerprinting the reached state for deduplication.
    // `Engine` is not `Clone` (the scheduler is a boxed trait object),
    // so the checker forks by replaying action prefixes through fresh
    // engines — these hooks are the whole surface it needs.

    /// Dispatch exactly one pending event: the body of one `try_run`
    /// loop iteration. Returns [`StepOutcome::Quiescent`] (after running
    /// the terminal invariant checks, when enabled) once every job has
    /// finished; a drained queue before that point is a stall, reported
    /// as [`crate::SimError::Stalled`] exactly like `try_run` would.
    pub fn step(&mut self) -> Result<StepOutcome, crate::SimError> {
        if self.is_quiescent() {
            if self.cfg.check_invariants {
                self.check_terminal_invariants()?;
            }
            return Ok(StepOutcome::Quiescent);
        }
        let Some((t, ev)) = self.events.pop() else {
            return Err(crate::SimError::Stalled {
                now: self.now,
                finished: self.finished,
                total: self.jobs.len(),
                pending: self.queue.total_pending(),
            });
        };
        debug_assert!(t >= self.now, "time went backwards");
        if self.telem.is_some() {
            self.pump_telemetry(t);
        }
        self.now = t;
        self.dispatch(ev)?;
        if self.cfg.check_invariants {
            self.check_invariants()?;
        }
        Ok(StepOutcome::Progressed)
    }

    /// Inject a permanent kill of `node` at the current simulation time
    /// (disk wiped, never rejoins). Crash handling is idempotent, so
    /// killing an already-down node is a no-op.
    pub fn inject_kill(&mut self, node: u32) {
        self.events.push(
            self.now,
            Ev::NodeCrash {
                node,
                permanent: true,
                down_secs: 0,
            },
        );
    }

    /// Inject a transient crash of `node` at the current simulation
    /// time; it rejoins with a block report after `down_secs`.
    pub fn inject_crash(&mut self, node: u32, down_secs: u64) {
        self.events.push(
            self.now,
            Ev::NodeCrash {
                node,
                permanent: false,
                down_secs,
            },
        );
    }

    /// Inject silent corruption of `block`'s replica on `node` at the
    /// current simulation time (a no-op if no replica is resident).
    pub fn inject_corrupt(&mut self, node: u32, block: u64) {
        self.events.push(self.now, Ev::CorruptReplica { node, block });
    }

    /// True once the protocol has nothing left to do: every job reached
    /// a terminal state, the re-replication pipeline drained, and no
    /// fault transition (crash, rejoin, declare-dead, corruption
    /// arrival, scrub detection) is still scheduled.
    ///
    /// Stricter than the experiment harness's stop condition (which ends
    /// at the last job): the stepped interface exists for the bounded
    /// model checker, and closing a path before in-flight repairs and
    /// pending declare/rejoin transitions resolve would hide exactly the
    /// failure/recovery orderings it explores. Self-perpetuating chains
    /// (heartbeats, scrub passes, epochs) don't count as pending work,
    /// so this condition is still reached in bounded time.
    pub fn is_quiescent(&self) -> bool {
        if self.finished < self.jobs.len() || self.recovery_backlog() > 0 {
            return false;
        }
        let mut fault_pending = false;
        self.events.for_each_scheduled(|_, _, ev| {
            if matches!(
                ev,
                Ev::NodeCrash { .. }
                    | Ev::NodeRejoin(_)
                    | Ev::DeclareDead { .. }
                    | Ev::CorruptReplica { .. }
                    | Ev::ScrubDone { .. }
            ) {
                fault_pending = true;
            }
        });
        !fault_pending
    }

    /// Current simulation time.
    pub fn sim_now(&self) -> SimTime {
        self.now
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.crashed.len()
    }

    /// Number of DFS blocks (inputs plus any job outputs registered).
    pub fn num_blocks(&self) -> usize {
        self.dfs.namenode().num_blocks()
    }

    /// True when `node` can take work and serve reads (neither silently
    /// crashed nor declared dead).
    pub fn node_alive(&self, node: u32) -> bool {
        self.node_up(node as usize)
    }

    /// Failure-detection and recovery counters so far.
    pub fn fault_stats(&self) -> &dare_metrics::FaultStats {
        &self.stats
    }

    /// The configured target replication factor.
    pub fn replication_factor(&self) -> u32 {
        self.cfg.dfs.replication_factor
    }

    /// Scheduler-visible replica count of a block.
    pub fn visible_replicas(&self, block: u64) -> usize {
        self.dfs.visible_locations(BlockId(block)).len()
    }

    /// True when a physical replica of `block` is resident on `node`.
    pub fn block_present(&self, node: u32, block: u64) -> bool {
        self.dfs.is_physically_present(NodeId(node), BlockId(block))
    }

    /// True when the resident replica of `block` on `node` carries the
    /// (undetected) corrupt bit.
    pub fn block_corrupt_at(&self, node: u32, block: u64) -> bool {
        self.dfs.datanode(NodeId(node)).is_corrupt(BlockId(block))
    }

    /// Blocks queued for re-replication plus transfers in flight.
    pub fn recovery_backlog(&self) -> usize {
        self.recovery_q.len() + self.recovery_flows.len()
    }

    /// Blocks whose every physical copy is gone.
    pub fn lost_block_count(&self) -> usize {
        self.lost_blocks.len()
    }

    /// Pending simulation events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Extract the structured trace recorded so far (only under
    /// `SimConfig::record_trace`), sealing it. The checker calls this on
    /// a violating path to export the counterexample as JSONL.
    pub fn take_trace(&mut self) -> Option<dare_trace::Trace> {
        self.tracer.take().map(Tracer::finish)
    }

    /// FNV-1a fingerprint of the logical simulation state, for state-
    /// space deduplication. Covers the DFS extended fingerprint (replica
    /// map, corrupt bits, visible-location order, pending reports), node
    /// liveness/slot/epoch state, per-job progress, the scheduler queue,
    /// the recovery pipeline, in-flight flows (identity, relative start
    /// time, and current rate), and a digest of the pending event queue
    /// with times relative to `now` — so states reached at different
    /// absolute times but with identical remaining behavior collide.
    ///
    /// Monotone counters (attempt ids, liveness epochs, flow ids) are
    /// hashed raw: they can distinguish behaviorally equivalent states
    /// (costing dedup, never soundness). Flow *progress* is approximated
    /// by start time and current rate; see DESIGN.md for the residual
    /// approximation.
    pub fn state_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                *h ^= byte as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let now_us = self.now.as_micros();
        let ago = |t: SimTime| now_us.saturating_sub(t.as_micros());
        let mut h = self.dfs.extended_fingerprint(self.now);
        for i in 0..self.crashed.len() {
            mix(
                &mut h,
                self.crashed[i] as u64
                    | (self.declared[i] as u64) << 1
                    | (self.scrubbing[i] as u64) << 2,
            );
            mix(&mut h, self.node_epoch[i] as u64);
            mix(&mut h, self.free_map_slots[i] as u64);
            mix(&mut h, self.free_reduce_slots[i] as u64);
            mix(&mut h, self.running_reduces[i] as u64);
            mix(&mut h, self.active_local_reads[i] as u64);
            mix(&mut h, self.slow_factor[i].to_bits());
            mix(&mut h, self.gray_disk[i].to_bits());
            mix(&mut h, self.gray_nic[i].to_bits());
            for &(j, t) in &self.running_on[i] {
                mix(&mut h, ((j as u64) << 32) | t as u64);
            }
            mix(&mut h, u64::MAX); // per-node terminator
        }
        for js in &self.jobs {
            mix(&mut h, js.maps_done as u64);
            mix(&mut h, js.reduces_done as u64);
            mix(&mut h, js.failed as u64);
            mix(&mut h, js.node_local as u64);
            mix(&mut h, js.rack_local as u64);
            mix(&mut h, js.remote as u64);
            for ti in 0..js.attempts.len() {
                mix(&mut h, js.attempts[ti] as u64);
                mix(
                    &mut h,
                    js.done[ti] as u64 | (js.live_attempts[ti] as u64) << 1,
                );
            }
        }
        mix(&mut h, self.finished as u64);
        for je in self.queue.jobs() {
            mix(&mut h, je.id.0 as u64);
            mix(&mut h, ago(je.arrival));
            mix(&mut h, je.running_maps() as u64);
            mix(&mut h, je.skip_count as u64);
            for pt in je.pending() {
                mix(&mut h, ((pt.task.0 as u64) << 32) | pt.block.0);
            }
            mix(&mut h, u64::MAX); // per-job terminator
        }
        for &(j, d) in &self.pending_reduces {
            mix(&mut h, j as u64);
            mix(&mut h, d.as_micros());
        }
        // Recovery queue: rank replaces the absolute enqueue seq (two
        // paths reaching the same backlog in the same relative order
        // must collide even if their raw counters differ).
        for (rank, &(vis, _seq, b)) in self.recovery_q.iter().enumerate() {
            mix(&mut h, vis as u64);
            mix(&mut h, rank as u64);
            mix(&mut h, b);
        }
        let mut rec: Vec<(u64, u32, u32, u32, u64)> = self
            .recovery_flows
            .iter()
            .map(|(fid, rx)| (rx.block.0, rx.src, rx.dst, rx.visible_at_start, fid.0))
            .collect();
        rec.sort_unstable();
        for (b, s, d, v, fid) in rec {
            mix(&mut h, b);
            mix(&mut h, ((s as u64) << 32) | d as u64);
            mix(&mut h, v as u64);
            self.mix_flow(&mut h, FlowId(fid), ago);
        }
        let mut lost: Vec<u64> = self.lost_blocks.iter().copied().collect();
        lost.sort_unstable();
        for b in lost {
            mix(&mut h, b);
        }
        let mut repairs: Vec<(u64, u64)> = self
            .repair_started
            .iter()
            .map(|(&b, &t)| (b, ago(t)))
            .collect();
        repairs.sort_unstable();
        for (b, t) in repairs {
            mix(&mut h, b);
            mix(&mut h, t);
        }
        // (flow id, node, src, job, task, attempt, replicate flag, latency us)
        type FetchFp = (u64, u32, u32, u32, u32, u32, u64, u64);
        let mut fetches: Vec<FetchFp> = self
            .fetches
            .iter()
            .map(|(fid, f)| {
                (
                    fid.0,
                    f.node,
                    f.src,
                    f.job,
                    f.task,
                    f.attempt,
                    f.replicate as u64,
                    f.latency.as_micros(),
                )
            })
            .collect();
        fetches.sort_unstable();
        for (fid, node, src, job, task, attempt, repl, lat) in fetches {
            mix(&mut h, ((node as u64) << 32) | src as u64);
            mix(&mut h, ((job as u64) << 32) | task as u64);
            mix(&mut h, (attempt as u64) | repl << 32);
            mix(&mut h, lat);
            self.mix_flow(&mut h, FlowId(fid), ago);
        }
        let mut pro: Vec<(u64, u64, u32, u32)> = self
            .proactive_flows
            .iter()
            .map(|(fid, p)| (fid.0, p.block.0, p.src, p.dst))
            .collect();
        pro.sort_unstable();
        for (fid, b, s, d) in pro {
            mix(&mut h, b);
            mix(&mut h, ((s as u64) << 32) | d as u64);
            self.mix_flow(&mut h, FlowId(fid), ago);
        }
        // Pending event queue, canonical order, times relative to now;
        // seq rank (not raw seq) keeps same-time FIFO order visible.
        let mut evs: Vec<(u64, u64, u64)> = Vec::with_capacity(self.events.len());
        self.events
            .for_each_scheduled(|t, seq, ev| evs.push((t.as_micros(), seq, ev_digest(ev))));
        evs.sort_unstable();
        for (rank, (t, _seq, d)) in evs.iter().enumerate() {
            mix(&mut h, t.saturating_sub(now_us));
            mix(&mut h, rank as u64);
            mix(&mut h, *d);
        }
        h
    }

    /// Mix one in-flight flow's identity, relative start time, and
    /// current rate into the fingerprint.
    fn mix_flow(&self, h: &mut u64, fid: FlowId, ago: impl Fn(SimTime) -> u64) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut m = |v: u64| {
            for byte in v.to_le_bytes() {
                *h ^= byte as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        };
        m(fid.0);
        m(self.flows.started_at(fid).map_or(u64::MAX, &ago));
        m(self.flows.rate_of(fid).map_or(u64::MAX, f64::to_bits));
    }

    /// Emit samples for every pending tick strictly before `next_event`.
    fn pump_telemetry(&mut self, next_event: SimTime) {
        while let Some(tick) = self.telem.as_ref().map(|s| s.next) {
            if tick >= next_event {
                return;
            }
            self.take_sample(tick, false);
            if let Some(s) = self.telem.as_mut() {
                s.next = tick + s.interval;
            }
        }
    }

    /// Drain the ticks left at end of run, then take one terminal sample
    /// at the final simulation time (with a terminal row for every job).
    fn final_telemetry(&mut self) {
        let end = self.now;
        self.pump_telemetry(end);
        self.take_sample(end, true);
    }

    /// Snapshot the cluster at tick `ts`: one cluster row, one row per
    /// node, one row per in-flight job (every job when `terminal`).
    /// Observation-only: reads engine state, mutates nothing outside the
    /// sampler itself.
    fn take_sample(&mut self, ts: SimTime, terminal: bool) {
        let Some(mut telem) = self.telem.take() else {
            return;
        };
        let t_us = ts.as_micros();
        let n = self.crashed.len();
        let map_cap = self.cfg.profile.map_slots_per_node;
        let red_cap = self.cfg.profile.reduce_slots_per_node;
        self.flows.nic_utilization_into(&mut telem.util_scratch);

        // Per-node rows, accumulating the master-visible slot totals: a
        // silently crashed node still advertises its slots until the
        // missed-heartbeat timeout declares it dead, which is exactly the
        // step change the fault-telemetry test pins at the detection tick.
        let (mut map_used, mut map_total) = (0u64, 0u64);
        let (mut red_used, mut red_total) = (0u64, 0u64);
        let mut running_reduces = 0u64;
        for i in 0..n {
            let declared = self.declared[i];
            let nm_total = if declared { 0 } else { map_cap };
            let nm_used = nm_total.saturating_sub(self.free_map_slots[i]);
            let nr_total = if declared { 0 } else { red_cap };
            let nr_used = nr_total.saturating_sub(self.free_reduce_slots[i]);
            map_used += nm_used as u64;
            map_total += nm_total as u64;
            red_used += nr_used as u64;
            red_total += nr_total as u64;
            running_reduces += self.running_reduces[i] as u64;
            let (tx, rx) = telem.util_scratch[i];
            telem.reg.observe(telem.ids.link_util, tx);
            telem.reg.observe(telem.ids.link_util, rx);
            let dn = self.dfs.datanode(NodeId(i as u32));
            telem.nodes.push(NodeSample {
                t_us,
                node: i as u32,
                alive: !self.crashed[i] && !declared,
                advertised: !declared,
                map_used: nm_used,
                map_total: nm_total,
                reduce_used: nr_used,
                reduce_total: nr_total,
                dynamic_blocks: dn.dynamic_count() as u64,
                dynamic_bytes: dn.dynamic_bytes(),
                tx_util: tx,
                rx_util: rx,
            });
        }

        // Per-job rows plus the cumulative locality tally. `node_local`
        // counts launched attempts (rolled back if an attempt dies), so
        // mid-run the rate can momentarily include in-flight work; at the
        // terminal sample it equals the outcome counters exactly.
        let (mut maps_done, mut node_local) = (0u64, 0u64);
        let (mut rack_local, mut remote) = (0u64, 0u64);
        for (j, js) in self.jobs.iter().enumerate() {
            maps_done += js.maps_done as u64;
            node_local += js.node_local as u64;
            rack_local += js.rack_local as u64;
            remote += js.remote as u64;
            let phase = if js.failed {
                JobPhase::Failed
            } else if js.maps_done as usize == js.blocks.len() && js.reduces_done >= js.reduces {
                JobPhase::Done
            } else {
                JobPhase::Running
            };
            if terminal || (js.arrival <= ts && phase == JobPhase::Running) {
                telem.jobs.push(JobSample {
                    t_us,
                    job: j as u32,
                    phase,
                    maps_total: js.blocks.len() as u32,
                    maps_done: js.maps_done,
                    node_local: js.node_local,
                    rack_local: js.rack_local,
                    remote: js.remote,
                    reduces_done: js.reduces_done,
                });
            }
        }

        let reg = &mut telem.reg;
        let ids = &telem.ids;
        reg.set_int(ids.map_slots_used, map_used);
        reg.set_int(ids.map_slots_total, map_total);
        reg.set_int(ids.reduce_slots_used, red_used);
        reg.set_int(ids.reduce_slots_total, red_total);
        let depth = self.queue.depth();
        reg.set_int(ids.queued_jobs, depth.jobs as u64);
        reg.set_int(ids.pending_tasks, depth.pending_tasks as u64);
        reg.set_int(ids.running_maps, depth.running_maps as u64);
        reg.set_int(ids.pending_reduces, self.pending_reduces.len() as u64);
        reg.set_int(ids.running_reduces, running_reduces);
        reg.set_total(ids.maps_done, maps_done);
        reg.set_int(ids.node_local, node_local);
        reg.set_int(ids.rack_local, rack_local);
        reg.set_int(ids.remote, remote);
        reg.set_float(
            ids.locality_rate,
            if maps_done == 0 {
                0.0
            } else {
                node_local as f64 / maps_done as f64
            },
        );
        reg.set_int(ids.dynamic_replicas, self.dfs.total_dynamic_replicas());
        let dyn_bytes = self.dfs.total_dynamic_bytes();
        reg.set_int(ids.dynamic_bytes, dyn_bytes);
        let primary = self.dfs.total_primary_bytes();
        reg.set_float(
            ids.storage_overhead,
            if primary == 0 {
                0.0
            } else {
                dyn_bytes as f64 / primary as f64
            },
        );
        reg.set_int(ids.under_replicated, self.recovery_q.len() as u64);
        reg.set_int(ids.lost_blocks, self.lost_blocks.len() as u64);
        reg.set_int(ids.active_flows, self.flows.active() as u64);
        reg.set_int(ids.fetch_flows, self.fetches.len() as u64);
        reg.set_int(ids.recovery_flows, self.recovery_flows.len() as u64);
        reg.set_int(ids.proactive_flows, self.proactive_flows.len() as u64);
        let d = self.stats.delta(&telem.prev_faults);
        telem.prev_faults = self.stats;
        reg.set_int(ids.d_nodes_declared_dead, d.nodes_declared_dead);
        reg.set_int(ids.d_nodes_rejoined, d.nodes_rejoined);
        reg.set_int(ids.d_blocks_re_replicated, d.blocks_re_replicated);
        reg.set_int(ids.d_recovery_bytes, d.recovery_bytes);
        reg.set_int(ids.d_blocks_lost, d.blocks_lost);
        reg.set_int(ids.d_tasks_retried, d.tasks_retried);
        reg.set_int(ids.d_tasks_failed, d.tasks_failed);
        reg.set_int(ids.d_jobs_failed, d.jobs_failed);
        if let Some(c) = ids.corruption.as_ref() {
            reg.set_int(c.corrupt_replicas, self.dfs.total_corrupt_replicas());
            reg.set_int(c.quarantine_depth, self.repair_started.len() as u64);
            reg.set_int(c.d_scrub_bytes, d.scrub_bytes);
            reg.set_int(c.d_checksum_failures, d.checksum_failures);
        }
        reg.sample(ts);
        self.telem = Some(telem);
    }

    /// Route one event to its handler, charging its wall time to the
    /// owning subsystem when self-profiling is on. The profiler observes
    /// `std::time::Instant` only and never feeds the simulation, so a
    /// profiled run stays bit-identical to an unprofiled one.
    fn dispatch(&mut self, ev: Ev) -> Result<(), crate::SimError> {
        if self.profiler.is_none() {
            return self.dispatch_inner(ev);
        }
        let sub = subsystem_of(&ev);
        let start = std::time::Instant::now();
        let r = self.dispatch_inner(ev);
        let elapsed = start.elapsed();
        if let Some(p) = self.profiler.as_mut() {
            p.record(sub, elapsed);
        }
        r
    }

    /// Route one event to its handler (also used by white-box tests).
    fn dispatch_inner(&mut self, ev: Ev) -> Result<(), crate::SimError> {
        // A heartbeat tick is bookkept per node it services (inside
        // `on_heartbeat_tick`), not as one event, so batched and per-node
        // heartbeat runs report comparable logical throughput.
        if !matches!(ev, Ev::HeartbeatTick) {
            self.logical_events += 1;
        }
        match ev {
            Ev::JobArrival(j) => self.on_job_arrival(j),
            Ev::Heartbeat {
                node,
                periodic,
                epoch,
            } => self.on_heartbeat(node, periodic, epoch),
            Ev::HeartbeatTick => self.on_heartbeat_tick(),
            Ev::LocalReadDone {
                node,
                job,
                task,
                attempt,
            } => self.on_local_read_done(node, job, task, attempt),
            Ev::NetCheck => return self.on_net_check(),
            Ev::ComputeDone {
                node,
                job,
                task,
                attempt,
            } => self.on_compute_done(node, job, task, attempt),
            Ev::ReduceDone { node, job } => self.on_reduce_done(node, job),
            Ev::Epoch => self.on_epoch(),
            Ev::NodeCrash {
                node,
                permanent,
                down_secs,
            } => self.on_node_crash(node, permanent, down_secs),
            Ev::NodeRejoin(node) => self.on_node_rejoin(node),
            Ev::DeclareDead { node, epoch } => self.on_declare_dead(node, epoch),
            Ev::TaskRetry { job, task, attempt } => self.on_task_retry(job, task, attempt),
            Ev::NodeDegrade(node, factor) => {
                self.slow_factor[node as usize] = factor.max(1.0);
            }
            Ev::NodeGray { node, disk, nic } => {
                let ni = node as usize;
                self.gray_disk[ni] = disk.max(1.0);
                self.gray_nic[ni] = nic.max(1.0);
                // Rates of in-flight flows touching the node change now;
                // an earlier-than-predicted completion is impossible (the
                // NIC only got slower or recovered), but a recovery can
                // pull completions forward, so re-poll the flow sim.
                self.flows.set_node_factor(self.now, NodeId(node), nic.max(1.0));
                self.schedule_netcheck();
            }
            Ev::CorruptReplica { node, block } => self.on_corrupt_replica(node, block),
            Ev::ScrubStart { node, epoch } => self.on_scrub_start(node, epoch),
            Ev::ScrubDone {
                node,
                epoch,
                pass_bytes,
            } => self.on_scrub_done(node, epoch, pass_bytes),
        }
        Ok(())
    }

    /// A node can take work and serve reads: neither silently crashed nor
    /// declared dead.
    fn node_up(&self, i: usize) -> bool {
        !self.crashed[i] && !self.declared[i]
    }

    fn on_job_arrival(&mut self, j: u32) {
        self.emit(TraceEvent::JobSubmitted {
            job: j,
            maps: self.jobs[j as usize].blocks.len() as u32,
        });
        let job = &self.jobs[j as usize];
        let tasks: Vec<PendingTask> = job
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: b,
            })
            .collect();
        let arrival = job.arrival;
        self.queue.add_job(
            JobId(j),
            arrival,
            tasks,
            &DfsLookup(&self.dfs),
            self.dfs.topology(),
        );
    }

    fn on_heartbeat(&mut self, node: u32, periodic: bool, epoch: u32) {
        if periodic && epoch != self.node_epoch[node as usize] {
            return; // chain from before a crash/rejoin: superseded
        }
        if !self.node_up(node as usize) {
            return;
        }
        // Dynamic replicas become visible in a batch; mirror every
        // promotion into the queue's locality index.
        self.process_promotions();
        self.service_map_slots(node);
        self.fill_reduce_slots();
        if periodic {
            // Heartbeat intervals drift a few percent in real clusters; the
            // jitter also prevents the simulator from phase-locking job
            // arrivals to a fixed node rotation.
            let interval = self
                .cfg
                .heartbeat
                .mul_f64(self.jitter_rng.uniform_range(0.95, 1.05));
            self.events.push(
                self.now + interval,
                Ev::Heartbeat {
                    node,
                    periodic: true,
                    epoch,
                },
            );
        }
    }

    /// Promotions the name node batched up become visible to the
    /// scheduler's locality index (the scratch copy ends the `dfs`
    /// borrow before the queue is told).
    fn process_promotions(&mut self) {
        self.promoted_scratch.clear();
        self.promoted_scratch
            .extend_from_slice(self.dfs.process_reports(self.now));
        for i in 0..self.promoted_scratch.len() {
            let (b, n) = self.promoted_scratch[i];
            self.queue.note_replica_added(b, n, self.dfs.topology());
        }
    }

    /// Fill every free map slot on `node` the scheduler can use, falling
    /// back to a speculative backup when no regular work fits.
    fn service_map_slots(&mut self, node: u32) {
        while self.free_map_slots[node as usize] > 0 {
            let assignment = {
                let lookup = DfsLookup(&self.dfs);
                self.scheduler.pick_map(
                    &mut self.queue,
                    NodeId(node),
                    &lookup,
                    self.dfs.topology(),
                    self.now,
                )
            };
            self.drain_skip_trace();
            match assignment {
                Some(a) => self.launch_map(node, a.job.0, a.task.0, a.block, false),
                None => {
                    // No regular work: consider a speculative backup for a
                    // straggling attempt before giving the slot up.
                    if !self.try_speculate(node) {
                        break;
                    }
                }
            }
        }
    }

    /// Batched-heartbeat timer: drain every live node's heartbeat in
    /// ascending node order, then re-arm one timer for the next interval.
    /// Replaces `n` periodic events (and their jitter draws) per interval
    /// with a single pop, and — the larger win — hoists the per-heartbeat
    /// work that is identical across the batch out of the per-node loop:
    /// replica promotions are processed once per tick (per-node chains
    /// re-check per node and find an empty report after the first), the
    /// reduce queue is drained once, and nodes that cannot take a map
    /// task (no free slot, down, or nothing pending and no speculation
    /// configured) are skipped with one comparison each. A tick over an
    /// idle or fully-busy 10k-node cluster costs one slot-vector scan,
    /// not 10k full heartbeat services. The eliminated per-node calls
    /// are no-ops by construction, so the batch services exactly the
    /// nodes a per-node sweep at the same instant would.
    ///
    /// Node heartbeats run un-jittered and simultaneous, so timing
    /// differs from the staggered default; the flag is therefore opt-in
    /// and never mixed into golden traces.
    fn on_heartbeat_tick(&mut self) {
        let n = self.crashed.len();
        self.logical_events += n as u64;
        self.process_promotions();
        let may_assign =
            self.queue.total_pending() > 0 || self.cfg.speculation.is_some();
        if may_assign {
            for node in 0..n {
                if self.free_map_slots[node] > 0 && self.node_up(node) {
                    self.service_map_slots(node as u32);
                }
            }
        }
        self.fill_reduce_slots();
        self.events.push(self.now + self.cfg.heartbeat, Ev::HeartbeatTick);
    }

    /// Start a map task on `node` reading `block`. `speculative` marks a
    /// backup attempt: it skips locality accounting (the original attempt
    /// already recorded the task) but still drives the DARE policy, since
    /// a backup is a genuinely scheduled map task.
    fn launch_map(&mut self, node: u32, job: u32, task: u32, block: BlockId, speculative: bool) {
        let node_id = NodeId(node);
        {
            let js = &mut self.jobs[job as usize];
            js.started_at[task as usize] = self.now;
            js.live_attempts[task as usize] += 1;
        }
        let attempt = self.jobs[job as usize].attempts[task as usize];
        // Read-path verification: opening a corrupt local replica fails
        // its checksum immediately. The replica is quarantined and the
        // attempt degrades to a remote fetch below — detection happens at
        // read time, never at injection time.
        if self.dfs.is_physically_present(node_id, block)
            && self.dfs.is_replica_corrupt(node_id, block)
        {
            self.stats.checksum_failures += 1;
            self.emit(TraceEvent::ChecksumFailed {
                node,
                block: block.0,
                job,
                task,
                attempt,
            });
            self.quarantine_and_repair(node, block);
        }
        self.running_on[node as usize].push((job, task));
        let present = self.dfs.is_physically_present(node_id, block);
        if self.cfg.record_timeline {
            self.timeline_idx
                .insert((job, task, attempt), self.timeline.len());
            self.timeline.push(TaskRecord {
                job,
                task,
                attempt,
                node,
                speculative,
                local_read: present,
                launched: self.now,
                read_done: None,
                finished: None,
            });
        }
        let bytes = self.dfs.namenode().block_size(block);
        let file = self.dfs.namenode().file_of(block);
        if let Some(sc) = self.scarlett.as_mut() {
            sc.record_access(file);
        }

        // Actual read locality (an unreported local replica counts as
        // node-local because the bytes are read from local disk).
        let level = if present {
            Locality::NodeLocal
        } else {
            let lookup = DfsLookup(&self.dfs);
            classify(block, node_id, &lookup, self.dfs.topology())
        };
        self.emit(TraceEvent::TaskLaunched {
            job,
            task,
            attempt,
            node,
            loc: trace_loc(level),
            speculative,
            local_read: present,
        });
        // Metrics: backup attempts don't re-count their task.
        if !speculative {
            let js = &mut self.jobs[job as usize];
            js.task_class[task as usize] = level;
            match level {
                Locality::NodeLocal => js.node_local += 1,
                Locality::RackLocal => js.rack_local += 1,
                Locality::Remote => js.remote += 1,
            }
        }

        // DARE hook: the node's policy sees every scheduled map task.
        let decision = self.policies[node as usize].on_map_task(PolicyCtx {
            block,
            file,
            block_bytes: bytes,
            is_local: present,
            rng: &mut self.policy_rngs[node as usize],
        });
        let mut replicate = false;
        if let ReplicationDecision::Replicate { evict } = decision {
            let mut evicted = 0u32;
            for v in evict {
                if let Some(visible) = self.dfs.evict_dynamic(node_id, v) {
                    evicted += 1;
                    if visible {
                        self.queue
                            .note_replica_removed(v, node_id, self.dfs.topology());
                    }
                    self.emit(TraceEvent::ReplicaEvicted { node, block: v.0 });
                }
            }
            self.emit(TraceEvent::ReplicaDecision {
                node,
                block: block.0,
                replicate: true,
                evictions: evicted,
            });
            replicate = true;
        }

        self.free_map_slots[node as usize] -= 1;

        if present {
            // Local read: disk capacity shared among concurrent readers.
            // A running scrub pass takes its budget off the top first
            // (floored at half the disk so an oversized budget can't
            // starve task reads outright).
            let readers = self.active_local_reads[node as usize] + 1;
            self.active_local_reads[node as usize] = readers;
            let mut cap = self.disk_caps_mbps[node as usize];
            if self.scrubbing[node as usize] {
                let scrub_mbps = self
                    .cfg
                    .scanner
                    .map_or(0.0, |s| s.bytes_per_sec as f64 / MB as f64);
                cap = (cap - scrub_mbps).max(cap * 0.5);
            }
            // Limplock and gray-disk derating compound; gray touches the
            // read path only (compute stays intact, unlike `slow_factor`
            // which also stretches `task_compute`).
            let share = cap
                / readers as f64
                / (self.slow_factor[node as usize] * self.gray_disk[node as usize]);
            let dur = SimDuration::from_secs_f64(bytes as f64 / (share * MB as f64));
            self.events.push(
                self.now + dur,
                Ev::LocalReadDone {
                    node,
                    job,
                    task,
                    attempt,
                },
            );
        } else {
            // Remote fetch through the flow simulator.
            let Some(src) = self.pick_source(block, node_id) else {
                // Every replica sits on a node that crashed but has not
                // been declared yet: nothing can serve the read right now.
                // Abort the attempt with a forced backoff (an instant
                // retry would spin until detection or rejoin).
                if speculative {
                    // The backup's pre-checked source was the local
                    // replica the checksum just quarantined: tear down
                    // only this backup, leaving the original running.
                    self.running_on[node as usize].retain(|&(j, t)| !(j == job && t == task));
                    self.free_map_slots[node as usize] += 1;
                    let js = &mut self.jobs[job as usize];
                    js.live_attempts[task as usize] =
                        js.live_attempts[task as usize].saturating_sub(1);
                    self.emit(TraceEvent::TaskAborted {
                        job,
                        task,
                        attempt,
                        node,
                    });
                    return;
                }
                self.abort_attempt(job, task, true);
                return;
            };
            let cross = self.dfs.topology().crosses_racks(src, node_id);
            let hops = self.dfs.topology().base_hops(src, node_id).max(1);
            let latency = SimDuration::from_secs_f64(
                self.cfg.profile.rtt.sample_secs(&mut self.rtt_rng) * hops as f64 / 2.0,
            );
            let fid = self.flows.start(self.now, src, node_id, bytes, cross);
            self.emit(TraceEvent::FlowStarted {
                flow: fid.0,
                kind: FlowKind::Fetch,
                src: src.0,
                dst: node,
                bytes,
                cross_rack: cross,
                ctx: FlowCtx::Fetch { job, task, attempt },
            });
            self.fetches.insert(
                fid,
                Fetch {
                    node,
                    src: src.0,
                    job,
                    task,
                    attempt,
                    replicate,
                    latency,
                },
            );
            self.remote_bytes_fetched += bytes;
            self.schedule_netcheck();
        }
    }

    /// Choose the replica a remote reader fetches from: same-rack replicas
    /// preferred, ties broken uniformly at random. `None` when no live
    /// node can serve the block (every visible replica is on a crashed or
    /// declared-dead node).
    fn pick_source(&mut self, block: BlockId, reader: NodeId) -> Option<NodeId> {
        let locs = self.dfs.visible_locations(block);
        let topo = self.dfs.topology();
        // One pass over the replica list into reusable buffers, preserving
        // the list's order so the rng draw is unchanged.
        self.src_same_rack.clear();
        self.src_any.clear();
        let mut reader_holds = false;
        for &l in locs {
            if l == reader {
                reader_holds = true;
                continue;
            }
            if !self.node_up(l.idx()) {
                continue; // silent or dead nodes serve nothing
            }
            self.src_any.push(l);
            if topo.same_rack(l, reader) {
                self.src_same_rack.push(l);
            }
        }
        let pool: &[NodeId] = if self.src_same_rack.is_empty() {
            &self.src_any
        } else {
            &self.src_same_rack
        };
        if pool.is_empty() {
            // Every replica is on the reader itself (can happen transiently
            // after failures) — read "remotely" from itself at NIC speed.
            return reader_holds.then_some(reader);
        }
        Some(pool[self.fetch_rng.index(pool.len())])
    }

    /// True when launching a map for `block` on `reader` could actually
    /// read bytes right now: the block is physically on the reader, or
    /// some visible replica sits on a live node. Stale locations pointing
    /// at silently crashed nodes don't count.
    fn has_live_source(&self, block: BlockId, reader: NodeId) -> bool {
        if self.dfs.is_physically_present(reader, block) {
            return true;
        }
        self.dfs
            .visible_locations(block)
            .iter()
            .any(|l| *l == reader || self.node_up(l.idx()))
    }

    /// Cancel a flow and record it for the current NetCheck batch (see
    /// `batch_cancelled`). Every teardown of an in-flight flow must go
    /// through here so the orphan-flow check can tell a legitimate
    /// same-batch cancellation apart from bookkeeping drift.
    fn cancel_flow(&mut self, fid: FlowId, kind: FlowKind) {
        self.flows.cancel(self.now, fid);
        self.batch_cancelled.push(fid.0);
        self.emit(TraceEvent::FlowCancelled { flow: fid.0, kind });
    }

    fn schedule_netcheck(&mut self) {
        if let Some((t, _)) = self.flows.next_completion() {
            let t = t.max(self.now);
            if self.next_netcheck.is_none_or(|cur| t < cur) {
                self.events.push(t, Ev::NetCheck);
                self.next_netcheck = Some(t);
            }
        }
    }

    fn on_net_check(&mut self) -> Result<(), crate::SimError> {
        self.next_netcheck = None;
        let done = self.flows.collect_completed(self.now);
        self.batch_cancelled.clear();
        // Start times index-aligned with `done`; only materialized when
        // tracing (flow durations for `flow_finished` events).
        let starts: Vec<SimTime> = if self.tracer.is_some() {
            self.flows
                .completed_starts()
                .iter()
                .map(|&(_, t)| t)
                .collect()
        } else {
            Vec::new()
        };
        let flow_dur =
            |starts: &[SimTime], i: usize, now: SimTime| now.saturating_since(starts[i]).as_micros();
        for (i, fid) in done.into_iter().enumerate() {
            if let Some(pt) = self.proactive_flows.remove(&fid) {
                if self.tracer.is_some() {
                    let bytes = self.dfs.namenode().block_size(pt.block);
                    self.emit(TraceEvent::FlowFinished {
                        flow: fid.0,
                        kind: FlowKind::Proactive,
                        src: pt.src,
                        dst: pt.dst,
                        bytes,
                        dur_us: flow_dur(&starts, i, self.now),
                        ctx: FlowCtx::Block { block: pt.block.0 },
                    });
                }
                self.on_proactive_done(pt);
                continue;
            }
            if let Some(rx) = self.recovery_flows.remove(&fid) {
                if self.tracer.is_some() {
                    let bytes = self.dfs.namenode().block_size(rx.block);
                    self.emit(TraceEvent::FlowFinished {
                        flow: fid.0,
                        kind: FlowKind::Recovery,
                        src: rx.src,
                        dst: rx.dst,
                        bytes,
                        dur_us: flow_dur(&starts, i, self.now),
                        ctx: FlowCtx::Block { block: rx.block.0 },
                    });
                }
                self.on_recovery_done(rx);
                continue;
            }
            let Some(f) = self.fetches.remove(&fid) else {
                // A completion earlier in this batch may have torn the
                // flow down (job failure aborting a sibling fetch,
                // quarantine cancelling a tainted repair): its record is
                // gone but the fid was already drained into `done`. Only
                // an untracked disappearance is bookkeeping drift.
                if self.batch_cancelled.contains(&fid.0) {
                    continue;
                }
                return Err(crate::SimError::OrphanFlow {
                    now: self.now,
                    flow: fid.0,
                });
            };
            let js = &self.jobs[f.job as usize];
            let block = js.blocks[f.task as usize];
            if self.tracer.is_some() {
                let bytes = self.dfs.namenode().block_size(block);
                self.emit(TraceEvent::FlowFinished {
                    flow: fid.0,
                    kind: FlowKind::Fetch,
                    src: f.src,
                    dst: f.node,
                    bytes,
                    dur_us: flow_dur(&starts, i, self.now),
                    ctx: FlowCtx::Fetch {
                        job: f.job,
                        task: f.task,
                        attempt: f.attempt,
                    },
                });
            }
            // Read-path verification of the fetched bytes: a corrupt
            // source replica fails the reader-side checksum when the
            // stream completes. The source is quarantined and the attempt
            // retries — its next launch picks a different source because
            // quarantine removed this one from the visible set.
            if self.dfs.is_replica_corrupt(NodeId(f.src), block) {
                self.stats.checksum_failures += 1;
                self.emit(TraceEvent::ChecksumFailed {
                    node: f.src,
                    block: block.0,
                    job: f.job,
                    task: f.task,
                    attempt: f.attempt,
                });
                self.quarantine_and_repair(f.src, block);
                if f.replicate {
                    // The garbage bytes are never kept as a dynamic
                    // replica; roll back the policy's bookkeeping.
                    self.policies[f.node as usize].forget(block);
                }
                let ji = f.job as usize;
                let current = self.jobs[ji].attempts[f.task as usize] == f.attempt;
                if current && !self.jobs[ji].done[f.task as usize] && !self.jobs[ji].failed {
                    self.abort_attempt(f.job, f.task, false);
                } else {
                    // Superseded (a backup or the original already
                    // committed, or the attempt was aborted): release
                    // this reader's registration if it still exists.
                    let ri = f.node as usize;
                    if let Some(p) = self.running_on[ri]
                        .iter()
                        .position(|&(j, t)| j == f.job && t == f.task)
                    {
                        self.running_on[ri].swap_remove(p);
                        if self.node_up(ri) {
                            self.free_map_slots[ri] += 1;
                        }
                        self.emit(TraceEvent::TaskAborted {
                            job: f.job,
                            task: f.task,
                            attempt: f.attempt,
                            node: f.node,
                        });
                        let live = &mut self.jobs[ji].live_attempts[f.task as usize];
                        *live = live.saturating_sub(1);
                    }
                }
                continue;
            }
            if f.replicate {
                // The bytes are here; keep them (DNA_DYNREPL). On failure
                // (e.g. the block arrived by another path meanwhile) roll
                // back the policy's bookkeeping.
                if self.dfs.insert_dynamic(self.now, NodeId(f.node), block) {
                    self.emit(TraceEvent::ReplicaCommitted {
                        node: f.node,
                        block: block.0,
                    });
                } else {
                    self.policies[f.node as usize].forget(block);
                }
            }
            if self.jobs[f.job as usize].attempts[f.task as usize] != f.attempt {
                continue; // attempt aborted by a failure while fetching
            }
            self.mark_timeline(f.job, f.task, f.attempt, true, false);
            self.emit(TraceEvent::TaskReadDone {
                job: f.job,
                task: f.task,
                attempt: f.attempt,
                node: f.node,
            });
            let compute = self.task_compute(f.job, f.node);
            self.events.push(
                self.now + f.latency + compute,
                Ev::ComputeDone {
                    node: f.node,
                    job: f.job,
                    task: f.task,
                    attempt: f.attempt,
                },
            );
        }
        self.batch_cancelled.clear();
        self.schedule_netcheck();
        Ok(())
    }

    fn on_local_read_done(&mut self, node: u32, job: u32, task: u32, attempt: u32) {
        if self.crashed[node as usize] {
            return; // zombie: the node went silent mid-read
        }
        if self.jobs[job as usize].attempts[task as usize] != attempt {
            return; // attempt aborted by a failure mid-read
        }
        debug_assert!(self.active_local_reads[node as usize] > 0);
        self.active_local_reads[node as usize] -= 1;
        self.mark_timeline(job, task, attempt, true, false);
        self.emit(TraceEvent::TaskReadDone {
            job,
            task,
            attempt,
            node,
        });
        let compute = self.task_compute(job, node);
        self.events.push(
            self.now + compute,
            Ev::ComputeDone {
                node,
                job,
                task,
                attempt,
            },
        );
    }

    /// Record a timeline milestone for an attempt (no-op unless tracing).
    fn mark_timeline(&mut self, job: u32, task: u32, attempt: u32, read: bool, finish: bool) {
        if !self.cfg.record_timeline {
            return;
        }
        if let Some(&i) = self.timeline_idx.get(&(job, task, attempt)) {
            if read {
                self.timeline[i].read_done = Some(self.now);
            }
            if finish {
                self.timeline[i].finished = Some(self.now);
            }
        }
    }

    /// Per-task compute time: the job's base compute ±10 % jitter, scaled
    /// by the running node's health factor.
    fn task_compute(&mut self, job: u32, node: u32) -> SimDuration {
        let base = self.jobs[job as usize].map_compute;
        base.mul_f64(self.jitter_rng.uniform_range(0.9, 1.1) * self.slow_factor[node as usize])
    }

    /// Try to launch one speculative backup attempt on `node`. Returns true
    /// when a backup was launched (the caller may offer the slot again).
    fn try_speculate(&mut self, node: u32) -> bool {
        let Some(spec) = self.cfg.speculation else {
            return false;
        };
        if !self.node_up(node as usize) || self.free_map_slots[node as usize] == 0 {
            return false;
        }
        // A job is speculation-eligible when all its maps are handed out
        // but some attempts straggle well past the job's average. The
        // common case (nothing straggling anywhere) must stay O(jobs):
        // `oldest_live_start` lower-bounds every live attempt's start, so
        // a job whose oldest attempt is under threshold needs no scan.
        for ji in 0..self.queue.len() {
            let (job, eligible) = {
                let j = &self.queue.jobs()[ji];
                (j.id.0, j.pending().is_empty() && j.running_maps() > 0)
            };
            if !eligible {
                continue;
            }
            let js = &self.jobs[job as usize];
            if js.maps_done == 0 {
                continue; // no baseline duration yet
            }
            let avg = js.completed_secs / js.maps_done as f64;
            let threshold = (avg * spec.slowdown_factor).max(spec.min_elapsed_secs);
            if self
                .now
                .saturating_since(js.oldest_live_start)
                .as_secs_f64()
                <= threshold
            {
                continue; // even the oldest attempt is not straggling
            }
            let straggler = (0..js.blocks.len()).find(|&t| {
                !js.done[t]
                    && js.live_attempts[t] == 1
                    && self.now.saturating_since(js.started_at[t]).as_secs_f64() > threshold
                    // never co-locate the backup with the straggler
                    && !self.running_on[node as usize].contains(&(job, t as u32))
                    // a backup must have something live to read from
                    && self.has_live_source(js.blocks[t], NodeId(node))
            });
            if let Some(task) = straggler {
                let block = js.blocks[task];
                self.speculative_launches += 1;
                self.launch_map(node, job, task as u32, block, true);
                return true;
            }
            // Scan came up empty: tighten the bound to the true minimum so
            // the next offer can reject cheaply. A task can only become
            // live via a fresh launch (start >= now), which keeps the
            // bound conservative.
            let min_start = (0..js.blocks.len())
                .filter(|&t| !js.done[t] && js.live_attempts[t] == 1)
                .map(|t| js.started_at[t])
                .min()
                .unwrap_or(self.now);
            self.jobs[job as usize].oldest_live_start = min_start;
        }
        false
    }

    fn on_compute_done(&mut self, node: u32, job: u32, task: u32, attempt: u32) {
        if self.crashed[node as usize] {
            return; // zombie: the node went silent while computing
        }
        if self.jobs[job as usize].attempts[task as usize] != attempt {
            return; // stale completion from an aborted attempt
        }
        self.running_on[node as usize].retain(|&(j, t)| !(j == job && t == task));
        self.free_map_slots[node as usize] += 1;
        self.mark_timeline(job, task, attempt, false, true);
        {
            let js = &mut self.jobs[job as usize];
            js.live_attempts[task as usize] = js.live_attempts[task as usize].saturating_sub(1);
            if js.done[task as usize] {
                // The other attempt already committed; this one is wasted
                // work (Hadoop would have killed it).
                return;
            }
            js.done[task as usize] = true;
            if js.live_attempts[task as usize] > 0 {
                // The straggler is still running somewhere: the backup (or
                // the original) just won the race.
                self.speculative_wins += 1;
            }
        }
        let dur_us = self
            .now
            .saturating_since(self.jobs[job as usize].started_at[task as usize])
            .as_micros();
        self.emit(TraceEvent::TaskCommitted {
            job,
            task,
            attempt,
            node,
            dur_us,
        });
        self.queue.on_map_complete(JobId(job));
        let js = &mut self.jobs[job as usize];
        js.completed_secs += self
            .now
            .saturating_since(js.started_at[task as usize])
            .as_secs_f64();
        js.maps_done += 1;
        if js.maps_done as usize == js.blocks.len() {
            let per_reducer = reduce_duration(
                js.output_bytes,
                js.reduces,
                js.map_compute,
                self.cfg.profile.network.mean(),
                self.cfg.profile.disk.mean(),
                self.cfg.dfs.replication_factor,
            );
            self.queue.retire_job(JobId(job));
            for _ in 0..js.reduces {
                self.pending_reduces.push_back((job, per_reducer));
            }
            self.fill_reduce_slots();
        }
        // Out-of-band heartbeat: the freed slot is offered immediately.
        self.events.push(
            self.now,
            Ev::Heartbeat {
                node,
                periodic: false,
                epoch: self.node_epoch[node as usize],
            },
        );
    }

    /// Hand pending reduce tasks to free reduce slots (FIFO, any node —
    /// reducers pull from every map output, so placement has no locality).
    fn fill_reduce_slots(&mut self) {
        while let Some(&(job, dur)) = self.pending_reduces.front() {
            // Lowest-index live node with a free slot, via the sorted
            // free-node index (same pick as the old full scan).
            let Some(node) = self
                .reduce_free_nodes
                .iter()
                .find(|&&i| self.node_up(i as usize))
                .map(|&i| i as usize)
            else {
                return;
            };
            self.pending_reduces.pop_front();
            self.free_reduce_slots[node] -= 1;
            if self.free_reduce_slots[node] == 0 {
                self.reduce_free_nodes.remove(&(node as u32));
            }
            self.running_reduces[node] += 1;
            self.events.push(
                self.now + dur,
                Ev::ReduceDone {
                    node: node as u32,
                    job,
                },
            );
        }
    }

    fn on_reduce_done(&mut self, node: u32, job: u32) {
        let ni = node as usize;
        self.running_reduces[ni] = self.running_reduces[ni].saturating_sub(1);
        if self.node_up(ni) {
            self.free_reduce_slots[ni] += 1;
            self.reduce_free_nodes.insert(node);
        }
        let js = &mut self.jobs[job as usize];
        debug_assert!(!js.failed, "failed jobs never reach the reduce phase");
        js.reduces_done += 1;
        if js.reduces_done == js.reduces {
            let js = &self.jobs[job as usize];
            let arrival = js.arrival;
            self.outcomes.push(dare_metrics::JobOutcome {
                id: job,
                status: dare_metrics::JobStatus::Completed,
                arrival: js.arrival,
                completed: self.now,
                maps: js.blocks.len() as u32,
                node_local: js.node_local,
                rack_local: js.rack_local,
                remote: js.remote,
                dedicated: js.dedicated,
            });
            self.finished += 1;
            self.emit(TraceEvent::JobCompleted {
                job,
                dur_us: self.now.saturating_since(arrival).as_micros(),
            });
        }
        self.fill_reduce_slots();
    }

    /// Injected node crash: the node goes *silent*. Its running attempts
    /// become zombies (still registered, invisible to the master), flows
    /// touching it stop, and nothing else happens until the heartbeat
    /// timeout declares it dead — or it rejoins first.
    fn on_node_crash(&mut self, node: u32, permanent: bool, down_secs: u64) {
        let ni = node as usize;
        if self.crashed[ni] || self.declared[ni] {
            return; // idempotent: overlapping injections (rack + node)
        }
        self.crashed[ni] = true;
        self.node_epoch[ni] += 1;
        self.active_local_reads[ni] = 0;
        self.scrubbing[ni] = false; // the in-flight pass dies with the node
        self.emit(TraceEvent::NodeCrashed { node, permanent });

        // Fetches INTO the node die with it; the zombie attempts stay in
        // `running_on` until declaration, but stop consuming bandwidth.
        let mut into: Vec<FlowId> = self
            .fetches
            .iter()
            .filter(|(_, f)| f.node == node)
            .map(|(&fid, _)| fid)
            .collect();
        into.sort_unstable(); // HashMap order is not deterministic
        for fid in into {
            self.fetches.remove(&fid);
            self.cancel_flow(fid, FlowKind::Fetch);
        }

        // Fetches *sourced* from the node but running elsewhere: the
        // reader sees its stream break immediately, so those attempts
        // abort and retry right away. A duplicate attempt of a task that
        // already committed (its backup or original won the race) is
        // wasted work — tear down just that fetch, no retry.
        let mut broken: Vec<(FlowId, u32, u32, u32)> = self
            .fetches
            .iter()
            .filter(|(_, f)| f.src == node)
            .map(|(&fid, f)| (fid, f.job, f.task, f.node))
            .collect();
        broken.sort_unstable_by_key(|&(fid, job, task, _)| (job, task, fid));
        for (fid, job, task, reader) in broken {
            if !self.fetches.contains_key(&fid) {
                continue; // torn down by an earlier abort of the same task
            }
            let js = &self.jobs[job as usize];
            if js.failed || js.done[task as usize] {
                if self.fetches.remove(&fid).is_some() {
                    self.cancel_flow(fid, FlowKind::Fetch);
                    self.emit(TraceEvent::TaskAborted {
                        job,
                        task,
                        attempt: self.jobs[job as usize].attempts[task as usize],
                        node: reader,
                    });
                    let ri = reader as usize;
                    if let Some(p) = self.running_on[ri].iter().position(|&(j, t)| j == job && t == task) {
                        self.running_on[ri].swap_remove(p);
                        if self.node_up(ri) {
                            self.free_map_slots[ri] += 1;
                        }
                    }
                    let live = &mut self.jobs[job as usize].live_attempts[task as usize];
                    *live = live.saturating_sub(1);
                }
                continue;
            }
            self.abort_attempt(job, task, false);
        }

        // Proactive pushes to the node are cancelled; the next epoch
        // reconciles.
        let mut dead_pro: Vec<FlowId> = self
            .proactive_flows
            .iter()
            .filter(|(_, t)| t.dst == node)
            .map(|(&fid, _)| fid)
            .collect();
        dead_pro.sort_unstable();
        for fid in dead_pro {
            if let Some(t) = self.proactive_flows.remove(&fid) {
                let bytes = self.dfs.namenode().block_size(t.block);
                self.inflight_proactive[t.dst as usize] =
                    self.inflight_proactive[t.dst as usize].saturating_sub(bytes);
                self.cancel_flow(fid, FlowKind::Proactive);
            }
        }

        // Recovery transfers touching the node are cancelled and their
        // blocks put back in the queue.
        let mut rec: Vec<FlowId> = self
            .recovery_flows
            .iter()
            .filter(|(_, r)| r.src == node || r.dst == node)
            .map(|(&fid, _)| fid)
            .collect();
        rec.sort_unstable(); // repair-queue seq numbers depend on this order
        for fid in rec {
            if let Some(r) = self.recovery_flows.remove(&fid) {
                self.cancel_flow(fid, FlowKind::Recovery);
                self.note_block_under_replicated(r.block);
            }
        }

        if permanent {
            // The disk dies with the node. Its replicas stay *visible*
            // until declaration — the master doesn't know yet — so reads
            // routed at them fail over via `pick_source`/`has_live_source`.
            self.dfs.wipe_node(NodeId(node));
        } else {
            self.events
                .push(self.now + SimDuration::from_secs(down_secs), Ev::NodeRejoin(node));
        }

        // The master only learns of the silence after `detect_heartbeats`
        // missed heartbeats (Hadoop's 10x-heartbeat expiry).
        let timeout = self
            .cfg
            .heartbeat
            .mul_f64(self.cfg.faults.detect_heartbeats as f64);
        self.events.push(
            self.now + timeout,
            Ev::DeclareDead {
                node,
                epoch: self.node_epoch[ni],
            },
        );
        self.pump_recovery();
    }

    /// The missed-heartbeat timeout fired: the master gives up on the
    /// node. Its attempts are re-queued, its replicas dropped from the
    /// namenode's map, and the under-replicated blocks queued for repair.
    fn on_declare_dead(&mut self, node: u32, epoch: u32) {
        let ni = node as usize;
        if !self.crashed[ni] || self.declared[ni] || self.node_epoch[ni] != epoch {
            return; // rejoined before the timer fired, or already declared
        }
        self.declared[ni] = true;
        self.stats.nodes_declared_dead += 1;
        self.free_map_slots[ni] = 0;
        self.free_reduce_slots[ni] = 0;
        self.reduce_free_nodes.remove(&node);

        // The JobTracker re-queues everything that was running there.
        let victims: Vec<(u32, u32)> = std::mem::take(&mut self.running_on[ni]);
        for (job, task) in victims {
            // The dead node's own registration is already out of
            // `running_on`, so `kill_attempt` can't see it: record the
            // abort of this zombie here.
            self.emit(TraceEvent::TaskAborted {
                job,
                task,
                attempt: self.jobs[job as usize].attempts[task as usize],
                node,
            });
            let js = &self.jobs[job as usize];
            if js.failed || js.done[task as usize] {
                // Committed elsewhere (a backup won) or the job is gone:
                // drop the zombie registration without a retry.
                let live = &mut self.jobs[job as usize].live_attempts[task as usize];
                *live = live.saturating_sub(1);
                continue;
            }
            self.abort_attempt(job, task, false);
        }

        // The namenode drops the node's replicas; re-replication is real,
        // prioritized work, not an instant fix-up.
        let under = self.dfs.mark_node_dead(NodeId(node));
        self.emit(TraceEvent::NodeDeclaredDead {
            node,
            under_replicated: under.len() as u32,
        });
        // Replica sets changed wholesale: rebuild the queue's locality
        // index against the new merged lists.
        self.queue
            .rebuild_index(&DfsLookup(&self.dfs), self.dfs.topology());
        for b in under {
            self.note_block_under_replicated(b);
        }
        self.pump_recovery();
    }

    /// A transiently crashed node comes back: fresh epoch, full slots, a
    /// block report reconciling its surviving replicas, and heartbeats
    /// resume. Whatever ran there when it went down was lost.
    fn on_node_rejoin(&mut self, node: u32) {
        let ni = node as usize;
        if !self.crashed[ni] {
            return;
        }
        self.crashed[ni] = false;
        self.declared[ni] = false;
        self.node_epoch[ni] += 1;
        self.stats.nodes_rejoined += 1;

        // The tracker restarts the node's interrupted attempts elsewhere.
        let zombies: Vec<(u32, u32)> = std::mem::take(&mut self.running_on[ni]);
        for (job, task) in zombies {
            // As in `on_declare_dead`: this node's registration is already
            // gone from `running_on`, so record the zombie's abort here.
            self.emit(TraceEvent::TaskAborted {
                job,
                task,
                attempt: self.jobs[job as usize].attempts[task as usize],
                node,
            });
            let js = &self.jobs[job as usize];
            if js.failed || js.done[task as usize] {
                let live = &mut self.jobs[job as usize].live_attempts[task as usize];
                *live = live.saturating_sub(1);
                continue;
            }
            self.abort_attempt(job, task, false);
        }
        self.free_map_slots[ni] = self.cfg.profile.map_slots_per_node;
        self.free_reduce_slots[ni] = self
            .cfg
            .profile
            .reduce_slots_per_node
            .saturating_sub(self.running_reduces[ni]);
        if self.free_reduce_slots[ni] > 0 {
            self.reduce_free_nodes.insert(node);
        } else {
            self.reduce_free_nodes.remove(&node);
        }

        // Block report: surviving replicas the namenode dropped at
        // declaration become visible again, and may satisfy queued
        // recovery (or finally provide a source for stalled repairs).
        let restored = self.dfs.rejoin_node(NodeId(node));
        self.emit(TraceEvent::NodeRejoined {
            node,
            restored: restored.len() as u32,
        });
        for &b in &restored {
            self.queue.note_replica_added(b, NodeId(node), self.dfs.topology());
            self.note_block_under_replicated(b);
        }

        // Heartbeats resume immediately under the fresh epoch (under
        // batched heartbeats the global tick already covers this node).
        if !self.cfg.batched_heartbeats {
            self.events.push(
                self.now,
                Ev::Heartbeat {
                    node,
                    periodic: true,
                    epoch: self.node_epoch[ni],
                },
            );
        }
        // The background scanner restarts its chain under the new epoch.
        if self.cfg.scanner.is_some() {
            self.events.push(
                self.now,
                Ev::ScrubStart {
                    node,
                    epoch: self.node_epoch[ni],
                },
            );
        }
        self.pump_recovery();
    }

    /// Kill a task's live attempts: bump the attempt id so in-flight
    /// events go stale, cancel its fetch flows, refund surviving runners'
    /// slots, and roll back the attempt's locality accounting.
    fn kill_attempt(&mut self, job: u32, task: u32) {
        let aborted = self.jobs[job as usize].attempts[task as usize];
        let js = &mut self.jobs[job as usize];
        js.attempts[task as usize] += 1;
        // Undo the aborted attempt's locality accounting; a re-execution
        // records its own class when it launches. Tasks with no live
        // attempt (already waiting on a retry) rolled back when killed.
        if js.live_attempts[task as usize] > 0 {
            match js.task_class[task as usize] {
                Locality::NodeLocal => js.node_local -= 1,
                Locality::RackLocal => js.rack_local -= 1,
                Locality::Remote => js.remote -= 1,
            }
        }

        // Cancel every in-flight fetch of this task (the original and any
        // speculative duplicate), refunding surviving runners' slots.
        let mut fetch_fids: Vec<FlowId> = self
            .fetches
            .iter()
            .filter(|(_, f)| f.job == job && f.task == task)
            .map(|(&fid, _)| fid)
            .collect();
        fetch_fids.sort_unstable(); // HashMap order is not deterministic
        for fid in fetch_fids {
            if let Some(f) = self.fetches.remove(&fid) {
                self.cancel_flow(fid, FlowKind::Fetch);
                self.emit(TraceEvent::TaskAborted {
                    job,
                    task,
                    attempt: aborted,
                    node: f.node,
                });
                self.running_on[f.node as usize].retain(|&(j, t)| !(j == job && t == task));
                if self.node_up(f.node as usize) {
                    self.free_map_slots[f.node as usize] += 1;
                }
            }
        }
        // Attempts in their read/compute phase: clear every registry entry.
        for n in 0..self.running_on.len() {
            let before = self.running_on[n].len();
            self.running_on[n].retain(|&(j, t)| !(j == job && t == task));
            let removed = before - self.running_on[n].len();
            if removed > 0 && self.node_up(n) {
                self.free_map_slots[n] += removed as u32;
            }
            for _ in 0..removed {
                self.emit(TraceEvent::TaskAborted {
                    job,
                    task,
                    attempt: aborted,
                    node: n as u32,
                });
            }
        }
        self.jobs[job as usize].live_attempts[task as usize] = 0;
    }

    /// Abort one task attempt (fault path) and schedule a retry — or fail
    /// the whole job once the retry budget is exhausted. `forced_backoff`
    /// delays even the first retry, for failures that would otherwise
    /// respin instantly (e.g. no live fetch source anywhere).
    fn abort_attempt(&mut self, job: u32, task: u32, forced_backoff: bool) {
        self.kill_attempt(job, task);
        let js = &self.jobs[job as usize];
        if js.failed {
            return;
        }
        self.reexecuted_tasks += 1;
        self.stats.tasks_retried += 1;
        let tries = js.attempts[task as usize];
        if tries >= self.cfg.faults.max_task_attempts {
            self.stats.tasks_failed += 1;
            self.fail_job(job);
            return;
        }
        let backoff = self.cfg.faults.retry_backoff_secs;
        let delay_secs = if forced_backoff {
            (backoff * tries as u64).max(1)
        } else if tries <= 1 {
            0 // first failure: immediate re-queue, like a Hadoop TT re-run
        } else {
            backoff * (tries as u64 - 1)
        };
        if delay_secs == 0 {
            self.requeue_now(job, task);
        } else {
            self.events.push(
                self.now + SimDuration::from_secs(delay_secs),
                Ev::TaskRetry {
                    job,
                    task,
                    attempt: tries,
                },
            );
        }
    }

    /// Put the task back in the scheduler's pending set (and the locality
    /// index, under the block's current locations).
    fn requeue_now(&mut self, job: u32, task: u32) {
        let block = self.jobs[job as usize].blocks[task as usize];
        self.emit(TraceEvent::TaskRequeued {
            job,
            task,
            attempt: self.jobs[job as usize].attempts[task as usize],
        });
        self.queue.requeue_task(
            JobId(job),
            TaskId(task),
            block,
            &DfsLookup(&self.dfs),
            self.dfs.topology(),
        );
    }

    fn on_task_retry(&mut self, job: u32, task: u32, attempt: u32) {
        let js = &self.jobs[job as usize];
        if js.failed || js.done[task as usize] || js.attempts[task as usize] != attempt {
            return; // superseded while the backoff timer ran
        }
        self.requeue_now(job, task);
    }

    /// A task exhausted its retry budget: the job fails cleanly. Its
    /// remaining attempts are killed, its pending work leaves the queue,
    /// and a `Failed` outcome is recorded.
    fn fail_job(&mut self, job: u32) {
        let ji = job as usize;
        if self.jobs[ji].failed {
            return;
        }
        self.jobs[ji].failed = true;
        self.stats.jobs_failed += 1;
        for t in 0..self.jobs[ji].blocks.len() {
            if !self.jobs[ji].done[t] && self.jobs[ji].live_attempts[t] > 0 {
                self.kill_attempt(job, t as u32);
            }
        }
        self.queue.abandon_job(JobId(job));
        let js = &self.jobs[ji];
        self.outcomes.push(dare_metrics::JobOutcome {
            id: job,
            status: dare_metrics::JobStatus::Failed,
            arrival: js.arrival,
            completed: self.now,
            maps: js.blocks.len() as u32,
            node_local: js.node_local,
            rack_local: js.rack_local,
            remote: js.remote,
            dedicated: js.dedicated,
        });
        self.finished += 1;
        self.emit(TraceEvent::JobFailed { job });
    }

    /// Injected silent corruption lands: flip the replica's integrity
    /// bit. The namenode, scheduler, and policies see nothing until a
    /// read or a scrub pass checksums the replica.
    fn on_corrupt_replica(&mut self, node: u32, block: u64) {
        let b = BlockId(block);
        if !self.dfs.corrupt_replica(NodeId(node), b) {
            return; // no resident replica: the rot hit unallocated sectors
        }
        self.stats.replicas_corrupted += 1;
        let dynamic = self.dfs.datanode(NodeId(node)).holds_dynamic(b);
        self.emit(TraceEvent::ReplicaCorrupted {
            node,
            block,
            dynamic,
        });
    }

    /// Begin a background scrub pass: measure the resident bytes and
    /// schedule the pass end at the scrub budget's read rate. While the
    /// pass runs, task reads on the node share the remaining bandwidth.
    fn on_scrub_start(&mut self, node: u32, epoch: u32) {
        let ni = node as usize;
        if epoch != self.node_epoch[ni] || !self.node_up(ni) {
            return; // chain superseded by a crash (rejoin restarts it)
        }
        let Some(sc) = self.cfg.scanner else { return };
        let bytes = self.dfs.datanode(NodeId(node)).total_bytes();
        if bytes == 0 {
            // Empty disk: nothing to read, straight to the next pass.
            self.events
                .push(self.now + sc.period, Ev::ScrubStart { node, epoch });
            return;
        }
        self.scrubbing[ni] = true;
        let dur = SimDuration::from_secs_f64(bytes as f64 / sc.bytes_per_sec as f64);
        self.events.push(
            self.now + dur,
            Ev::ScrubDone {
                node,
                epoch,
                pass_bytes: bytes,
            },
        );
    }

    /// A scrub pass finished: every replica corrupt at pass end fails its
    /// checksum and is quarantined — the scanner catches rot that no read
    /// touched. The next pass starts after the configured idle period.
    fn on_scrub_done(&mut self, node: u32, epoch: u32, pass_bytes: u64) {
        let ni = node as usize;
        if epoch != self.node_epoch[ni] || !self.node_up(ni) {
            return; // the node crashed mid-pass
        }
        self.scrubbing[ni] = false;
        self.stats.scrub_bytes += pass_bytes;
        let found = self.dfs.datanode(NodeId(node)).corrupt_blocks();
        self.stats.scrub_detections += found.len() as u64;
        self.emit(TraceEvent::ScrubComplete {
            node,
            bytes: pass_bytes,
            found: found.len() as u32,
        });
        for b in found {
            self.quarantine_and_repair(node, b);
        }
        if let Some(sc) = self.cfg.scanner {
            self.events
                .push(self.now + sc.period, Ev::ScrubStart { node, epoch });
        }
    }

    /// Drop a detected-corrupt replica: remove it from the namenode's
    /// location map and the node's disk, mirror the removal into the
    /// scheduler's locality index, and route primary losses into the
    /// fewest-replicas-first repair queue. A corrupt DARE dynamic replica
    /// is evicted, never repaired — the policy re-creates it on demand.
    fn quarantine_and_repair(&mut self, node: u32, b: BlockId) {
        let Some(q) = self.dfs.quarantine_replica(NodeId(node), b) else {
            return;
        };
        self.stats.replicas_quarantined += 1;
        let (dynamic, was_visible) = match q {
            dare_dfs::Quarantined::Primary { was_visible } => (false, was_visible),
            dare_dfs::Quarantined::Dynamic { was_visible } => (true, was_visible),
        };
        if was_visible {
            self.queue
                .note_replica_removed(b, NodeId(node), self.dfs.topology());
        }
        self.emit(TraceEvent::ReplicaQuarantined {
            node,
            block: b.0,
            dynamic,
        });
        // The quarantined replica may be feeding an in-flight repair.
        // Those bytes were read from a corrupt copy, so the transfer is
        // cancelled rather than committed — found by the model checker
        // as a lost-blocks-unrecoverable violation: the tainted arrival
        // used to resurrect a block already declared lost.
        let mut tainted: Vec<FlowId> = self
            .recovery_flows
            .iter()
            .filter(|(_, r)| r.src == node && r.block == b)
            .map(|(&fid, _)| fid)
            .collect();
        tainted.sort_unstable();
        for fid in tainted {
            if self.recovery_flows.remove(&fid).is_some() {
                self.cancel_flow(fid, FlowKind::Recovery);
            }
        }
        if dynamic {
            // Eviction accounting: the policy forgets the replica so its
            // budget and recency bookkeeping match the disk again.
            self.policies[node as usize].forget(b);
            return;
        }
        self.note_block_under_replicated_cause(b, LossCause::Corruption);
        if self.recovery_queued.contains(&b.0) && !self.repair_started.contains_key(&b.0) {
            self.repair_started.insert(b.0, self.now);
        }
        self.pump_recovery();
    }

    /// A block dropped below its replication factor: queue it for repair,
    /// fewest-replicas-first. A block with no surviving physical copy
    /// anywhere is recorded as lost instead, attributed to `cause`.
    fn note_block_under_replicated(&mut self, b: BlockId) {
        self.note_block_under_replicated_cause(b, LossCause::Crash);
    }

    fn note_block_under_replicated_cause(&mut self, b: BlockId, cause: LossCause) {
        if self.lost_blocks.contains(&b.0) {
            return;
        }
        let n = self.crashed.len();
        let any_copy = (0..n).any(|i| self.dfs.is_physically_present(NodeId(i as u32), b));
        if !any_copy {
            self.lost_blocks.insert(b.0);
            match cause {
                LossCause::Crash => self.stats.blocks_lost += 1,
                LossCause::Corruption => self.stats.blocks_lost_corruption += 1,
            }
            self.repair_started.remove(&b.0);
            self.emit(TraceEvent::BlockLost { block: b.0 });
            return;
        }
        if self.cfg.faults.max_recovery_streams == 0 {
            return; // recovery disabled
        }
        let visible = self.dfs.visible_locations(b).len() as u32;
        if visible >= self.cfg.dfs.replication_factor {
            return;
        }
        if self.recovery_queued.insert(b.0) {
            self.recovery_seq += 1;
            self.recovery_q.insert((visible, self.recovery_seq, b.0));
            self.emit(TraceEvent::RecoveryQueued {
                block: b.0,
                visible,
            });
        }
    }

    /// Start re-replication transfers while streams are free, fewest-
    /// replicas blocks first. Recovery shares the flow simulator with map
    /// fetches, so repair traffic contends with job I/O by construction.
    fn pump_recovery(&mut self) {
        let cap = self.cfg.faults.max_recovery_streams;
        while self.recovery_flows.len() < cap {
            let Some((_, _, b0)) = self.recovery_q.pop_first() else {
                break;
            };
            self.recovery_queued.remove(&b0);
            let b = BlockId(b0);
            if self.lost_blocks.contains(&b0) {
                continue;
            }
            let visible = self.dfs.visible_locations(b);
            let visible_at_start = visible.len() as u32;
            if visible_at_start >= self.cfg.dfs.replication_factor
                && !self.cfg.seeded_bug_skip_heal_recheck
            {
                continue; // healed by another path (e.g. a rejoin) meanwhile
            }
            let srcs: Vec<NodeId> = visible
                .iter()
                .copied()
                .filter(|s| self.node_up(s.idx()))
                .collect();
            if srcs.is_empty() {
                // No live source right now. The block is re-enqueued by
                // the holder's block report if it rejoins, or declared
                // lost when the last holder's disk turns out to be gone.
                continue;
            }
            let n = self.crashed.len() as u32;
            let dsts: Vec<NodeId> = (0..n)
                .filter(|&i| {
                    self.node_up(i as usize)
                        && !self.dfs.is_physically_present(NodeId(i), b)
                        && !self
                            .recovery_flows
                            .values()
                            .any(|r| r.block == b && r.dst == i)
                })
                .map(NodeId)
                .collect();
            if dsts.is_empty() {
                continue;
            }
            let src = srcs[self.recovery_rng.index(srcs.len())];
            let dst = dsts[self.recovery_rng.index(dsts.len())];
            let bytes = self.dfs.namenode().block_size(b);
            let cross = self.dfs.topology().crosses_racks(src, dst);
            let fid = self.flows.start(self.now, src, dst, bytes, cross);
            self.emit(TraceEvent::FlowStarted {
                flow: fid.0,
                kind: FlowKind::Recovery,
                src: src.0,
                dst: dst.0,
                bytes,
                cross_rack: cross,
                ctx: FlowCtx::Block { block: b.0 },
            });
            self.recovery_flows.insert(
                fid,
                RecoveryXfer {
                    block: b,
                    src: src.0,
                    dst: dst.0,
                    visible_at_start,
                },
            );
        }
        self.schedule_netcheck();
    }

    /// A re-replication transfer finished: commit the new replica, make
    /// it visible to the scheduler, and keep pumping.
    fn on_recovery_done(&mut self, rx: RecoveryXfer) {
        let b = rx.block;
        if !self.node_up(rx.dst as usize)
            || self.dfs.is_physically_present(NodeId(rx.dst), b)
            || self.lost_blocks.contains(&b.0)
        {
            // Target died mid-flight (flow races the cancel), the bytes
            // arrived by another path, or the block was declared lost
            // while the transfer ran (its source must have been corrupt
            // or wiped, so the payload is not trustworthy): drop the
            // transfer on the floor.
            self.pump_recovery();
            return;
        }
        // The payload is only trustworthy if the source still holds a
        // healthy copy. Source quarantined in the same completion batch
        // (detection races the transfer to the very same instant): the
        // bytes came off a corrupt replica — drop and re-queue.
        if !self.dfs.is_physically_present(NodeId(rx.src), b) {
            self.note_block_under_replicated(b);
            self.pump_recovery();
            return;
        }
        // Read-path verification, recovery flavor: copying the block is a
        // read of its bytes, so a silently corrupt source fails the
        // checksum here exactly like a remote map fetch would. Detect,
        // quarantine the source, drop the payload, re-queue the repair.
        if self.dfs.is_replica_corrupt(NodeId(rx.src), b) {
            self.stats.checksum_failures += 1;
            self.quarantine_and_repair(rx.src, b);
            self.note_block_under_replicated(b);
            self.pump_recovery();
            return;
        }
        self.dfs.add_replica(b, NodeId(rx.dst));
        self.queue
            .note_replica_added(b, NodeId(rx.dst), self.dfs.topology());
        self.stats.blocks_re_replicated += 1;
        self.stats.recovery_bytes += self.dfs.namenode().block_size(b);
        // Quarantine-initiated repair: commit the time-to-repair clock.
        if let Some(t0) = self.repair_started.remove(&b.0) {
            let wait_us = self.now.saturating_since(t0).as_micros();
            self.emit(TraceEvent::RepairCommit {
                block: b.0,
                node: rx.dst,
                wait_us,
            });
            if let Some(telem) = self.telem.as_mut() {
                if let Some(c) = telem.ids.corruption.as_ref() {
                    let id = c.repair_time;
                    telem.reg.observe(id, wait_us as f64 / 1e6);
                }
            }
        }
        self.note_block_under_replicated(b); // still short? go again
        self.pump_recovery();
    }

    /// Structural invariants, checked after every event when
    /// `SimConfig::check_invariants` is set. Every check is a named entry
    /// of the shared [`dare_simcore::check::InvariantId`] catalog, so the
    /// engine's per-event checks, the property suites, and the bounded
    /// model checker all report violations under the same names.
    fn check_invariants(&self) -> Result<(), crate::SimError> {
        use dare_simcore::check::InvariantId as Inv;
        let mut inv = dare_simcore::check::Invariants::new();
        let slots = self.cfg.profile.map_slots_per_node;
        let rslots = self.cfg.profile.reduce_slots_per_node;
        for i in 0..self.crashed.len() {
            if self.node_up(i) {
                inv.check_id(
                    Inv::SlotConservation,
                    self.free_map_slots[i] + self.running_on[i].len() as u32 == slots,
                    || {
                        format!(
                            "node {i}: map slots drifted ({} free + {} running != {slots})",
                            self.free_map_slots[i],
                            self.running_on[i].len()
                        )
                    },
                );
                inv.check_id(
                    Inv::SlotConservation,
                    self.free_reduce_slots[i] + self.running_reduces[i] == rslots,
                    || {
                        format!(
                            "node {i}: reduce slots drifted ({} free + {} running != {rslots})",
                            self.free_reduce_slots[i], self.running_reduces[i]
                        )
                    },
                );
            } else if self.declared[i] {
                inv.check_id(Inv::DeclaredImpliesCrashed, self.crashed[i], || {
                    format!("node {i} declared dead while running")
                });
                inv.check_id(
                    Inv::DeclaredImpliesCrashed,
                    self.free_map_slots[i] == 0 && self.free_reduce_slots[i] == 0,
                    || format!("declared node {i} still advertises slots"),
                );
            }
            inv.check_id(
                Inv::SchedulerIndexSync,
                (self.free_reduce_slots[i] > 0) == self.reduce_free_nodes.contains(&(i as u32)),
                || {
                    format!(
                        "node {i}: reduce free-node index out of sync ({} free, indexed: {})",
                        self.free_reduce_slots[i],
                        self.reduce_free_nodes.contains(&(i as u32))
                    )
                },
            );
        }
        inv.check_id(
            Inv::RecoveryStreamCap,
            self.recovery_flows.len() <= self.cfg.faults.max_recovery_streams,
            || {
                format!(
                    "{} recovery streams exceed the cap of {}",
                    self.recovery_flows.len(),
                    self.cfg.faults.max_recovery_streams
                )
            },
        );
        // Need-driven repair: every in-flight recovery transfer started
        // while its block was under-replicated. Sorted for a
        // deterministic violation report.
        let mut xfers: Vec<&RecoveryXfer> = self.recovery_flows.values().collect();
        xfers.sort_unstable_by_key(|r| (r.block, r.dst));
        for rx in xfers {
            inv.check_id(
                Inv::RereplicationConvergence,
                rx.visible_at_start < self.cfg.dfs.replication_factor,
                || {
                    format!(
                        "repair of block {} to node {} started at {} visible replicas (RF {})",
                        rx.block.0, rx.dst, rx.visible_at_start, self.cfg.dfs.replication_factor
                    )
                },
            );
        }
        for &b0 in &self.lost_blocks {
            let b = BlockId(b0);
            let copy = (0..self.crashed.len())
                .any(|i| self.dfs.is_physically_present(NodeId(i as u32), b));
            inv.check_id(Inv::LostBlocksUnrecoverable, !copy, || {
                format!("block {b0} marked lost while a physical copy survives")
            });
        }
        // Master/disk coherence on live nodes: every scheduler-visible
        // location physically holds the block (a quarantined or evicted
        // replica must vanish from both sides — no read can be routed to
        // a node that cannot serve it). Crashed-but-undetected nodes are
        // exempt: the master's view legitimately lags a silent failure.
        // Primary locations are bounded by the replication target plus
        // one per node-rejoin: a rejoining node re-registers primaries
        // it still holds, and this model (unlike real HDFS) never
        // deletes the over-replicated excess.
        let rf = self.cfg.dfs.replication_factor as usize;
        let primary_cap = rf + self.stats.nodes_rejoined as usize;
        for i in 0..self.dfs.namenode().num_blocks() {
            let b = BlockId(i as u64);
            for &loc in self.dfs.visible_locations(b) {
                if self.node_up(loc.idx()) {
                    inv.check_id(
                        Inv::QuarantineNoReads,
                        self.dfs.is_physically_present(loc, b),
                        || {
                            format!(
                                "block {} visible on live node {} with no physical replica",
                                b.0, loc.0
                            )
                        },
                    );
                }
            }
            inv.check_id(
                Inv::PrimaryWithinRf,
                self.dfs.namenode().primary_locations(b).len() <= primary_cap,
                || {
                    format!(
                        "block {} holds {} primary locations (RF {rf}, {} rejoin(s))",
                        b.0,
                        self.dfs.namenode().primary_locations(b).len(),
                        self.stats.nodes_rejoined
                    )
                },
            );
        }
        inv.into_result().map_err(crate::SimError::InvariantViolation)
    }

    /// End-of-run invariants: every job reached a terminal state with
    /// consistent counters.
    fn check_terminal_invariants(&self) -> Result<(), crate::SimError> {
        use dare_simcore::check::InvariantId as Inv;
        let mut inv = dare_simcore::check::Invariants::new();
        for (j, js) in self.jobs.iter().enumerate() {
            if js.failed {
                continue;
            }
            inv.check_id(
                Inv::TerminalCompleteness,
                js.maps_done as usize == js.blocks.len(),
                || {
                    format!(
                        "job {j} finished with {}/{} maps done",
                        js.maps_done,
                        js.blocks.len()
                    )
                },
            );
            inv.check_id(Inv::TerminalCompleteness, js.reduces_done == js.reduces, || {
                format!(
                    "job {j} finished with {}/{} reduces done",
                    js.reduces_done, js.reduces
                )
            });
            inv.check_id(
                Inv::LocalityPartition,
                js.node_local + js.rack_local + js.remote == js.blocks.len() as u32,
                || format!("job {j}: locality classes don't partition its maps"),
            );
        }
        inv.into_result().map_err(crate::SimError::InvariantViolation)
    }

    /// Epoch boundary of the proactive baseline: re-derive desired extra
    /// replica counts from the epoch's accesses, push missing replicas over
    /// the network, and age out replicas of files that cooled down.
    fn on_epoch(&mut self) {
        let Some(mut sc) = self.scarlett.take() else {
            return;
        };
        sc.close_epoch();
        let num_files = self.dfs.namenode().num_files();
        for fi in 0..num_files {
            let file = dare_dfs::FileId(fi as u32);
            let desired = sc.desired_for(file);
            let blocks = self.dfs.namenode().file(file).blocks.clone();
            for b in blocks {
                self.reconcile_block(&mut sc, b, desired);
            }
        }
        self.events.push(self.now + sc.cfg.epoch, Ev::Epoch);
        self.scarlett = Some(sc);
        self.schedule_netcheck();
    }

    /// Bring one block's dynamic-replica count toward `desired`: push
    /// missing copies to the least-loaded nodes with budget headroom, or
    /// evict surplus copies from the most-loaded ones.
    fn reconcile_block(&mut self, sc: &mut ScarlettState, b: BlockId, desired: u32) {
        let bytes = self.dfs.namenode().block_size(b);
        let n = self.dfs.datanodes().len();
        let holders: Vec<u32> = (0..n as u32)
            .filter(|&i| self.dfs.datanode(NodeId(i)).holds_dynamic(b))
            .collect();
        let inflight_for_block = self
            .proactive_flows
            .values()
            .filter(|t| t.block == b)
            .count() as u32;
        let current = holders.len() as u32 + inflight_for_block;

        if current < desired {
            // Targets: nodes without the block, enough budget headroom,
            // least dynamic bytes first (load smoothing).
            let mut candidates: Vec<(u64, u32)> = (0..n as u32)
                .filter(|&i| {
                    let node = NodeId(i);
                    !self.dfs.is_physically_present(node, b)
                        && self.dfs.datanode(node).dynamic_bytes()
                            + self.inflight_proactive[i as usize]
                            + bytes
                            <= self.budget_bytes
                })
                .map(|i| {
                    (
                        self.dfs.datanode(NodeId(i)).dynamic_bytes()
                            + self.inflight_proactive[i as usize],
                        i,
                    )
                })
                .collect();
            candidates.sort_unstable();
            for &(_, dst) in candidates.iter().take((desired - current) as usize) {
                let Some(src) = self.pick_source(b, NodeId(dst)) else {
                    continue; // no live replica to push from right now
                };
                let cross = self.dfs.topology().crosses_racks(src, NodeId(dst));
                let fid = self.flows.start(self.now, src, NodeId(dst), bytes, cross);
                self.emit(TraceEvent::FlowStarted {
                    flow: fid.0,
                    kind: FlowKind::Proactive,
                    src: src.0,
                    dst,
                    bytes,
                    cross_rack: cross,
                    ctx: FlowCtx::Block { block: b.0 },
                });
                self.proactive_flows
                    .insert(fid, ProactiveTransfer { block: b, src: src.0, dst });
                self.inflight_proactive[dst as usize] += bytes;
                sc.bytes_moved += bytes;
            }
        } else if current > desired {
            // Age out surplus replicas from the most-loaded holders.
            let mut by_load: Vec<(u64, u32)> = holders
                .iter()
                .map(|&i| (self.dfs.datanode(NodeId(i)).dynamic_bytes(), i))
                .collect();
            by_load.sort_unstable_by(|a, b| b.cmp(a));
            let surplus = (holders.len() as u32).saturating_sub(desired) as usize;
            for &(_, node) in by_load.iter().take(surplus) {
                if let Some(visible) = self.dfs.evict_dynamic(NodeId(node), b) {
                    sc.evictions += 1;
                    if visible {
                        self.queue
                            .note_replica_removed(b, NodeId(node), self.dfs.topology());
                    }
                }
            }
        }
    }

    /// A proactive push finished: commit the replica.
    fn on_proactive_done(&mut self, pt: ProactiveTransfer) {
        let bytes = self.dfs.namenode().block_size(pt.block);
        self.inflight_proactive[pt.dst as usize] =
            self.inflight_proactive[pt.dst as usize].saturating_sub(bytes);
        if self.dfs.insert_dynamic(self.now, NodeId(pt.dst), pt.block) {
            if let Some(sc) = self.scarlett.as_mut() {
                sc.replicas_created += 1;
            }
            self.emit(TraceEvent::ReplicaCommitted {
                node: pt.dst,
                block: pt.block.0,
            });
        }
    }

    fn finish(mut self) -> SimResult {
        let trace = self.tracer.take().map(Tracer::finish);
        let telemetry = self.telem.take().map(|t| t.seal());
        let profile = self.profiler.take().map(|mut p| {
            p.note_slab_peak(self.flows.peak_active() as u64);
            p.finish()
        });
        let dfs_fingerprint = self.dfs.replica_fingerprint();
        self.outcomes.sort_by_key(|o| o.id);
        let run = dare_metrics::summarize(&self.outcomes);
        let mut replicas_created = 0;
        let mut evictions = 0;
        let mut skipped_by_sampling = 0;
        let mut skipped_no_victim = 0;
        for p in &self.policies {
            let s = p.stats();
            replicas_created += s.replicas_created;
            evictions += s.evictions;
            skipped_by_sampling += s.skipped_by_sampling;
            skipped_no_victim += s.skipped_no_victim;
        }
        let cv_after = popularity_cv_of(&self.dfs, &self.file_popularity);
        let proactive = self.scarlett.as_ref().map(|sc| ProactiveStats {
            bytes_moved: sc.bytes_moved,
            replicas_created: sc.replicas_created,
            evictions: sc.evictions,
        });
        let _ = &self.workload_name;
        SimResult {
            blocks_per_job: dare_metrics::blocks_created_per_job(
                replicas_created,
                self.outcomes.len(),
            ),
            run,
            outcomes: self.outcomes,
            replicas_created,
            evictions,
            skipped_by_sampling,
            skipped_no_victim,
            cv_before: self.cv_before,
            cv_after,
            final_dynamic_bytes: self.dfs.total_dynamic_bytes(),
            remote_bytes_fetched: self.remote_bytes_fetched,
            proactive,
            reexecuted_tasks: self.reexecuted_tasks,
            speculative_launches: self.speculative_launches,
            speculative_wins: self.speculative_wins,
            timeline: if self.cfg.record_timeline {
                Some(self.timeline)
            } else {
                None
            },
            faults: self.stats,
            trace,
            telemetry,
            profile,
            logical_events: self.logical_events,
            dfs_fingerprint,
        }
    }
}

/// Modeled shuffle + reduce duration: each of the `reduces` reducers pulls
/// its share of the job's output over the fabric (at roughly half the mean
/// NIC rate, reflecting the many-to-many shuffle), spends half a map's
/// compute merging it, then commits its partition through an HDFS write
/// pipeline whose steady-state rate is the min of mean disk and NIC rates
/// (see `dare_dfs::pipeline`; the replication chain re-sends the bytes
/// `replication - 1` times through NICs of that rate).
fn reduce_duration(
    output_bytes: u64,
    reduces: u32,
    map_compute: SimDuration,
    net_mean_mbps: f64,
    disk_mean_mbps: f64,
    replication: u32,
) -> SimDuration {
    let per_reducer = output_bytes as f64 / reduces.max(1) as f64;
    let shuffle_secs = per_reducer / (net_mean_mbps * 0.5 * MB as f64);
    // First replica is a local write; each further replica adds a network
    // hop, so the chain rate is min(disk, nic) and hops are pipelined —
    // duration stays bytes/chain_rate regardless of replica count >= 2.
    let chain_rate = if replication <= 1 {
        disk_mean_mbps
    } else {
        disk_mean_mbps.min(net_mean_mbps)
    };
    let write_secs = per_reducer / (chain_rate * MB as f64);
    SimDuration::from_secs_f64(shuffle_secs + write_secs) + map_compute.mul_f64(0.5)
}

/// Fig. 11's uniformity score over the current DFS placement.
fn popularity_cv_of(dfs: &Dfs, file_popularity: &[f64]) -> f64 {
    let per_node: Vec<Vec<(u64, f64)>> = dfs
        .datanodes()
        .iter()
        .map(|dn| {
            dn.all_blocks()
                .into_iter()
                .map(|b| {
                    let meta = dfs.namenode().block(b);
                    (meta.size_bytes, file_popularity[meta.file.idx()])
                })
                .collect()
        })
        .collect();
    dare_metrics::popularity_cv(&per_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_core::PolicyKind;
    use dare_workload::{FileSpec, JobSpec};
    use std::collections::HashMap;

    /// A small deterministic workload: `files` files of `blocks` blocks,
    /// `jobs` jobs hammering file 0 mostly (high skew).
    fn tiny_workload(files: usize, blocks: u64, jobs: u32) -> Workload {
        let bs = 128 * MB;
        let file_specs: Vec<FileSpec> = (0..files)
            .map(|i| FileSpec {
                name: format!("f{i}"),
                size_bytes: blocks * bs,
            })
            .collect();
        let job_specs: Vec<JobSpec> = (0..jobs)
            .map(|id| JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64 * 10),
                file: if id % 4 == 0 { (id as usize / 4) % files } else { 0 },
                map_compute: SimDuration::from_secs(20),
                reduces: 1,
                output_bytes: 10 * MB,
            })
            .collect();
        Workload {
            name: "tiny".into(),
            files: file_specs,
            jobs: job_specs,
        }
    }

    fn run_cfg(policy: PolicyKind, sched: SchedulerKind, seed: u64) -> SimResult {
        let mut cfg = SimConfig::cct(policy, sched, seed);
        // The test dataset is tiny (24 blocks over 19 nodes); at the paper's
        // 0.2 budget a node's budget would be smaller than one block, so use
        // a full-share budget to exercise the replication paths.
        cfg.budget_frac = 1.0;
        crate::run(cfg, &tiny_workload(8, 3, 40))
    }

    #[test]
    fn all_jobs_complete_and_metrics_sane() {
        let r = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        assert_eq!(r.run.jobs, 40);
        assert_eq!(r.run.maps, 120);
        assert!((0.0..=1.0).contains(&r.run.locality));
        assert!(r.run.gmtt_secs > 0.0);
        assert!(r.run.mean_slowdown >= 0.99, "slowdown {}", r.run.mean_slowdown);
        assert!(r.run.makespan_secs > 0.0);
        // locality counters per job sum to maps
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
    }

    #[test]
    fn vanilla_creates_no_replicas() {
        let r = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 2);
        assert_eq!(r.replicas_created, 0);
        assert_eq!(r.final_dynamic_bytes, 0);
        assert_eq!(r.blocks_per_job, 0.0);
    }

    #[test]
    fn greedy_replicates_and_improves_locality() {
        let v = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 3);
        let d = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 3);
        assert!(d.replicas_created > 0, "greedy must replicate");
        assert!(
            d.run.locality > v.run.locality + 0.1,
            "DARE {} vs vanilla {}",
            d.run.locality,
            v.run.locality
        );
    }

    #[test]
    fn elephant_trap_replicates_less_than_greedy() {
        let g = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 4);
        let e = run_cfg(
            PolicyKind::ElephantTrap { p: 0.3, threshold: 1 },
            SchedulerKind::Fifo,
            4,
        );
        assert!(e.replicas_created > 0);
        assert!(
            e.replicas_created < g.replicas_created,
            "sampling cuts writes: et={} lru={}",
            e.replicas_created,
            g.replicas_created
        );
    }

    #[test]
    fn fair_scheduler_beats_fifo_locality_on_vanilla() {
        let f = run_cfg(PolicyKind::Vanilla, SchedulerKind::Fifo, 5);
        let d = run_cfg(PolicyKind::Vanilla, SchedulerKind::fair_default(), 5);
        assert!(
            d.run.locality > f.run.locality,
            "delay scheduling helps: fair={} fifo={}",
            d.run.locality,
            f.run.locality
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 7);
        let b = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 7);
        assert_eq!(a.run.locality, b.run.locality);
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.replicas_created, b.replicas_created);
        let c = run_cfg(PolicyKind::elephant_default(), SchedulerKind::Fifo, 8);
        assert!(
            a.run.gmtt_secs != c.run.gmtt_secs || a.replicas_created != c.replicas_created,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn ec2_profile_runs() {
        let cfg = SimConfig::ec2(PolicyKind::elephant_default(), SchedulerKind::Fifo, 9);
        let r = crate::run(cfg, &tiny_workload(8, 3, 20));
        assert_eq!(r.run.jobs, 20);
        assert!((0.0..=1.0).contains(&r.run.locality));
    }

    #[test]
    fn turnaround_improves_with_replication_under_load() {
        // Heavier load so remote-read contention matters.
        let w = tiny_workload(6, 4, 60);
        let v = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 10),
            &w,
        );
        let d = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 10),
            &w,
        );
        assert!(
            d.run.gmtt_secs <= v.run.gmtt_secs * 1.02,
            "replication shouldn't hurt turnaround: dare {} vanilla {}",
            d.run.gmtt_secs,
            v.run.gmtt_secs
        );
    }

    #[test]
    fn node_failures_reexecute_tasks_and_finish_all_jobs() {
        let wl = tiny_workload(8, 3, 40);
        // Fail three nodes while the trace is in full swing.
        let cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 31)
            .with_failures(vec![(40, 2), (90, 7), (150, 11)]);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40, "every job completes despite failures");
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
        assert!((0.0..=1.0).contains(&r.run.locality));
    }

    #[test]
    fn failures_are_deterministic_too() {
        let wl = tiny_workload(8, 3, 30);
        let run = || {
            let cfg = SimConfig::cct(
                PolicyKind::elephant_default(),
                SchedulerKind::fair_default(),
                77,
            )
            .with_failures(vec![(30, 0), (60, 5)]);
            crate::run(cfg, &wl)
        };
        let a = run();
        let b = run();
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.replicas_created, b.replicas_created);
    }

    #[test]
    fn failed_node_serves_no_further_tasks() {
        use dare_trace::{find_first, task_spans, TraceEvent};
        let wl = tiny_workload(6, 2, 30);
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 13)
            .with_failures(vec![(1, 4)]);
        cfg.record_trace = true;
        let crash = SimTime::from_secs(1);
        let declare_at = crash
            + cfg
                .heartbeat
                .mul_f64(cfg.faults.detect_heartbeats as f64);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.faults.nodes_declared_dead, 1);

        let trace = r.trace.expect("tracing was on");
        // The silent node never picks up NEW work after the crash...
        let late_launch = find_first(&trace, |rec| {
            matches!(rec.event, TraceEvent::TaskLaunched { node: 4, .. }) && rec.time > crash
        });
        assert!(
            late_launch.is_none(),
            "crashed node must not take new tasks: {late_launch:?}"
        );
        // ...zombie attempts linger between the crash and the declaration,
        // but every node-4 span is closed by the declaration at the latest.
        // (The t=1s crash may land before node 4's first staggered
        // heartbeat, in which case it never launched anything and the loop
        // below is vacuous — the no-new-work check above still bites.)
        let spans = task_spans(&trace);
        let on_victim: Vec<_> = spans.iter().filter(|s| s.node == 4).collect();
        for s in &on_victim {
            let end = s.end.unwrap_or_else(|| {
                panic!("node-4 attempt left open past declare-dead: {s:?}")
            });
            assert!(
                end <= declare_at,
                "declared-dead node must hold no attempts: {s:?} ends after {declare_at:?}"
            );
        }
        assert!(r.reexecuted_tasks <= wl.jobs.len() as u64 * 3);
    }

    #[test]
    fn detection_waits_for_the_heartbeat_timeout() {
        use dare_trace::{assert_event_order, TraceEvent};
        let wl = tiny_workload(6, 2, 30);
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 19)
            .with_failures(vec![(5, 2)]);
        cfg.record_trace = true;
        let crash = SimTime::from_secs(5);
        let declare_at = crash
            + cfg
                .heartbeat
                .mul_f64(cfg.faults.detect_heartbeats as f64);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.faults.nodes_declared_dead, 1);

        let trace = r.trace.expect("tracing was on");
        let matched = assert_event_order(
            &trace,
            &[
                ("crash", &|rec| {
                    matches!(rec.event, TraceEvent::NodeCrashed { node: 2, .. })
                }),
                ("declared-dead", &|rec| {
                    matches!(rec.event, TraceEvent::NodeDeclaredDead { node: 2, .. })
                }),
            ],
        );
        assert_eq!(matched[0].time, crash);
        assert_eq!(
            matched[1].time, declare_at,
            "no omniscient namenode: death declared exactly at the missed-heartbeat timeout"
        );
    }

    #[test]
    fn transient_crash_rejoins_and_loses_nothing() {
        let wl = tiny_workload(8, 3, 40);
        let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 91)
            .with_invariant_checks();
        cfg.budget_frac = 1.0;
        // Down for 120s: well past the 30s detection timeout, so the full
        // declare -> re-replicate -> rejoin -> block-report cycle runs.
        cfg.faults.events.push(crate::FaultEvent::Crash {
            at_secs: 30,
            node: 3,
            down_secs: 120,
        });
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs + r.run.failed_jobs, 40);
        assert_eq!(r.faults.nodes_declared_dead, 1);
        assert_eq!(r.faults.nodes_rejoined, 1);
        assert_eq!(r.faults.blocks_lost, 0, "a transient crash loses no data");
    }

    #[test]
    fn permanent_kill_re_replicates_through_the_network() {
        let wl = tiny_workload(8, 3, 40);
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 92)
            .with_failures(vec![(40, 6)])
            .with_invariant_checks();
        cfg.faults.detect_heartbeats = 3; // declare quickly so repair runs mid-trace
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs + r.run.failed_jobs, 40);
        assert!(
            r.faults.blocks_re_replicated > 0,
            "the killed node's blocks must be repaired"
        );
        assert!(r.faults.recovery_bytes > 0, "repair moves real bytes");
        assert_eq!(r.faults.blocks_lost, 0, "rf=3 survives one kill");
    }

    #[test]
    fn recovery_traffic_contends_with_map_fetches() {
        // Heavily loaded cluster so fetches are in flight when recovery
        // starts; identical seeds, recovery on vs off. Runs are identical
        // up to the declaration instant, so attempts launched before it
        // pair exactly — and some of their reads must finish strictly
        // later once repair traffic shares the fabric.
        let bs = 128 * MB;
        let files: Vec<FileSpec> = (0..8)
            .map(|i| FileSpec {
                name: format!("f{i}"),
                size_bytes: 3 * bs,
            })
            .collect();
        let jobs: Vec<JobSpec> = (0..60u32)
            .map(|id| JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64),
                file: if id % 4 == 0 { (id as usize / 4) % 8 } else { 0 },
                map_compute: SimDuration::from_secs(20),
                reduces: 1,
                output_bytes: 10 * MB,
            })
            .collect();
        let wl = Workload {
            name: "contention".into(),
            files,
            jobs,
        };
        let run_with = |streams: usize| {
            let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 93)
                .with_failures(vec![(40, 5)]);
            cfg.record_trace = true;
            cfg.faults.max_recovery_streams = streams;
            // Declare quickly: the repair burst lands while the backlogged
            // cluster still has map fetches in flight.
            cfg.faults.detect_heartbeats = 2;
            crate::run(cfg, &wl)
        };
        let quiet = run_with(0);
        let noisy = run_with(6);
        assert_eq!(quiet.faults.blocks_re_replicated, 0);
        assert!(noisy.faults.blocks_re_replicated > 0);
        assert!(noisy.faults.recovery_bytes > 0);

        let quiet_trace = quiet.trace.expect("tracing was on");
        let noisy_trace = noisy.trace.expect("tracing was on");
        let fetches = |spans: &[dare_trace::FlowSpan]| -> Vec<dare_trace::FlowSpan> {
            spans
                .iter()
                .filter(|s| s.kind == dare_trace::FlowKind::Fetch)
                .cloned()
                .collect()
        };
        let quiet_spans = dare_trace::flow_spans(&quiet_trace);
        let noisy_spans = dare_trace::flow_spans(&noisy_trace);

        // Fetch flows launched before the declaration pair exactly across
        // the two runs (same seed, recovery is the only difference), so
        // "same fetch, later finish" is the contention signal.
        let key = |s: &dare_trace::FlowSpan| (s.ctx, s.dst, s.bytes, s.start);
        let quiet_ends: HashMap<_, _> = fetches(&quiet_spans)
            .iter()
            .map(|s| (key(s), s.end))
            .collect();
        let mut delayed = 0u32;
        for s in fetches(&noisy_spans) {
            if let (Some(Some(q)), Some(n)) = (quiet_ends.get(&key(&s)), s.end) {
                if n > *q {
                    delayed += 1;
                }
            }
        }
        assert!(
            delayed > 0,
            "re-replication must measurably delay at least one remote map fetch"
        );

        // And the contention is visible as spans: at least one recovery
        // flow shares the fabric with an in-flight map fetch.
        let overlapping = noisy_spans
            .iter()
            .filter(|r| r.kind == dare_trace::FlowKind::Recovery)
            .any(|r| fetches(&noisy_spans).iter().any(|f| r.overlaps(f)));
        assert!(
            overlapping,
            "a recovery flow must overlap a map fetch in the noisy run"
        );
    }

    #[test]
    fn losing_every_replica_fails_jobs_cleanly() {
        let wl = tiny_workload(8, 3, 40);
        // rf=1 scatters 24 single-copy blocks; find a node that actually
        // holds file-0 blocks (placement is seed-deterministic, so the
        // probe run and the real run place identically).
        let mut probe_cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 94);
        probe_cfg.dfs.replication_factor = 1;
        let probe = Engine::new(probe_cfg, &wl);
        let victim = (0..19u32)
            .find(|&i| !probe.dfs.datanode(NodeId(i)).all_blocks().is_empty())
            .expect("some node holds blocks");
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 94)
            .with_failures(vec![(25, victim)])
            .with_invariant_checks();
        cfg.dfs.replication_factor = 1; // every block single-copy
        let r = crate::run(cfg, &wl);
        assert!(r.faults.blocks_lost > 0, "rf=1 kill must lose blocks");
        assert!(r.faults.jobs_failed > 0, "jobs on lost blocks must fail");
        assert!(r.faults.tasks_failed > 0);
        assert_eq!(r.run.failed_jobs as u64, r.faults.jobs_failed);
        assert_eq!(r.run.jobs + r.run.failed_jobs, 40);
        for o in r.outcomes.iter().filter(|o| o.status == dare_metrics::JobStatus::Failed) {
            assert!(o.completed >= o.arrival);
        }
    }

    #[test]
    fn generated_fault_plans_run_deterministically() {
        let wl = tiny_workload(8, 3, 30);
        let run = || {
            let spec = crate::FaultSpec {
                horizon_secs: 200,
                kills: 1,
                crashes: 2,
                mean_down_secs: 60,
                rack_outages: 1,
                stragglers: 1,
                straggler_factor: 3.0,
                corruption_rate_per_node_hour: 0.0,
            };
            let plan = crate::FaultPlan::generate(&spec, 99, 40, 0xFA57);
            let cfg = SimConfig::ec2(PolicyKind::GreedyLru, SchedulerKind::fair_default(), 95)
                .with_faults(plan)
                .with_invariant_checks();
            crate::run(cfg, &wl)
        };
        let a = run();
        let b = run();
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.run.jobs, b.run.jobs);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.reexecuted_tasks, b.reexecuted_tasks);
    }

    #[test]
    fn failure_with_scarlett_stays_consistent() {
        let wl = tiny_workload(8, 3, 40);
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 15)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(30),
                accesses_per_replica: 2.0,
                max_extra_replicas: 8,
            })
            .with_failures(vec![(45, 3), (100, 9)]);
        cfg.budget_frac = 1.0;
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40);
        assert!(r.proactive.expect("scarlett ran").replicas_created > 0);
    }

    #[test]
    fn degraded_node_slows_and_speculation_rescues() {
        let wl = tiny_workload(8, 3, 40);
        // Node 3 limps at 8x from t=10s.
        let degraded = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51)
                .with_degradations(vec![(10, 3, 8.0)]),
            &wl,
        );
        let healthy = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51),
            &wl,
        );
        assert!(
            degraded.run.gmtt_secs > healthy.run.gmtt_secs * 1.02,
            "limplock must hurt: degraded {} healthy {}",
            degraded.run.gmtt_secs,
            healthy.run.gmtt_secs
        );
        // Speculation claws most of it back.
        let rescued = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 51)
                .with_degradations(vec![(10, 3, 8.0)])
                .with_speculation(crate::config::SpeculationConfig {
                    slowdown_factor: 1.5,
                    min_elapsed_secs: 3.0,
                }),
            &wl,
        );
        assert!(rescued.speculative_launches > 0);
        assert!(
            rescued.run.gmtt_secs < degraded.run.gmtt_secs,
            "speculation helps: rescued {} degraded {}",
            rescued.run.gmtt_secs,
            degraded.run.gmtt_secs
        );
    }

    #[test]
    fn degradation_rejects_bad_factor() {
        let result = std::panic::catch_unwind(|| {
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1)
                .with_degradations(vec![(10, 0, 0.5)])
        });
        assert!(result.is_err(), "factor < 1 must be rejected");
    }

    #[test]
    fn speculation_launches_backups_on_straggling_cluster() {
        // EC2 profile: per-node disk bandwidth varies 67-358 MB/s, so slow
        // nodes straggle and speculation fires.
        let wl = tiny_workload(8, 4, 40);
        let cfg = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, 42)
            .with_speculation(crate::config::SpeculationConfig {
                slowdown_factor: 1.2,
                min_elapsed_secs: 2.0,
            });
        let mut engine = Engine::new(cfg, &wl);
        let total = engine.jobs.len();
        while engine.finished < total {
            let (t, ev) = engine.events.pop().expect("events pending");
            engine.now = t;
            engine.dispatch(ev).unwrap();
        }
        assert!(
            engine.speculative_launches > 0,
            "heterogeneous disks must trigger backups"
        );
        // Slots never leak: every node ends with its full slot count.
        for (i, &slots) in engine.free_map_slots.iter().enumerate() {
            assert_eq!(
                slots,
                engine.cfg.profile.map_slots_per_node,
                "node {i} leaked slots"
            );
        }
    }

    #[test]
    fn speculation_does_not_change_job_counts_or_violate_invariants() {
        let wl = tiny_workload(6, 3, 30);
        let base = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 43),
            &wl,
        );
        let spec = crate::run(
            SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 43)
                .with_speculation(Default::default()),
            &wl,
        );
        assert_eq!(base.run.jobs, spec.run.jobs);
        for o in &spec.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
        // Backups can only help or match turnaround on a deterministic rig.
        assert!(spec.run.gmtt_secs <= base.run.gmtt_secs * 1.10);
    }

    #[test]
    fn speculation_with_failures_is_stable() {
        let wl = tiny_workload(8, 3, 40);
        let cfg = SimConfig::ec2(PolicyKind::elephant_default(), SchedulerKind::fair_default(), 47)
            .with_speculation(Default::default())
            .with_failures(vec![(30, 1), (70, 8), (110, 42)]);
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40);
        for o in &r.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
    }

    #[test]
    fn timeline_records_every_attempt_with_monotone_milestones() {
        let wl = tiny_workload(8, 3, 30);
        let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 61);
        cfg.record_timeline = true;
        let r = crate::run(cfg, &wl);
        let tl = r.timeline.as_ref().expect("timeline recorded");
        // No failures/speculation: exactly one attempt per map task.
        assert_eq!(tl.len() as u64, r.run.maps);
        for rec in tl {
            assert!(!rec.speculative);
            assert_eq!(rec.attempt, 0);
            let read = rec.read_done.expect("attempt finished its read");
            let fin = rec.finished.expect("attempt completed");
            assert!(rec.launched <= read && read <= fin);
        }
        // Local-read attempts in the timeline match the locality metric.
        let local = tl.iter().filter(|t| t.local_read).count() as u64;
        let metric_local: u64 = r.outcomes.iter().map(|o| o.node_local as u64).sum();
        assert_eq!(local, metric_local);
        // CSV export is well-formed.
        let csv = crate::result::timeline_csv(tl);
        assert_eq!(csv.lines().count(), tl.len() + 1);
        assert!(csv.starts_with("job,task,attempt,node"));
    }

    #[test]
    fn timeline_includes_failed_and_speculative_attempts() {
        let wl = tiny_workload(8, 3, 30);
        let mut cfg = SimConfig::ec2(PolicyKind::Vanilla, SchedulerKind::Fifo, 62)
            .with_failures(vec![(25, 5)])
            .with_speculation(crate::config::SpeculationConfig {
                slowdown_factor: 1.2,
                min_elapsed_secs: 2.0,
            });
        cfg.record_timeline = true;
        let r = crate::run(cfg, &wl);
        let tl = r.timeline.as_ref().expect("timeline recorded");
        assert!(
            tl.len() as u64 >= r.run.maps,
            "extra attempts appear in the timeline"
        );
        let aborted = tl.iter().filter(|t| t.finished.is_none()).count() as u64;
        assert!(
            aborted <= r.reexecuted_tasks + r.speculative_launches,
            "unfinished rows only from aborts/races"
        );
        if r.speculative_launches > 0 {
            assert!(tl.iter().any(|t| t.speculative));
        }
        // By default the timeline is absent.
        let plain = crate::run(SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1), &wl);
        assert!(plain.timeline.is_none());
    }

    #[test]
    fn scarlett_replicates_proactively_and_improves_locality() {
        let wl = tiny_workload(8, 3, 40);
        let vanilla = crate::run(
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 21),
            &wl,
        );
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 21)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(30),
                accesses_per_replica: 2.0,
                max_extra_replicas: 12,
            });
        cfg.budget_frac = 1.0;
        let scar = crate::run(cfg, &wl);
        let stats = scar.proactive.expect("scarlett stats present");
        assert!(stats.replicas_created > 0, "proactive replication happened");
        assert!(stats.bytes_moved > 0, "proactive replication costs network");
        assert!(
            scar.run.job_locality > vanilla.run.job_locality,
            "scarlett {} vs vanilla {}",
            scar.run.job_locality,
            vanilla.run.job_locality
        );
        // DARE's counters stay at zero: only the proactive scheme ran.
        assert_eq!(scar.replicas_created, 0);
        assert!(vanilla.proactive.is_none());
    }

    #[test]
    fn scarlett_ages_out_cooled_files() {
        // Hot phase on file 0, then a quiet tail: desired counts fall to
        // zero at the next epoch and the replicas get evicted.
        let bs = 128 * MB;
        let files: Vec<dare_workload::FileSpec> = (0..4)
            .map(|i| dare_workload::FileSpec {
                name: format!("f{i}"),
                size_bytes: 2 * bs,
            })
            .collect();
        let mut jobs: Vec<dare_workload::JobSpec> = (0..30u32)
            .map(|id| dare_workload::JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64 * 3),
                file: 0,
                map_compute: SimDuration::from_secs(5),
                reduces: 1,
                output_bytes: MB,
            })
            .collect();
        // Long-delayed closing job so several quiet epochs elapse.
        jobs.push(dare_workload::JobSpec {
            id: 30,
            arrival: SimTime::from_secs(1200),
            file: 1,
            map_compute: SimDuration::from_secs(5),
            reduces: 1,
            output_bytes: MB,
        });
        let wl = Workload {
            name: "cooling".into(),
            files,
            jobs,
        };
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 5)
            .with_scarlett(crate::scarlett::ScarlettConfig {
                epoch: SimDuration::from_secs(60),
                accesses_per_replica: 2.0,
                max_extra_replicas: 8,
            });
        cfg.budget_frac = 1.0;
        let r = crate::run(cfg, &wl);
        let stats = r.proactive.expect("scarlett stats");
        assert!(stats.replicas_created > 0);
        assert!(
            stats.evictions > 0,
            "cooled file's replicas must be aged out"
        );
        assert!(
            r.final_dynamic_bytes < stats.replicas_created * 2 * bs,
            "not all proactive replicas survive to the end"
        );
    }

    #[test]
    fn cv_after_not_worse_with_dare() {
        // Greedy converges fastest on 40 jobs; the sampled policy needs the
        // full 500-job traces (Fig. 11) to spread the hot file everywhere.
        let r = run_cfg(PolicyKind::GreedyLru, SchedulerKind::Fifo, 11);
        assert!(r.cv_before > 0.0);
        assert!(
            r.cv_after <= r.cv_before * 1.05,
            "placement uniformity: before {} after {}",
            r.cv_before,
            r.cv_after
        );
    }

    fn telemetry_cfg(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::cct(
            PolicyKind::elephant_default(),
            SchedulerKind::fair_default(),
            seed,
        );
        cfg.budget_frac = 1.0;
        cfg.with_telemetry(crate::config::TelemetryConfig::default())
            .with_self_profile()
    }

    #[test]
    fn telemetry_samples_are_consistent_and_schema_valid() {
        let wl = tiny_workload(8, 3, 40);
        let r = crate::run(telemetry_cfg(5), &wl);
        let t = r.telemetry.as_ref().expect("telemetry recorded");
        assert!(t.ticks() > 10, "a multi-minute run yields many 5s ticks");
        assert_eq!(t.nodes.len(), t.ticks() * 19, "one row per node per tick");
        dare_telemetry::validate_jsonl(&t.to_jsonl()).expect("schema-valid JSONL");

        // Sample times are strictly increasing and interval-aligned except
        // for the terminal sample.
        for w in t.cluster.windows(2) {
            assert!(w[0].t_us < w[1].t_us);
        }
        for row in &t.cluster[..t.ticks() - 1] {
            assert_eq!(row.t_us % t.interval_us, 0, "tick on the sampling grid");
        }

        // The terminal sample's cumulative counters equal the run metrics.
        let last = t.cluster.last().unwrap().t_us;
        let maps_done = t.value(t.ticks() - 1, "maps_done").unwrap().as_f64();
        assert_eq!(maps_done as u64, r.run.maps, "all maps accounted for");
        let terminal_jobs = t.jobs.iter().filter(|j| j.t_us == last).count();
        assert_eq!(terminal_jobs, 40, "every job gets a terminal row");
        assert_eq!(
            r.telemetry_job_locality().unwrap().to_bits(),
            r.run.job_locality.to_bits(),
            "per-job locality re-derived bitwise from telemetry"
        );
        assert_eq!(
            r.telemetry_locality().unwrap().to_bits(),
            r.run.locality.to_bits(),
            "task-weighted locality re-derived bitwise from telemetry"
        );

        // Self-profile accounted every dispatched event to some subsystem.
        let p = r.profile.expect("profile recorded");
        assert!(p.total_events() > 0);
        let (sched_ev, _) = p.of(dare_telemetry::Subsystem::Sched);
        assert!(sched_ev > 0, "heartbeats land in the sched arm");
        dare_telemetry::validate_profile_json(&p.to_json("unit")).expect("valid report");
    }

    /// Corrupt `take` of each block's primary replicas (probing a throwaway
    /// engine for the seed-deterministic placement) and return the events.
    fn corrupt_primaries(
        cfg: &SimConfig,
        wl: &Workload,
        file: Option<dare_dfs::FileId>,
        take: usize,
        at_secs: u64,
    ) -> Vec<crate::FaultEvent> {
        let probe = Engine::new(cfg.clone(), wl);
        let nn = probe.dfs.namenode();
        let mut events = Vec::new();
        for b in 0..nn.num_blocks() as u64 {
            let id = BlockId(b);
            if file.is_some_and(|f| nn.file_of(id) != f) {
                continue;
            }
            for loc in nn.primary_locations(id).iter().take(take) {
                events.push(crate::FaultEvent::CorruptReplica {
                    at_secs,
                    node: loc.0,
                    block: b,
                });
            }
        }
        events
    }

    #[test]
    fn corrupt_local_replica_degrades_to_remote_fetch() {
        use dare_trace::TraceEvent;
        let wl = tiny_workload(8, 3, 40);
        // Seed picked so the trace exhibits a *local* read hitting a bad
        // copy: recovery transfers checksum their source too, so many
        // seeds quarantine every rotted replica via repair reads before
        // any node-local launch lands on one.
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 41);
        // Rot two of the three primaries of every file-0 block before the
        // first heartbeat: the hammered file guarantees node-local launches
        // land on a corrupt holder, and the surviving clean replica keeps
        // every job completable.
        cfg.faults.events =
            corrupt_primaries(&cfg, &wl, Some(dare_dfs::FileId(0)), 2, 1);
        cfg.record_trace = true;
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40, "a clean replica survives every rot");
        assert!(r.faults.replicas_corrupted > 0);
        assert!(r.faults.checksum_failures > 0, "some read hit a bad copy");
        assert!(r.faults.replicas_quarantined > 0);
        assert_eq!(r.faults.blocks_lost, 0);
        assert_eq!(r.faults.blocks_lost_corruption, 0);

        // Trace-span proof of degradation: a read-open checksum failure on
        // the attempt's own node is followed (same instant) by that very
        // attempt launching with `local_read: false` — the local replica
        // was quarantined out from under it and it fell back to the
        // network path.
        let trace = r.trace.expect("tracing was on");
        let degraded = trace.records().iter().any(|rec| {
            let TraceEvent::ChecksumFailed { node, job, task, attempt, .. } = rec.event
            else {
                return false;
            };
            trace.records().iter().any(|l| {
                l.time == rec.time
                    && matches!(
                        l.event,
                        TraceEvent::TaskLaunched {
                            job: j,
                            task: t,
                            attempt: a,
                            node: n,
                            local_read: false,
                            ..
                        } if j == job && t == task && a == attempt && n == node
                    )
            })
        });
        assert!(
            degraded,
            "a corrupt local replica must degrade its reader to a remote fetch"
        );
    }

    #[test]
    fn corruption_repair_contends_with_map_fetches() {
        // The corruption analog of recovery_traffic_contends_with_map_fetches:
        // rot one primary of every block mid-trace on a backlogged cluster;
        // reads and scrubs quarantine the copies, and the repair burst must
        // share the fabric with in-flight map fetches. Identical seeds,
        // repair on vs off — runs diverge only at the first repair dispatch,
        // so earlier fetches pair exactly across the two runs.
        let bs = 128 * MB;
        let files: Vec<FileSpec> = (0..8)
            .map(|i| FileSpec {
                name: format!("f{i}"),
                size_bytes: 3 * bs,
            })
            .collect();
        let jobs: Vec<JobSpec> = (0..60u32)
            .map(|id| JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64),
                file: if id % 4 == 0 { (id as usize / 4) % 8 } else { 0 },
                map_compute: SimDuration::from_secs(20),
                reduces: 1,
                output_bytes: 10 * MB,
            })
            .collect();
        let wl = Workload {
            name: "rot-contention".into(),
            files,
            jobs,
        };
        let base = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 93);
        let rot = corrupt_primaries(&base, &wl, None, 1, 40);
        let run_with = |streams: usize| {
            let mut cfg = base.clone().with_scanner(crate::ScannerConfig {
                period: SimDuration::from_secs(20),
                bytes_per_sec: 64 * MB,
            });
            cfg.faults.events = rot.clone();
            cfg.faults.max_recovery_streams = streams;
            cfg.record_trace = true;
            crate::run(cfg, &wl)
        };
        let quiet = run_with(0);
        let noisy = run_with(6);
        assert_eq!(quiet.faults.blocks_re_replicated, 0);
        assert!(noisy.faults.replicas_quarantined > 0);
        assert!(
            noisy.faults.blocks_re_replicated > 0,
            "quarantined primaries must be repaired"
        );
        assert!(noisy.faults.recovery_bytes > 0);

        let quiet_trace = quiet.trace.expect("tracing was on");
        let noisy_trace = noisy.trace.expect("tracing was on");
        let fetches = |spans: &[dare_trace::FlowSpan]| -> Vec<dare_trace::FlowSpan> {
            spans
                .iter()
                .filter(|s| s.kind == dare_trace::FlowKind::Fetch)
                .cloned()
                .collect()
        };
        let quiet_spans = dare_trace::flow_spans(&quiet_trace);
        let noisy_spans = dare_trace::flow_spans(&noisy_trace);
        let key = |s: &dare_trace::FlowSpan| (s.ctx, s.dst, s.bytes, s.start);
        let quiet_ends: HashMap<_, _> = fetches(&quiet_spans)
            .iter()
            .map(|s| (key(s), s.end))
            .collect();
        let mut delayed = 0u32;
        for s in fetches(&noisy_spans) {
            if let (Some(Some(q)), Some(n)) = (quiet_ends.get(&key(&s)), s.end) {
                if n > *q {
                    delayed += 1;
                }
            }
        }
        assert!(
            delayed > 0,
            "corruption repair must measurably delay at least one map fetch"
        );
        let overlapping = noisy_spans
            .iter()
            .filter(|r| r.kind == dare_trace::FlowKind::Recovery)
            .any(|r| fetches(&noisy_spans).iter().any(|f| r.overlaps(f)));
        assert!(
            overlapping,
            "a repair flow must overlap a map fetch in the noisy run"
        );
    }

    #[test]
    fn scrubber_detects_corruption_between_reads() {
        use dare_trace::TraceEvent;
        // Jobs only ever touch file 0; file 1's blocks are never read, so
        // only the background scanner can notice their rot.
        let bs = 128 * MB;
        let files: Vec<FileSpec> = (0..2)
            .map(|i| FileSpec {
                name: format!("f{i}"),
                size_bytes: 3 * bs,
            })
            .collect();
        let jobs: Vec<JobSpec> = (0..20u32)
            .map(|id| JobSpec {
                id,
                arrival: SimTime::from_secs(id as u64 * 10),
                file: 0,
                map_compute: SimDuration::from_secs(20),
                reduces: 1,
                output_bytes: 10 * MB,
            })
            .collect();
        let wl = Workload {
            name: "cold-rot".into(),
            files,
            jobs,
        };
        let base = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 23);
        let rot = corrupt_primaries(&base, &wl, Some(dare_dfs::FileId(1)), 1, 5);
        assert!(!rot.is_empty());
        let mut cfg = base.with_scanner(crate::ScannerConfig {
            period: SimDuration::from_secs(30),
            bytes_per_sec: 32 * MB,
        });
        cfg.faults.events = rot;
        cfg.record_trace = true;
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 20);
        assert_eq!(
            r.faults.checksum_failures, 0,
            "the cold file is never read, so no read-path detection"
        );
        assert!(
            r.faults.scrub_detections > 0,
            "the scanner must find rot reads can't"
        );
        assert!(r.faults.scrub_bytes > 0);
        assert!(r.faults.replicas_quarantined > 0);
        assert!(
            r.faults.blocks_re_replicated > 0,
            "scrub-detected primaries go through the repair queue"
        );
        assert_eq!(r.faults.blocks_lost_corruption, 0, "rf=3 rides out one rot");
        let trace = r.trace.expect("tracing was on");
        assert!(trace.records().iter().any(|rec| matches!(
            rec.event,
            TraceEvent::ScrubComplete { found, .. } if found > 0
        )));
        assert!(trace.records().iter().any(|rec| matches!(
            rec.event,
            TraceEvent::RepairCommit { .. }
        )));
    }

    #[test]
    fn corrupt_dynamic_replica_is_evicted_not_repaired() {
        use dare_trace::TraceEvent;
        let wl = tiny_workload(8, 3, 40);
        let mk = || {
            let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 29)
                .with_scanner(crate::ScannerConfig {
                    period: SimDuration::from_secs(20),
                    bytes_per_sec: 64 * MB,
                });
            cfg.budget_frac = 1.0;
            cfg.record_trace = true;
            cfg
        };
        // Probe run: find the first dynamic replica DARE materialises. The
        // real run below differs only by one silent rot event, so the same
        // replica commits at the same instant there.
        let probe = crate::run(mk(), &wl);
        let probe_trace = probe.trace.expect("tracing was on");
        let committed = probe_trace
            .records()
            .iter()
            .find(|rec| matches!(rec.event, TraceEvent::ReplicaCommitted { .. }))
            .expect("greedy LRU replicates");
        let TraceEvent::ReplicaCommitted { node, block } = committed.event else {
            unreachable!()
        };

        let mut cfg = mk();
        cfg.faults.events.push(crate::FaultEvent::CorruptReplica {
            at_secs: committed.time.as_secs_f64() as u64 + 1,
            node,
            block,
        });
        let r = crate::run(cfg, &wl);
        assert_eq!(r.run.jobs, 40);
        let trace = r.trace.expect("tracing was on");
        assert!(
            trace.records().iter().any(|rec| matches!(
                rec.event,
                TraceEvent::ReplicaQuarantined { node: n, block: b, dynamic: true }
                    if n == node && b == block
            )),
            "the rotted dynamic replica must be quarantined as dynamic"
        );
        // Eviction, never repair: the primaries are intact, so the block
        // never enters the recovery queue and no repair traffic flows.
        assert!(!trace.records().iter().any(|rec| matches!(
            rec.event,
            TraceEvent::RecoveryQueued { block: b, .. } if b == block
        )));
        assert!(!trace
            .records()
            .iter()
            .any(|rec| matches!(rec.event, TraceEvent::RepairCommit { .. })));
        assert_eq!(r.faults.blocks_re_replicated, 0);
        assert_eq!(r.faults.blocks_lost, 0);
        assert_eq!(r.faults.blocks_lost_corruption, 0);
        assert!(r.faults.replicas_quarantined > 0);
    }

    #[test]
    fn rf1_corruption_is_accounted_as_corruption_loss() {
        let wl = tiny_workload(8, 3, 40);
        let mut base = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 37);
        base.dfs.replication_factor = 1;
        // Rot the single copy of every file-0 block: detection (read or
        // scrub) leaves zero replicas, so the blocks are gone — charged to
        // the corruption ledger, not the crash one.
        let rot = corrupt_primaries(&base, &wl, Some(dare_dfs::FileId(0)), 1, 25);
        let mut cfg = base
            .with_scanner(crate::ScannerConfig {
                period: SimDuration::from_secs(30),
                bytes_per_sec: 32 * MB,
            })
            .with_invariant_checks();
        cfg.faults.events = rot;
        let r = crate::run(cfg, &wl);
        assert!(
            r.faults.blocks_lost_corruption > 0,
            "rf=1 rot must lose blocks"
        );
        assert_eq!(
            r.faults.blocks_lost, 0,
            "no crash happened, so the crash ledger stays empty"
        );
        assert!(r.faults.jobs_failed > 0, "jobs on rotted blocks must fail");
        assert_eq!(r.run.failed_jobs as u64, r.faults.jobs_failed);
        assert_eq!(r.run.jobs + r.run.failed_jobs, 40);
    }

    #[test]
    fn corruption_and_scrubbing_are_deterministic() {
        let wl = tiny_workload(8, 3, 30);
        let run = || {
            let spec = crate::FaultSpec {
                horizon_secs: 300,
                kills: 0,
                crashes: 1,
                mean_down_secs: 60,
                rack_outages: 0,
                stragglers: 1,
                straggler_factor: 3.0,
                corruption_rate_per_node_hour: 40.0,
            };
            let plan = crate::FaultPlan::generate_with_blocks(&spec, 19, 2, 24, 0xB17F117);
            let cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::fair_default(), 41)
                .with_scanner(crate::ScannerConfig {
                    period: SimDuration::from_secs(45),
                    bytes_per_sec: 16 * MB,
                })
                .with_faults(plan)
                .with_invariant_checks();
            crate::run(cfg, &wl)
        };
        let a = run();
        let b = run();
        assert!(a.faults.replicas_corrupted > 0, "the sweep actually rotted bytes");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.run.gmtt_secs, b.run.gmtt_secs);
        assert_eq!(a.dfs_fingerprint, b.dfs_fingerprint);
    }

    #[test]
    fn telemetry_is_observation_only() {
        let wl = tiny_workload(8, 3, 40);
        let base = crate::run(
            {
                let mut c = SimConfig::cct(
                    PolicyKind::elephant_default(),
                    SchedulerKind::fair_default(),
                    5,
                );
                c.budget_frac = 1.0;
                c
            },
            &wl,
        );
        let sampled = crate::run(telemetry_cfg(5), &wl);
        assert_eq!(base.run, sampled.run);
        assert_eq!(base.outcomes, sampled.outcomes);
        assert_eq!(base.dfs_fingerprint, sampled.dfs_fingerprint);
        assert!(base.telemetry.is_none() && base.profile.is_none());
    }

    /// The heap kernel is the differential oracle for the calendar queue:
    /// a full simulation must be bit-identical under either, including
    /// with faults in play (crash/rejoin exercises the push-behind-now
    /// and epoch-stale paths).
    #[test]
    fn heap_and_calendar_kernels_agree_end_to_end() {
        let wl = tiny_workload(8, 3, 40);
        let run = |heap: bool| {
            let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::fair_default(), 17)
                .with_failures(vec![(40, 2), (90, 7)])
                .with_invariant_checks();
            cfg.budget_frac = 1.0;
            if heap {
                cfg = cfg.with_heap_queue();
            }
            crate::run(cfg, &wl)
        };
        let cal = run(false);
        let heap = run(true);
        assert_eq!(cal.run, heap.run);
        assert_eq!(cal.outcomes, heap.outcomes);
        assert_eq!(cal.faults, heap.faults);
        assert_eq!(cal.dfs_fingerprint, heap.dfs_fingerprint);
    }

    /// Batched heartbeats change event timing (documented), but the run
    /// must still complete every job, respect the structural invariants,
    /// and stay deterministic — including across a crash and rejoin,
    /// where no per-node chain exists to restart.
    #[test]
    fn batched_heartbeats_complete_all_jobs_with_faults() {
        let wl = tiny_workload(8, 3, 40);
        let run = || {
            let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::Fifo, 23)
                .with_batched_heartbeats()
                .with_failures(vec![(40, 2), (90, 7), (150, 11)])
                .with_invariant_checks();
            cfg.budget_frac = 1.0;
            crate::run(cfg, &wl)
        };
        let a = run();
        assert_eq!(a.run.jobs, 40, "every job completes under batched heartbeats");
        for o in &a.outcomes {
            assert_eq!(o.node_local + o.rack_local + o.remote, o.maps);
        }
        let b = run();
        assert_eq!(a.run, b.run);
        assert_eq!(a.dfs_fingerprint, b.dfs_fingerprint);
    }

    /// Model-cluster engine for the step-control fault tests: a few
    /// nodes, RF 2, one serialized recovery stream, per-event invariant
    /// checks on — the same shape the bounded model checker drives.
    fn stepped_engine(nodes: u32, blocks: u64, seed: u64) -> Engine {
        let mut cfg = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, seed);
        cfg.profile = dare_net::ClusterProfile::scale(nodes);
        cfg.dfs.replication_factor = 2;
        cfg.faults.max_recovery_streams = 1;
        cfg.check_invariants = true;
        cfg.budget_frac = 1.0;
        Engine::new(cfg, &tiny_workload(1, blocks, 1))
    }

    fn step_to_quiescence(eng: &mut Engine) {
        for _ in 0..200_000 {
            match eng.step().expect("invariants hold at every event") {
                StepOutcome::Progressed => {}
                StepOutcome::Quiescent => return,
            }
        }
        panic!("engine did not quiesce");
    }

    /// The rejoin-during-re-replication race: a node crashes long enough
    /// to be declared dead, repairs for its blocks queue up behind one
    /// recovery stream, and the node rejoins while the first transfer is
    /// still in flight. The healed queue entries must be re-checked and
    /// skipped (need-driven repair), the rejoined node's replicas must
    /// re-register exactly once, and nothing may be counted lost.
    #[test]
    fn rejoin_during_rereplication_cancels_stale_repairs() {
        let mut eng = stepped_engine(3, 4, 0xACE5);
        // Crash the heaviest holder so several blocks go under-RF at
        // declare-dead (t=30 s) and the queue backs up; rejoin at 31 s
        // lands between the first pop and the first completion (~32.4 s).
        let heavy = (0..3u32)
            .max_by_key(|&n| (0..4).filter(|&b| eng.block_present(n, b)).count())
            .unwrap();
        let held: Vec<u64> = (0..4).filter(|&b| eng.block_present(heavy, b)).collect();
        assert!(held.len() >= 2, "need a backed-up repair queue");
        eng.inject_crash(heavy, 31);
        step_to_quiescence(&mut eng);

        let s = eng.fault_stats();
        assert_eq!(s.blocks_lost, 0, "every block had a surviving replica");
        assert_eq!(s.blocks_lost_corruption, 0);
        assert_eq!(s.nodes_rejoined, 1);
        assert_eq!(eng.recovery_backlog(), 0, "repair queue fully drained");
        // Only the transfer already in flight at rejoin may commit; the
        // queued blocks healed when the node came back and must be
        // skipped by the pop-time re-check, not blindly copied.
        assert!(
            s.blocks_re_replicated < held.len() as u64,
            "{} of {} under-replicated blocks re-replicated — healed \
             queue entries were not re-checked",
            s.blocks_re_replicated,
            held.len()
        );
        // No duplicate registrations: the rejoined node's replicas came
        // back exactly once, so every block is at or above RF with each
        // location holding exactly one physical copy (the per-event
        // invariant checks verified master/disk coherence throughout).
        for b in 0..4u64 {
            assert!(eng.visible_replicas(b) >= 2, "block {b} below RF");
        }
    }

    /// A replica feeding an in-flight repair turns out corrupt: the
    /// transfer must be cancelled with the quarantine, not committed —
    /// the bounded model checker found the original bug as a
    /// lost-blocks-unrecoverable violation (the tainted arrival
    /// resurrected a block already declared lost with bytes read from
    /// the corrupt copy).
    #[test]
    fn corrupt_recovery_source_taints_inflight_repair() {
        let mut eng = stepped_engine(4, 4, 0xACE5);
        // Pick a block and its two holders: corrupt one copy silently,
        // permanently kill the other. Recovery then starts from the
        // corrupt source; when a read detects the corruption, the block
        // has no clean copy left and must be declared lost — and stay
        // lost, with the in-flight tainted transfer discarded.
        let holders: Vec<u32> = (0..4u32).filter(|&n| eng.block_present(n, 0)).collect();
        assert_eq!(holders.len(), 2, "block 0 starts at RF 2");
        eng.inject_corrupt(holders[0], 0);
        eng.inject_kill(holders[1]);
        step_to_quiescence(&mut eng);

        // With its only surviving copy corrupt, block 0 is lost; the
        // invariant checks (run after every event) verified that no
        // recovery transfer ever re-materialized it.
        assert_eq!(eng.lost_block_count(), 1, "block 0 is unrecoverable");
        assert_eq!(eng.fault_stats().blocks_lost_corruption, 1);
        assert!(
            (0..4u32).all(|n| !eng.block_present(n, 0)),
            "a lost block holds no physical copy anywhere"
        );
        assert_eq!(eng.recovery_backlog(), 0);
    }

    /// The queue arm and peak gauges show up in a profiled run, and the
    /// profiler remains observation-only with them.
    #[test]
    fn profile_reports_queue_arm_and_peaks() {
        let wl = tiny_workload(8, 3, 40);
        let mut cfg = SimConfig::cct(PolicyKind::GreedyLru, SchedulerKind::fair_default(), 11);
        cfg.budget_frac = 1.0;
        cfg.self_profile = true;
        let r = crate::run(cfg, &wl);
        let p = r.profile.expect("profiled run returns a report");
        let (queue_events, _) = p.of(Subsystem::Queue);
        assert!(queue_events > 0, "every dispatched event was popped");
        assert_eq!(queue_events, p.total_events(), "one pop per dispatched event");
        assert!(p.peak_queue_len > 0, "the queue held events");
        assert!(p.peak_slab_occupancy > 0, "fetch flows occupied the slab");
    }
}

//! # dare-mapred — the MapReduce cluster simulator
//!
//! A discrete-event model of a Hadoop cluster that reproduces the paper's
//! evaluation pipeline end to end:
//!
//! 1. **Ingest**: the workload's dataset is written into the
//!    [`dare_dfs::Dfs`] with the Hadoop default placement policy (3 primary
//!    replicas per block).
//! 2. **Job replay**: jobs arrive per the trace; each runs one map task per
//!    input block plus a modeled shuffle/reduce phase.
//! 3. **Scheduling**: nodes heartbeat every 3 s (staggered, plus
//!    out-of-band heartbeats on task completion, as real Hadoop does); a
//!    [`dare_sched::Scheduler`] fills free map slots.
//! 4. **Reads**: node-local input is read from disk (capacity shared among
//!    concurrent local readers); non-local input is fetched through the
//!    [`dare_net::flow::FlowSim`] flow-level network model with
//!    per-endpoint fair sharing and cross-rack oversubscription.
//! 5. **DARE hook**: every scheduled map task is reported to the node's
//!    [`dare_core::ReplicationPolicy`]; on a `Replicate` decision the
//!    engine evicts the victims immediately (lazy deletion) and inserts the
//!    fetched block into HDFS when its bytes finish arriving — the replica
//!    becomes scheduler-visible one block report later.
//!
//! Model simplifications (documented in DESIGN.md): reduce tasks occupy
//! reduce slots FIFO but their shuffle is an analytic duration (per-reducer
//! bytes over the fabric + pipelined output write + merge compute) rather
//! than per-flow; local-read disk shares are fixed at read start; replica
//! disk writes are asynchronous and off the critical path (lazy deletion
//! both ways); reduce attempts are not re-executed on node failure — none
//! of these touch the map-input locality mechanism under study.

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod faults;
pub mod gantt;
pub mod golden;
pub mod result;
pub mod scarlett;

pub use config::{ScannerConfig, SchedulerKind, SimConfig, TelemetryConfig};
pub use engine::{DfsLookup, Engine, StepOutcome};
pub use error::SimError;
pub use faults::{FaultEvent, FaultPlan, FaultSpec};
pub use result::SimResult;

/// Build and run one simulation, returning its results. The main entry
/// point the experiments and examples use.
///
/// ```
/// use dare_mapred::{run, SchedulerKind, SimConfig};
/// use dare_core::PolicyKind;
/// use dare_workload::swim::{synthesize, SwimParams};
///
/// let wl = synthesize("demo", &SwimParams { jobs: 20, ..SwimParams::wl1() }, 7);
/// let cfg = SimConfig::cct(PolicyKind::elephant_default(), SchedulerKind::Fifo, 7);
/// let result = run(cfg, &wl);
/// assert_eq!(result.run.jobs, 20);
/// assert!(result.run.locality <= 1.0);
/// ```
pub fn run(cfg: SimConfig, workload: &dare_workload::Workload) -> SimResult {
    Engine::new(cfg, workload).run()
}

/// Like [`run`], but engine-level faults (a stalled event queue, an
/// orphaned flow, a violated invariant) come back as a [`SimError`]
/// instead of a panic.
pub fn try_run(
    cfg: SimConfig,
    workload: &dare_workload::Workload,
) -> Result<SimResult, SimError> {
    Engine::new(cfg, workload).try_run()
}

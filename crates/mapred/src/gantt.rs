//! ASCII Gantt rendering of a recorded task timeline.
//!
//! Turns the `record_timeline` output into a per-node lane chart for
//! eyeballing schedules in a terminal: where tasks ran, which were remote
//! reads, where failures re-executed work, where backups raced
//! stragglers. One character column spans `makespan / width` seconds;
//! each node gets one lane per concurrently running attempt.
//!
//! Legend: `#` node-local attempt, `o` non-local attempt, `s` speculative
//! backup, `x` aborted attempt (node failure), `.` idle.

use crate::result::TaskRecord;
use dare_simcore::SimTime;
use std::fmt::Write as _;

/// Render `records` as an ASCII chart `width` characters wide.
/// Returns an empty string for an empty timeline.
pub fn render(records: &[TaskRecord], width: usize) -> String {
    assert!(width >= 10, "chart too narrow");
    if records.is_empty() {
        return String::new();
    }
    let t_end = records
        .iter()
        .map(|r| r.finished.or(r.read_done).unwrap_or(r.launched))
        .max()
        .expect("non-empty")
        .as_secs_f64()
        .max(1e-9);
    let nodes = records.iter().map(|r| r.node).max().expect("non-empty") as usize + 1;

    let col = |t: SimTime| -> usize {
        ((t.as_secs_f64() / t_end) * (width as f64 - 1.0)).round() as usize
    };

    // Greedy lane packing per node.
    let mut lanes: Vec<Vec<Vec<u8>>> = vec![Vec::new(); nodes]; // node -> lane -> row
    let mut lane_free_at: Vec<Vec<usize>> = vec![Vec::new(); nodes]; // col where lane frees

    let mut sorted: Vec<&TaskRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.launched, r.job, r.task, r.attempt));

    for r in sorted {
        let start = col(r.launched);
        let end_t = r.finished.or(r.read_done).unwrap_or(r.launched);
        let end = col(end_t).max(start);
        let glyph = if r.finished.is_none() {
            b'x'
        } else if r.speculative {
            b's'
        } else if r.local_read {
            b'#'
        } else {
            b'o'
        };
        let node = r.node as usize;
        // First lane free before this start, else a new lane.
        let lane = match lane_free_at[node].iter().position(|&f| f <= start) {
            Some(l) => l,
            None => {
                lanes[node].push(vec![b'.'; width]);
                lane_free_at[node].push(0);
                lanes[node].len() - 1
            }
        };
        for c in lanes[node][lane].iter_mut().take(end + 1).skip(start) {
            *c = glyph;
        }
        lane_free_at[node][lane] = end + 1;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "t=0s{:>pad$}",
        format!("t={t_end:.0}s"),
        pad = width.saturating_sub(1)
    );
    for (n, node_lanes) in lanes.iter().enumerate() {
        for (l, row) in node_lanes.iter().enumerate() {
            let label = if l == 0 {
                format!("n{n:<3}")
            } else {
                "    ".to_string()
            };
            let _ = writeln!(out, "{label} {}", String::from_utf8_lossy(row));
        }
    }
    let _ = writeln!(
        out,
        "legend: # local read, o remote read, s speculative, x aborted"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dare_simcore::SimTime;

    fn rec(node: u32, start: u64, end: u64, local: bool) -> TaskRecord {
        TaskRecord {
            job: 0,
            task: 0,
            attempt: 0,
            node,
            speculative: false,
            local_read: local,
            launched: SimTime::from_secs(start),
            read_done: Some(SimTime::from_secs(start)),
            finished: Some(SimTime::from_secs(end)),
        }
    }

    #[test]
    fn empty_timeline_renders_empty() {
        assert_eq!(render(&[], 40), "");
    }

    #[test]
    fn spans_and_glyphs_land_where_expected() {
        let records = vec![rec(0, 0, 50, true), rec(1, 50, 100, false)];
        let chart = render(&records, 101);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("t=0s"));
        assert!(lines[0].ends_with("t=100s"));
        // node 0: '#' over the first half
        let n0 = lines[1];
        assert!(n0.starts_with("n0"));
        assert!(n0.contains('#'));
        assert!(!n0.contains('o'));
        // node 1: 'o' over the second half
        let n1 = lines[2];
        assert!(n1.contains('o'));
        assert!(!n1.contains('#'));
        assert!(chart.contains("legend:"));
    }

    #[test]
    fn overlapping_attempts_get_separate_lanes() {
        let records = vec![rec(0, 0, 80, true), rec(0, 40, 100, false)];
        let chart = render(&records, 60);
        // Two lanes for node 0: the n0-labelled one plus one indented.
        let lanes = chart
            .lines()
            .filter(|l| l.starts_with("n0") || l.starts_with("    "))
            .count();
        assert_eq!(lanes, 2, "chart:\n{chart}");
    }

    #[test]
    fn aborted_attempts_are_marked() {
        let mut r = rec(0, 0, 10, true);
        r.finished = None;
        r.read_done = None;
        let other = rec(0, 20, 100, true);
        let chart = render(&[r, other], 50);
        assert!(chart.contains('x'), "chart:\n{chart}");
    }

    #[test]
    fn speculative_attempts_are_marked() {
        let mut r = rec(2, 0, 100, false);
        r.speculative = true;
        let chart = render(&[r], 40);
        assert!(chart.contains('s'));
        // nodes 0 and 1 exist as empty-laneless entries only if they had
        // records; here only n2 appears with a lane.
        assert!(chart.contains("n2"));
    }
}

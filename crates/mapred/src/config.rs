//! Simulation configuration.

use crate::faults::{FaultEvent, FaultPlan};
use crate::scarlett::ScarlettConfig;
use dare_core::PolicyKind;
use dare_dfs::DfsConfig;
use dare_net::ClusterProfile;
use dare_sched::fair::FairConfig;
use dare_simcore::{QueueKind, SimDuration};

/// Which scheduler drives the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Hadoop's default FIFO scheduler.
    Fifo,
    /// Fair scheduler with delay scheduling.
    Fair(FairConfig),
    /// Simplified Capacity scheduler with this many equal queues.
    Capacity(u32),
}

impl SchedulerKind {
    /// Fair scheduler with default delay thresholds.
    pub fn fair_default() -> Self {
        SchedulerKind::Fair(FairConfig::default())
    }

    /// Label for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Fair(_) => "fair",
            SchedulerKind::Capacity(_) => "capacity",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster environment (CCT or EC2 models).
    pub profile: ClusterProfile,
    /// File-system knobs (block size, replication factor, report delay).
    pub dfs: DfsConfig,
    /// DARE policy (or `Vanilla` baseline).
    pub policy: PolicyKind,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Dynamic-replica budget per node, as a fraction of the node's share
    /// of primary data (replicas included) — the paper's `budget` knob.
    pub budget_frac: f64,
    /// Heartbeat interval (Hadoop default 3 s).
    pub heartbeat: SimDuration,
    /// Experiment seed; every random stream derives from it.
    pub seed: u64,
    /// Optional proactive epoch-based replication baseline (Scarlett),
    /// usually combined with `PolicyKind::Vanilla` so exactly one
    /// replication scheme is active.
    pub scarlett: Option<ScarlettConfig>,
    /// Fault-injection plan: permanent kills, transient crash/rejoin
    /// pairs, rack outages, and slow-node degradation, plus the
    /// detection/retry/recovery knobs. Empty by default — an empty plan
    /// is bit-identical to a fault-free run.
    pub faults: FaultPlan,
    /// Speculative execution of stragglers (Hadoop-style backup tasks).
    pub speculation: Option<SpeculationConfig>,
    /// Record a per-attempt task timeline in the results (adds memory
    /// proportional to attempt count; off by default).
    pub record_timeline: bool,
    /// Record a structured [`dare_trace`] event log of the whole run
    /// (scheduling, flows, replication, faults) into
    /// [`crate::SimResult::trace`]. Observation-only: a traced run is
    /// bit-identical to an untraced one. Off by default.
    pub record_trace: bool,
    /// Run the structural invariant checks from `dare_simcore::check`
    /// after every dispatched event (no block lost while a live replica
    /// exists, slot conservation, every task terminates). Expensive; for
    /// tests and the resilience experiment.
    pub check_invariants: bool,
    /// Drive the run with the retained naive-scan reference schedulers
    /// (`dare_sched::oracle`) instead of the indexed ones. Bit-identical
    /// results by construction; exists for differential testing and
    /// benchmarking the index speedup.
    pub naive_scan: bool,
    /// Periodic cluster-state sampling into
    /// [`crate::SimResult::telemetry`]. Observation-only: a sampled run
    /// is bit-identical to an unsampled one, and `None` (the default)
    /// costs a single branch per dispatched event.
    pub telemetry: Option<TelemetryConfig>,
    /// Wall-clock self-profiling of the event-dispatch arms into
    /// [`crate::SimResult::profile`]. Wall time never feeds the
    /// simulation, so a profiled run stays bit-identical. Off by default.
    pub self_profile: bool,
    /// Which event-queue kernel drives the run: the calendar queue /
    /// timing wheel (default) or the original binary heap, kept as the
    /// differential oracle. Both kernels produce byte-identical runs —
    /// the golden-trace harness proves it — so this flag only matters
    /// for performance work and differential testing.
    pub event_queue: QueueKind,
    /// Batch periodic heartbeats into one timer event per interval that
    /// drains a per-node ring, instead of one queue event per node. Cuts
    /// event volume by O(nodes) per interval — the difference between
    /// thousands and millions of queue operations on a 10k-node run —
    /// but *changes timing*: batched heartbeats fire simultaneously and
    /// unjittered, so results differ from the unbatched default. Off by
    /// default; the throughput benchmarks and headline-scale runs
    /// enable it.
    pub batched_heartbeats: bool,
    /// Background block scanner (the HDFS DataBlockScanner analog):
    /// periodic per-node scrub passes that checksum resident replicas and
    /// quarantine corrupt ones between reads. The scrub budget is drawn
    /// against the node's disk model, so scrubbing contends with task
    /// I/O. `None` (the default) disables scanning entirely and is
    /// byte-identical to pre-scanner behaviour.
    pub scanner: Option<ScannerConfig>,
    /// **Deliberate protocol mutation for checker validation**: make
    /// `pump_recovery` skip its pop-time re-check that a queued block is
    /// still under-replicated, so a block healed by a rejoin between
    /// enqueue and pop spawns a needless repair transfer. The
    /// `rereplication-convergence` invariant catches the spurious flow;
    /// the model checker's self-test and the `mc --seeded-bug` run use
    /// this knob to prove the catalog actually bites. Never enable it in
    /// a real experiment.
    pub seeded_bug_skip_heal_recheck: bool,
}

/// Background block-scanner tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannerConfig {
    /// Idle gap between the end of one scrub pass and the start of the
    /// next on a node.
    pub period: SimDuration,
    /// Disk read budget of a scrub pass, bytes per second. One pass takes
    /// `resident_bytes / bytes_per_sec`; while it runs the node's
    /// effective disk bandwidth for task reads is reduced by this budget.
    pub bytes_per_sec: u64,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        // Rough HDFS defaults: the DataBlockScanner paces itself to cover
        // a disk over a long window; 4 MB/s against ~100 MB/s disks keeps
        // the contention tax small but visible.
        ScannerConfig {
            period: SimDuration::from_secs(60),
            bytes_per_sec: 4 * dare_net::MB,
        }
    }
}

/// Telemetry sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Simulated-clock interval between cluster-state samples. The
    /// sampler fires after *all* events sharing the tick's timestamp have
    /// drained, so a sample reflects a settled cluster state.
    pub interval: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: SimDuration::from_secs(5),
        }
    }
}

/// Speculative-execution tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Launch a backup when a running attempt has taken more than this
    /// multiple of the job's average completed map duration.
    pub slowdown_factor: f64,
    /// Never speculate before an attempt has run at least this long (s).
    pub min_elapsed_secs: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            slowdown_factor: 1.5,
            min_elapsed_secs: 5.0,
        }
    }
}

impl SimConfig {
    /// The paper's CCT setup with a given policy/scheduler combination and
    /// the headline parameters (budget 0.2).
    pub fn cct(policy: PolicyKind, scheduler: SchedulerKind, seed: u64) -> Self {
        SimConfig {
            profile: ClusterProfile::cct(),
            dfs: DfsConfig::default(),
            policy,
            scheduler,
            budget_frac: 0.2,
            heartbeat: SimDuration::from_secs(3),
            seed,
            scarlett: None,
            faults: FaultPlan::default(),
            speculation: None,
            record_timeline: false,
            record_trace: false,
            check_invariants: false,
            naive_scan: false,
            telemetry: None,
            self_profile: false,
            event_queue: QueueKind::Calendar,
            batched_heartbeats: false,
            scanner: None,
            seeded_bug_skip_heal_recheck: false,
        }
    }

    /// Drive the run with the binary-heap event kernel (the differential
    /// oracle for the calendar queue).
    pub fn with_heap_queue(mut self) -> Self {
        self.event_queue = QueueKind::Heap;
        self
    }

    /// Batch periodic heartbeats into one timer event per interval (see
    /// `batched_heartbeats`; changes timing, off by default).
    pub fn with_batched_heartbeats(mut self) -> Self {
        self.batched_heartbeats = true;
        self
    }

    /// Switch to the naive-scan reference schedulers (differential runs).
    pub fn with_naive_scan(mut self) -> Self {
        self.naive_scan = true;
        self
    }

    /// Enable structured trace recording (see `record_trace`).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable periodic cluster-state telemetry sampling (see `telemetry`).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Enable wall-clock self-profiling of dispatch (see `self_profile`).
    pub fn with_self_profile(mut self) -> Self {
        self.self_profile = true;
        self
    }

    /// Enable the background block scanner (see `scanner`).
    pub fn with_scanner(mut self, scanner: ScannerConfig) -> Self {
        self.scanner = Some(scanner);
        self
    }

    /// Schedule node degradations at `(time_secs, node, slowdown_factor)`.
    ///
    /// Convenience wrapper appending [`FaultEvent::Slowdown`] events to
    /// the fault plan. Panics on a factor below 1 or an out-of-range
    /// node, like the plan validator would.
    pub fn with_degradations(mut self, degradations: Vec<(u64, u32, f64)>) -> Self {
        assert!(degradations.iter().all(|&(_, _, f)| f >= 1.0));
        self.faults
            .events
            .extend(degradations.into_iter().map(|(at_secs, node, factor)| {
                FaultEvent::Slowdown {
                    at_secs,
                    node,
                    factor,
                    duration_secs: None,
                }
            }));
        if let Err(e) = self.faults.validate(self.profile.nodes) {
            panic!("invalid degradation schedule: {e}");
        }
        self
    }

    /// Enable Hadoop-style speculative execution of straggler maps.
    pub fn with_speculation(mut self, spec: SpeculationConfig) -> Self {
        self.speculation = Some(spec);
        self
    }

    /// Schedule permanent node kills at `(time_secs, node_index)` points.
    ///
    /// Convenience wrapper appending [`FaultEvent::Kill`] events to the
    /// fault plan. Panics at build time on an out-of-range node index or
    /// a duplicate kill of the same node.
    pub fn with_failures(mut self, failures: Vec<(u64, u32)>) -> Self {
        self.faults
            .events
            .extend(failures.into_iter().map(|(at_secs, node)| FaultEvent::Kill {
                at_secs,
                node,
            }));
        if let Err(e) = self.faults.validate(self.profile.nodes) {
            panic!("invalid failure schedule: {e}");
        }
        self
    }

    /// Install a full fault-injection plan (validated when the engine is
    /// built).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable per-event structural invariant checking.
    pub fn with_invariant_checks(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Arm the deliberate recovery-path mutation (see
    /// `seeded_bug_skip_heal_recheck`). Checker validation only.
    pub fn with_seeded_heal_bug(mut self) -> Self {
        self.seeded_bug_skip_heal_recheck = true;
        self
    }

    /// Enable the proactive Scarlett baseline on this configuration.
    pub fn with_scarlett(mut self, scarlett: ScarlettConfig) -> Self {
        self.scarlett = Some(scarlett);
        self
    }

    /// The paper's 100-node EC2 setup.
    pub fn ec2(policy: PolicyKind, scheduler: SchedulerKind, seed: u64) -> Self {
        SimConfig {
            profile: ClusterProfile::ec2(),
            ..Self::cct(policy, scheduler, seed)
        }
    }

    /// Sanity-check parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.budget_frac) {
            return Err(format!("budget_frac {} out of [0,1]", self.budget_frac));
        }
        if self.heartbeat == SimDuration::ZERO {
            return Err("zero heartbeat interval".into());
        }
        if self.profile.nodes == 0 {
            return Err("empty cluster".into());
        }
        if let Some(t) = &self.telemetry {
            if t.interval == SimDuration::ZERO {
                return Err("zero telemetry interval".into());
            }
        }
        if let Some(sc) = &self.scanner {
            if sc.period == SimDuration::ZERO {
                return Err("zero scanner period".into());
            }
            if sc.bytes_per_sec == 0 {
                return Err("zero scanner read budget".into());
            }
        }
        self.faults.validate(self.profile.nodes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        assert_eq!(c.profile.nodes, 19);
        assert_eq!(c.scheduler.label(), "fifo");
        assert!(c.validate().is_ok());
        let e = SimConfig::ec2(
            PolicyKind::elephant_default(),
            SchedulerKind::fair_default(),
            1,
        );
        assert_eq!(e.profile.nodes, 99);
        assert_eq!(e.scheduler.label(), "fair");
        assert!((e.budget_frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_failures_validates_at_build_time() {
        let c = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        let ok = c.clone().with_failures(vec![(40, 2), (90, 7)]);
        assert_eq!(ok.faults.events.len(), 2);
        assert!(ok.validate().is_ok());

        let out_of_range = std::panic::catch_unwind(|| {
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1)
                .with_failures(vec![(40, 99)])
        });
        assert!(out_of_range.is_err(), "node 99 on a 19-node cluster");

        let duplicate = std::panic::catch_unwind(|| {
            SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1)
                .with_failures(vec![(40, 2), (90, 2)])
        });
        assert!(duplicate.is_err(), "duplicate kill of node 2");
    }

    #[test]
    fn validation_catches_bad_budget() {
        let mut c = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        c.budget_frac = 1.5;
        assert!(c.validate().is_err());
        c.budget_frac = 0.5;
        c.heartbeat = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scanner_builders_and_validation() {
        let c = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        assert!(c.scanner.is_none(), "off by default");
        let s = c.clone().with_scanner(ScannerConfig::default());
        assert_eq!(s.scanner.unwrap().period, SimDuration::from_secs(60));
        assert!(s.validate().is_ok());
        let bad = c.clone().with_scanner(ScannerConfig {
            period: SimDuration::ZERO,
            bytes_per_sec: 1,
        });
        assert!(bad.validate().is_err(), "zero period rejected");
        let bad = c.with_scanner(ScannerConfig {
            period: SimDuration::from_secs(1),
            bytes_per_sec: 0,
        });
        assert!(bad.validate().is_err(), "zero budget rejected");
    }

    #[test]
    fn telemetry_builders_and_validation() {
        let c = SimConfig::cct(PolicyKind::Vanilla, SchedulerKind::Fifo, 1);
        assert!(c.telemetry.is_none(), "off by default");
        assert!(!c.self_profile);
        let t = c
            .clone()
            .with_telemetry(TelemetryConfig::default())
            .with_self_profile();
        assert_eq!(
            t.telemetry.unwrap().interval,
            SimDuration::from_secs(5),
            "default 5 s sampling interval"
        );
        assert!(t.self_profile);
        assert!(t.validate().is_ok());
        let bad = c.with_telemetry(TelemetryConfig {
            interval: SimDuration::ZERO,
        });
        assert!(bad.validate().is_err(), "zero interval rejected");
    }
}

//! Differential oracle: the indexed schedulers must be **bit-identical**
//! to the retained naive-scan implementations in `dare_sched::oracle`.
//!
//! Each case generates a random topology, block layout, job mix, and a
//! long interleaved event stream — slot offers, task completions,
//! replica churn (dynamic replicas promoted and evicted), task aborts
//! (requeue), mid-stream job arrivals, index rebuilds — and replays it
//! against two queue+scheduler pairs: the indexed production scheduler
//! and the O(tasks × replicas) scan oracle. Every single slot offer must
//! return exactly the same `Option<Assignment>` (job, task, block, and
//! locality class), and the queues must agree on pending counts at the
//! end. Any divergence in selection order, tie-breaking, delay-scheduling
//! skip bookkeeping, or index maintenance shows up as a first-offer
//! mismatch with a replayable case seed.

use dare_dfs::BlockId;
use dare_net::{NodeId, Topology};
use dare_sched::fair::FairConfig;
use dare_sched::oracle::{NaiveCapacityScheduler, NaiveFairScheduler, NaiveFifoScheduler};
use dare_sched::{
    Assignment, CapacityScheduler, FairScheduler, FifoScheduler, JobId, JobQueue, PendingTask,
    Scheduler, TableLookup, TaskId,
};
use dare_simcore::check::{env_cases, run_cases, Gen};
use dare_simcore::SimTime;

/// Random topology: 4-12 nodes over 1-4 racks.
fn topology(g: &mut Gen) -> Topology {
    let nodes = g.usize_in(4..13);
    let racks = g.u32_in(1..5);
    let assignment: Vec<u32> = (0..nodes).map(|_| g.u32_in(0..racks)).collect();
    Topology::explicit(assignment, 10)
}

/// Random initial layout: every block gets 1-3 distinct replica nodes.
fn layout(g: &mut Gen, blocks: u64, nodes: u32) -> TableLookup {
    let mut t = TableLookup::new();
    for b in 0..blocks {
        let k = g.usize_in(1..4);
        let mut locs: Vec<u32> = Vec::new();
        for _ in 0..k {
            let n = g.u32_in(0..nodes);
            if !locs.contains(&n) {
                locs.push(n);
            }
        }
        t.set(b, &locs);
    }
    t
}

fn job_tasks(g: &mut Gen, blocks: u64) -> Vec<PendingTask> {
    g.vec(1..10, |g| g.u64_in(0..blocks))
        .into_iter()
        .enumerate()
        .map(|(t, b)| PendingTask {
            task: TaskId(t as u32),
            block: BlockId(b),
        })
        .collect()
}

struct Pair {
    indexed: JobQueue,
    naive: JobQueue,
}

impl Pair {
    fn add_job(
        &mut self,
        id: JobId,
        arrival: SimTime,
        tasks: Vec<PendingTask>,
        lookup: &TableLookup,
        topo: &Topology,
    ) {
        self.indexed
            .add_job(id, arrival, tasks.clone(), lookup, topo);
        self.naive.add_job(id, arrival, tasks, lookup, topo);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_stream(
    g: &mut Gen,
    topo: &Topology,
    lookup: &mut TableLookup,
    pair: &mut Pair,
    indexed: &mut dyn Scheduler,
    naive: &mut dyn Scheduler,
    blocks: u64,
    nodes: u32,
) {
    let mut running: Vec<Assignment> = Vec::new();
    let mut next_job = pair.indexed.len() as u32;
    let mut offers = 0usize;
    let steps = g.usize_in(60..240);
    for step in 0..steps {
        match g.usize_in(0..15) {
            // Slot offers dominate the stream.
            0..=6 => {
                let node = NodeId(g.u32_in(0..nodes));
                let now = SimTime::from_secs(step as u64);
                let ai = indexed.pick_map(&mut pair.indexed, node, lookup, topo, now);
                let an = naive.pick_map(&mut pair.naive, node, lookup, topo, now);
                assert_eq!(
                    ai, an,
                    "offer {offers} on node {node:?} diverged (indexed vs naive)"
                );
                if let Some(a) = ai {
                    running.push(a);
                }
                offers += 1;
            }
            // A running task completes.
            7 => {
                if !running.is_empty() {
                    let i = g.usize_in(0..running.len());
                    let a = running.swap_remove(i);
                    pair.indexed.on_map_complete(a.job);
                    pair.naive.on_map_complete(a.job);
                }
            }
            // Replica promoted (dynamic replica became visible).
            8 => {
                let b = BlockId(g.u64_in(0..blocks));
                let n = NodeId(g.u32_in(0..nodes));
                if lookup.add_location(b, n) {
                    pair.indexed.note_replica_added(b, n, topo);
                    pair.naive.note_replica_added(b, n, topo);
                }
            }
            // Replica evicted.
            9 => {
                let b = BlockId(g.u64_in(0..blocks));
                let n = NodeId(g.u32_in(0..nodes));
                if lookup.remove_location(b, n) {
                    pair.indexed.note_replica_removed(b, n, topo);
                    pair.naive.note_replica_removed(b, n, topo);
                }
            }
            // A running attempt aborts and its task is requeued.
            10 => {
                if !running.is_empty() {
                    let i = g.usize_in(0..running.len());
                    let a = running.swap_remove(i);
                    pair.indexed
                        .requeue_task(a.job, a.task, a.block, lookup, topo);
                    pair.naive.requeue_task(a.job, a.task, a.block, lookup, topo);
                }
            }
            // A job fails under faults and is abandoned on both queues.
            // The engine ignores completions of abandoned jobs, so drop
            // its running attempts too; a repeat abandon must be a no-op.
            11 => {
                if !running.is_empty() {
                    let i = g.usize_in(0..running.len());
                    let victim = running[i].job;
                    running.retain(|a| a.job != victim);
                    pair.indexed.abandon_job(victim);
                    pair.naive.abandon_job(victim);
                    pair.indexed.abandon_job(victim);
                    pair.naive.abandon_job(victim);
                }
            }
            // A node is declared dead: every replica it held vanishes at
            // once and the engine rebuilds from the lookup (the bulk
            // churn path, not incremental maintenance).
            12 => {
                let n = NodeId(g.u32_in(0..nodes));
                for b in 0..blocks {
                    lookup.remove_location(BlockId(b), n);
                }
                pair.indexed.rebuild_index(lookup, topo);
                pair.naive.rebuild_index(lookup, topo);
            }
            // A node rejoins and its block report restores a batch of
            // replicas through the incremental path.
            13 => {
                let n = NodeId(g.u32_in(0..nodes));
                for _ in 0..g.usize_in(1..6) {
                    let b = BlockId(g.u64_in(0..blocks));
                    if lookup.add_location(b, n) {
                        pair.indexed.note_replica_added(b, n, topo);
                        pair.naive.note_replica_added(b, n, topo);
                    }
                }
            }
            // A new job arrives; occasionally force a full index rebuild
            // (the engine's node-failure path) which must be a no-op
            // relative to incremental maintenance.
            _ => {
                if g.bool(0.3) {
                    pair.indexed.rebuild_index(lookup, topo);
                } else {
                    let tasks = job_tasks(g, blocks);
                    pair.add_job(
                        JobId(next_job),
                        SimTime::from_secs(step as u64),
                        tasks,
                        lookup,
                        topo,
                    );
                    next_job += 1;
                }
            }
        }
        assert_eq!(
            pair.indexed.total_pending(),
            pair.naive.total_pending(),
            "pending counts diverged at step {step}"
        );
    }
}

type SchedPair = (Box<dyn Scheduler>, Box<dyn Scheduler>);

fn check(seed: u64, mk: fn(&mut Gen) -> SchedPair) {
    run_cases(env_cases(40), seed, |g| {
        let topo = topology(g);
        let nodes = topo.nodes();
        let blocks = g.u64_in(8..48);
        let mut lookup = layout(g, blocks, nodes);
        let mut pair = Pair {
            indexed: JobQueue::new(),
            naive: JobQueue::new(),
        };
        let njobs = g.usize_in(1..6);
        for j in 0..njobs {
            let tasks = job_tasks(g, blocks);
            pair.add_job(JobId(j as u32), SimTime::ZERO, tasks, &lookup, &topo);
        }
        let (mut indexed, mut naive) = mk(g);
        run_stream(
            g,
            &topo,
            &mut lookup,
            &mut pair,
            indexed.as_mut(),
            naive.as_mut(),
            blocks,
            nodes,
        );
    });
}

#[test]
fn fifo_indexed_matches_naive_scan() {
    check(0xD1FF_0001, |_| {
        (
            Box::new(FifoScheduler::new()),
            Box::new(NaiveFifoScheduler::new()),
        )
    });
}

#[test]
fn fair_indexed_matches_naive_scan() {
    check(0xD1FF_0002, |g| {
        let d1 = g.u32_in(0..5);
        let d2 = d1 + g.u32_in(0..5);
        let cfg = FairConfig { d1, d2 };
        (
            Box::new(FairScheduler::with_config(cfg)),
            Box::new(NaiveFairScheduler::with_config(cfg)),
        )
    });
}

#[test]
fn capacity_indexed_matches_naive_scan() {
    check(0xD1FF_0003, |g| {
        let queues = g.u32_in(1..4);
        (
            Box::new(CapacityScheduler::new(queues)),
            Box::new(NaiveCapacityScheduler::new(queues)),
        )
    });
}

//! Property-based scheduler tests: whatever the job mix and offer
//! sequence, every scheduler hands out each task exactly once, reports
//! the locality that the oracle would compute, and never invents work.

use dare_dfs::BlockId;
use dare_net::{NodeId, Topology};
use dare_sched::locality::classify;
use dare_sched::{
    CapacityScheduler, FairScheduler, FifoScheduler, JobId, JobQueue, PendingTask, Scheduler,
    TaskId,
};
use dare_simcore::SimTime;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const NODES: u32 = 8;

#[derive(Debug, Clone)]
struct JobSpec {
    tasks: Vec<u64>, // block ids
}

fn jobs_strategy() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        prop::collection::vec(0u64..64, 1..12).prop_map(|tasks| JobSpec { tasks }),
        1..8,
    )
}

/// Deterministic pseudo-random replica locations per block.
fn locations(b: BlockId) -> Vec<NodeId> {
    let k = 1 + (b.0 % 3) as usize; // 1-3 replicas
    (0..k)
        .map(|i| NodeId(((b.0 * 7 + i as u64 * 13) % NODES as u64) as u32))
        .collect()
}

fn build_queue(jobs: &[JobSpec]) -> JobQueue {
    let mut q = JobQueue::new();
    for (j, spec) in jobs.iter().enumerate() {
        let tasks: Vec<PendingTask> = spec
            .tasks
            .iter()
            .enumerate()
            .map(|(t, &b)| PendingTask {
                task: TaskId(t as u32),
                block: BlockId(b),
            })
            .collect();
        q.add_job(JobId(j as u32), SimTime::from_secs(j as u64), tasks);
    }
    q
}

/// Drain the queue by offering slots round-robin; returns assignments.
fn drain(
    sched: &mut dyn Scheduler,
    q: &mut JobQueue,
    topo: &Topology,
    offers: &[u32],
) -> Vec<(JobId, TaskId, BlockId, dare_sched::Locality)> {
    let mut out = Vec::new();
    let mut idle_rounds = 0;
    let mut i = 0;
    // Fair can decline offers; completing tasks clears running counts so
    // its deficit ordering keeps moving. Simulate instant completion.
    while q.has_pending() && idle_rounds < 10_000 {
        let node = NodeId(offers[i % offers.len()]);
        i += 1;
        match sched.pick_map(q, node, &locations, topo, SimTime::ZERO) {
            Some(a) => {
                out.push((a.job, a.task, a.block, a.locality));
                q.on_map_complete(a.job);
                idle_rounds = 0;
            }
            None => idle_rounds += 1,
        }
    }
    out
}

fn check_all(jobs: Vec<JobSpec>, offers: Vec<u32>) -> Result<(), TestCaseError> {
    let topo = Topology::explicit(vec![0, 0, 1, 1, 2, 2, 3, 3], 2);
    let total: usize = jobs.iter().map(|j| j.tasks.len()).sum();

    type MkSched = fn() -> Box<dyn Scheduler>;
    let schedulers: [(&str, MkSched); 3] = [
        ("fifo", || Box::new(FifoScheduler::new())),
        ("fair", || Box::new(FairScheduler::new())),
        ("capacity", || Box::new(CapacityScheduler::new(3))),
    ];
    for (name, mk) in schedulers {
        let mut q = build_queue(&jobs);
        let mut sched = mk();
        let out = drain(sched.as_mut(), &mut q, &topo, &offers);

        // Every task assigned exactly once.
        prop_assert_eq!(out.len(), total, "{}: task conservation", name);
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for (j, t, _, _) in &out {
            prop_assert!(seen.insert((j.0, t.0)), "{}: duplicate assignment", name);
        }
        // Blocks match the original specs.
        let mut per_job: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
        for (j, t, b, _) in &out {
            per_job.entry(j.0).or_default().push((t.0, b.0));
        }
        for (j, spec) in jobs.iter().enumerate() {
            let mut got = per_job.remove(&(j as u32)).unwrap_or_default();
            got.sort_unstable();
            let want: Vec<(u32, u64)> = spec
                .tasks
                .iter()
                .enumerate()
                .map(|(t, &b)| (t as u32, b))
                .collect();
            prop_assert_eq!(got, want, "{}: job {} task/block mapping", name, j);
        }
        // Queue is fully drained.
        prop_assert_eq!(q.total_pending(), 0, "{}: queue drained", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedulers_conserve_tasks(
        jobs in jobs_strategy(),
        offers in prop::collection::vec(0u32..NODES, 1..16),
    ) {
        check_all(jobs, offers)?;
    }

    #[test]
    fn reported_locality_matches_oracle(
        jobs in jobs_strategy(),
        offers in prop::collection::vec(0u32..NODES, 1..16),
    ) {
        let topo = Topology::explicit(vec![0, 0, 1, 1, 2, 2, 3, 3], 2);
        let mut q = build_queue(&jobs);
        let mut sched = FifoScheduler::new();
        let mut i = 0;
        while q.has_pending() {
            let node = NodeId(offers[i % offers.len()]);
            i += 1;
            if let Some(a) = sched.pick_map(&mut q, node, &locations, &topo, SimTime::ZERO) {
                let want = classify(a.block, node, &locations, &topo);
                prop_assert_eq!(a.locality, want, "locality class mismatch");
                q.on_map_complete(a.job);
            }
        }
    }
}

//! Property-based scheduler tests: whatever the job mix and offer
//! sequence, every scheduler hands out each task exactly once, reports
//! the locality that the oracle would compute, and never invents work.

use dare_dfs::BlockId;
use dare_net::{NodeId, Topology};
use dare_sched::locality::classify;
use dare_sched::{
    CapacityScheduler, FairScheduler, FifoScheduler, JobId, JobQueue, PendingTask, Scheduler,
    TableLookup, TaskId,
};
use dare_simcore::check::{env_cases, run_cases, Gen};
use dare_simcore::SimTime;
use std::collections::{HashMap, HashSet};

const NODES: u32 = 8;
const BLOCKS: u64 = 64;

#[derive(Debug, Clone)]
struct JobSpec {
    tasks: Vec<u64>, // block ids
}

fn jobs(g: &mut Gen) -> Vec<JobSpec> {
    g.vec(1..8, |g| JobSpec {
        tasks: g.vec(1..12, |g| g.u64_in(0..BLOCKS)),
    })
}

fn offers(g: &mut Gen) -> Vec<u32> {
    g.vec(1..16, |g| g.u32_in(0..NODES))
}

/// Deterministic pseudo-random replica locations per block (1-3 replicas).
fn locations() -> TableLookup {
    let mut t = TableLookup::new();
    for b in 0..BLOCKS {
        let k = 1 + (b % 3) as u32;
        let nodes: Vec<u32> = (0..k)
            .map(|i| ((b * 7 + i as u64 * 13) % NODES as u64) as u32)
            .collect();
        // Replica lists may repeat a node for some block ids; dedup to
        // honour the "locations are unique" contract.
        let mut uniq = Vec::new();
        for n in nodes {
            if !uniq.contains(&n) {
                uniq.push(n);
            }
        }
        t.set(b, &uniq);
    }
    t
}

fn build_queue(jobs: &[JobSpec], lookup: &TableLookup, topo: &Topology) -> JobQueue {
    let mut q = JobQueue::new();
    for (j, spec) in jobs.iter().enumerate() {
        let tasks: Vec<PendingTask> = spec
            .tasks
            .iter()
            .enumerate()
            .map(|(t, &b)| PendingTask {
                task: TaskId(t as u32),
                block: BlockId(b),
            })
            .collect();
        q.add_job(JobId(j as u32), SimTime::from_secs(j as u64), tasks, lookup, topo);
    }
    q
}

/// Drain the queue by offering slots round-robin; returns assignments.
fn drain(
    sched: &mut dyn Scheduler,
    q: &mut JobQueue,
    lookup: &TableLookup,
    topo: &Topology,
    offers: &[u32],
) -> Vec<(JobId, TaskId, BlockId, dare_sched::Locality)> {
    let mut out = Vec::new();
    let mut idle_rounds = 0;
    let mut i = 0;
    // Fair can decline offers; completing tasks clears running counts so
    // its deficit ordering keeps moving. Simulate instant completion.
    while q.has_pending() && idle_rounds < 10_000 {
        let node = NodeId(offers[i % offers.len()]);
        i += 1;
        match sched.pick_map(q, node, lookup, topo, SimTime::ZERO) {
            Some(a) => {
                out.push((a.job, a.task, a.block, a.locality));
                q.on_map_complete(a.job);
                idle_rounds = 0;
            }
            None => idle_rounds += 1,
        }
    }
    out
}

fn check_all(jobs: &[JobSpec], offers: &[u32]) {
    let topo = Topology::explicit(vec![0, 0, 1, 1, 2, 2, 3, 3], 2);
    let lookup = locations();
    let total: usize = jobs.iter().map(|j| j.tasks.len()).sum();

    type MkSched = fn() -> Box<dyn Scheduler>;
    let schedulers: [(&str, MkSched); 3] = [
        ("fifo", || Box::new(FifoScheduler::new())),
        ("fair", || Box::new(FairScheduler::new())),
        ("capacity", || Box::new(CapacityScheduler::new(3))),
    ];
    for (name, mk) in schedulers {
        let mut q = build_queue(jobs, &lookup, &topo);
        let mut sched = mk();
        let out = drain(sched.as_mut(), &mut q, &lookup, &topo, offers);

        // Every task assigned exactly once.
        assert_eq!(out.len(), total, "{name}: task conservation");
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for (j, t, _, _) in &out {
            assert!(seen.insert((j.0, t.0)), "{name}: duplicate assignment");
        }
        // Blocks match the original specs.
        let mut per_job: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
        for (j, t, b, _) in &out {
            per_job.entry(j.0).or_default().push((t.0, b.0));
        }
        for (j, spec) in jobs.iter().enumerate() {
            let mut got = per_job.remove(&(j as u32)).unwrap_or_default();
            got.sort_unstable();
            let want: Vec<(u32, u64)> = spec
                .tasks
                .iter()
                .enumerate()
                .map(|(t, &b)| (t as u32, b))
                .collect();
            assert_eq!(got, want, "{name}: job {j} task/block mapping");
        }
        // Queue is fully drained.
        assert_eq!(q.total_pending(), 0, "{name}: queue drained");
    }
}

#[test]
fn schedulers_conserve_tasks() {
    run_cases(env_cases(48), 0x5C4E_0001, |g| {
        let jobs = jobs(g);
        let offers = offers(g);
        check_all(&jobs, &offers);
    });
}

#[test]
fn reported_locality_matches_oracle() {
    run_cases(env_cases(48), 0x5C4E_0002, |g| {
        let jobs = jobs(g);
        let offers = offers(g);
        let topo = Topology::explicit(vec![0, 0, 1, 1, 2, 2, 3, 3], 2);
        let lookup = locations();
        let mut q = build_queue(&jobs, &lookup, &topo);
        let mut sched = FifoScheduler::new();
        let mut i = 0;
        while q.has_pending() {
            let node = NodeId(offers[i % offers.len()]);
            i += 1;
            if let Some(a) = sched.pick_map(&mut q, node, &lookup, &topo, SimTime::ZERO) {
                let want = classify(a.block, node, &lookup, &topo);
                assert_eq!(a.locality, want, "locality class mismatch");
                q.on_map_complete(a.job);
            }
        }
    });
}

//! Naive-scan reference schedulers — the **differential oracle**.
//!
//! These are the pre-index implementations of FIFO, Fair, and Capacity,
//! preserved verbatim: task selection scans the job's pending vector and
//! [`classify`]s every task against the live location lookup; Fair's
//! deficit order is a full sort per offer. They are O(tasks × replicas)
//! per slot offer and exist for one reason: to *prove* the indexed
//! schedulers bit-identical. `tests/differential_oracle.rs` replays the
//! same seeded offer streams against both and asserts the assignment
//! sequences match exactly; the scheduler microbenchmark uses them as the
//! "before" side of the speedup measurement.
//!
//! Selection semantics being checked (both paths must implement them):
//! the pick is the *first pending position* within the best locality
//! class — the scan keeps a candidate and replaces it only on a strict
//! improvement, breaking early on node-local.

use crate::fair::FairConfig;
use crate::locality::{classify, Locality};
use crate::queue::{Assignment, JobId, JobQueue};
use crate::{LocationLookup, Scheduler, SkipDecision};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// Scan a job's pending tasks for the best-locality pick (naive path).
fn scan_best(
    queue: &JobQueue,
    job_id: JobId,
    node: NodeId,
    lookup: &dyn LocationLookup,
    topo: &Topology,
) -> (usize, Locality) {
    let job = queue.job(job_id).expect("job exists");
    let mut best: Option<(usize, Locality)> = None;
    for (idx, t) in job.pending().iter().enumerate() {
        let loc = classify(t.block, node, lookup, topo);
        match best {
            Some((_, b)) if b <= loc => {}
            _ => best = Some((idx, loc)),
        }
        if loc == Locality::NodeLocal {
            break; // can't do better
        }
    }
    best.expect("pending non-empty")
}

/// Scan-based FIFO: arrival order, full pending scan per offer.
#[derive(Debug, Default)]
pub struct NaiveFifoScheduler;

impl NaiveFifoScheduler {
    /// Construct.
    pub fn new() -> Self {
        NaiveFifoScheduler
    }
}

impl Scheduler for NaiveFifoScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        let job_id = queue.jobs().iter().find(|j| !j.pending().is_empty())?.id;
        let (idx, locality) = scan_best(queue, job_id, node, lookup, topo);
        let t = queue.take_task(job_id, idx);
        Some(Assignment {
            job: job_id,
            task: t.task,
            block: t.block,
            locality,
        })
    }

    fn name(&self) -> &'static str {
        "fifo-naive"
    }
}

/// Scan-based Fair with delay scheduling: full deficit sort + full pending
/// scan per offer.
#[derive(Debug, Default)]
pub struct NaiveFairScheduler {
    cfg: FairConfig,
    trace: bool,
    skip_log: Vec<SkipDecision>,
}

impl NaiveFairScheduler {
    /// Scheduler with default skip thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scheduler with explicit thresholds.
    pub fn with_config(cfg: FairConfig) -> Self {
        assert!(cfg.d1 <= cfg.d2, "rack threshold must not exceed any");
        NaiveFairScheduler {
            cfg,
            trace: false,
            skip_log: Vec::new(),
        }
    }
}

impl Scheduler for NaiveFairScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // Deficit order recomputed from scratch: fewest running maps,
        // then arrival, then id (unique key — order is total).
        let mut order: Vec<JobId> = queue
            .jobs()
            .iter()
            .filter(|j| !j.pending().is_empty())
            .map(|j| j.id)
            .collect();
        order.sort_by_key(|&id| {
            let j = queue.job(id).expect("listed job exists");
            (j.running_maps(), j.arrival, j.id)
        });

        for job_id in order {
            let (idx, loc) = scan_best(queue, job_id, node, lookup, topo);
            let skip_count = queue.job(job_id).expect("job exists").skip_count;
            let allowed = match loc {
                Locality::NodeLocal => true,
                Locality::RackLocal => skip_count >= self.cfg.d1,
                Locality::Remote => skip_count >= self.cfg.d2,
            };
            if allowed {
                queue.job_mut(job_id).expect("job exists").skip_count = 0;
                let t = queue.take_task(job_id, idx);
                return Some(Assignment {
                    job: job_id,
                    task: t.task,
                    block: t.block,
                    locality: loc,
                });
            }
            if self.trace {
                self.skip_log.push(SkipDecision {
                    job: job_id,
                    node,
                    offered: loc,
                    skips: skip_count,
                });
            }
            queue.job_mut(job_id).expect("job exists").skip_count += 1;
        }
        None
    }

    fn name(&self) -> &'static str {
        "fair-naive"
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled;
        if !enabled {
            self.skip_log.clear();
        }
    }

    fn drain_skips(&mut self, out: &mut Vec<SkipDecision>) {
        out.append(&mut self.skip_log);
    }
}

/// Scan-based Capacity: per-offer usage tally + full pending scan.
#[derive(Debug)]
pub struct NaiveCapacityScheduler {
    queues: u32,
}

impl NaiveCapacityScheduler {
    /// Scheduler with `queues` equal-capacity queues (≥ 1).
    pub fn new(queues: u32) -> Self {
        assert!(queues >= 1, "need at least one queue");
        NaiveCapacityScheduler { queues }
    }
}

impl Scheduler for NaiveCapacityScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        let mut running = vec![0u32; self.queues as usize];
        let mut has_pending = vec![false; self.queues as usize];
        for j in queue.jobs() {
            let q = (j.id.0 % self.queues) as usize;
            running[q] += j.running_maps();
            has_pending[q] |= !j.pending().is_empty();
        }
        let q = (0..self.queues)
            .filter(|&q| has_pending[q as usize])
            .min_by_key(|&q| (running[q as usize], q))?;
        let job_id = queue
            .jobs()
            .iter()
            .find(|j| j.id.0 % self.queues == q && !j.pending().is_empty())
            .map(|j| j.id)
            .expect("chosen queue has pending work");
        let (idx, loc) = scan_best(queue, job_id, node, lookup, topo);
        let t = queue.take_task(job_id, idx);
        Some(Assignment {
            job: job_id,
            task: t.task,
            block: t.block,
            locality: loc,
        })
    }

    fn name(&self) -> &'static str {
        "capacity-naive"
    }
}

//! # dare-sched — MapReduce job schedulers
//!
//! The two schedulers the paper evaluates DARE under (Section V-A):
//!
//! * [`fifo::FifoScheduler`] — Hadoop's default: jobs served in arrival
//!   order; within the head-of-line job the scheduler prefers a node-local
//!   task for the heartbeating node, then rack-local, then any. It never
//!   skips the head job for locality — the head-of-line problem that makes
//!   vanilla FIFO locality so poor on small jobs (and gives DARE its 7×
//!   headroom in Fig. 7a).
//! * [`fair::FairScheduler`] — fair sharing with **delay scheduling**
//!   (Zaharia et al., EuroSys 2010): jobs are ordered by fewest running
//!   tasks; a job that cannot launch a node-local task on the offered slot
//!   is skipped, and only after `d1` skipped opportunities may it launch
//!   rack-local (after `d2`, anywhere). This trades a small launch delay
//!   for locality, which is why the Fair baseline already sits at ~83 % on
//!   wl2 — and why DARE on top pushes it toward 100 %.
//!
//! A simplified [`capacity::CapacityScheduler`] (multi-queue, Hadoop's
//! third classic scheduler) is included beyond the paper's pair to stress
//! the scheduler-agnostic claim.
//!
//! DARE itself is scheduler-agnostic; the schedulers see dynamic replicas
//! simply as extra locations returned by the name-node lookup the engine
//! passes in.

#![warn(missing_docs)]

pub mod capacity;
pub mod fair;
pub mod fifo;
pub mod locality;
pub mod queue;

pub use capacity::CapacityScheduler;
pub use fair::FairScheduler;
pub use fifo::FifoScheduler;
pub use locality::Locality;
pub use queue::{Assignment, JobEntry, JobId, JobQueue, PendingTask, TaskId};

use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// Block-location oracle the engine passes to a scheduler: the name node's
/// *visible* replica locations for a block.
pub trait LocationLookup {
    /// Nodes holding a scheduler-visible replica of the block.
    fn locations(&self, block: dare_dfs::BlockId) -> Vec<NodeId>;
}

impl<F: Fn(dare_dfs::BlockId) -> Vec<NodeId>> LocationLookup for F {
    fn locations(&self, block: dare_dfs::BlockId) -> Vec<NodeId> {
        self(block)
    }
}

/// A map-task scheduler: picks the next map task to run on a freed slot.
pub trait Scheduler {
    /// Offer one free map slot on `node` at `now`. On a hit, the task is
    /// removed from `queue`'s pending set, the job's running count is
    /// incremented, and the assignment (with its achieved locality) is
    /// returned.
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        now: SimTime,
    ) -> Option<Assignment>;

    /// Scheduler name for reports ("fifo", "fair").
    fn name(&self) -> &'static str;
}

//! # dare-sched — MapReduce job schedulers
//!
//! The two schedulers the paper evaluates DARE under (Section V-A):
//!
//! * [`fifo::FifoScheduler`] — Hadoop's default: jobs served in arrival
//!   order; within the head-of-line job the scheduler prefers a node-local
//!   task for the heartbeating node, then rack-local, then any. It never
//!   skips the head job for locality — the head-of-line problem that makes
//!   vanilla FIFO locality so poor on small jobs (and gives DARE its 7×
//!   headroom in Fig. 7a).
//! * [`fair::FairScheduler`] — fair sharing with **delay scheduling**
//!   (Zaharia et al., EuroSys 2010): jobs are ordered by fewest running
//!   tasks; a job that cannot launch a node-local task on the offered slot
//!   is skipped, and only after `d1` skipped opportunities may it launch
//!   rack-local (after `d2`, anywhere). This trades a small launch delay
//!   for locality, which is why the Fair baseline already sits at ~83 % on
//!   wl2 — and why DARE on top pushes it toward 100 %.
//!
//! A simplified [`capacity::CapacityScheduler`] (multi-queue, Hadoop's
//! third classic scheduler) is included beyond the paper's pair to stress
//! the scheduler-agnostic claim.
//!
//! DARE itself is scheduler-agnostic; the schedulers see dynamic replicas
//! simply as extra locations returned by the name-node lookup the engine
//! passes in.

#![warn(missing_docs)]

pub mod capacity;
pub mod fair;
pub mod fifo;
pub mod locality;
pub mod oracle;
pub mod queue;

pub use capacity::CapacityScheduler;
pub use fair::FairScheduler;
pub use fifo::FifoScheduler;
pub use locality::Locality;
pub use queue::{Assignment, JobEntry, JobId, JobQueue, PendingTask, QueueDepth, TaskId};

use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// Block-location oracle the engine passes to a scheduler: the name node's
/// *visible* replica locations for a block.
///
/// The lookup returns a **borrowed** slice so the scheduling hot path never
/// allocates: the name node keeps a merged per-block location list up to
/// date incrementally, and `classify` / the schedulers read it in place.
/// Implementors are concrete types (the engine's name-node adapter, the
/// [`TableLookup`] used by tests and benches) — a closure cannot return a
/// borrow of its own captures, which is exactly the allocation this API
/// exists to avoid.
pub trait LocationLookup {
    /// Nodes holding a scheduler-visible replica of the block. Empty when
    /// the block is unknown.
    fn locations(&self, block: dare_dfs::BlockId) -> &[NodeId];
}

/// A static block → locations table implementing [`LocationLookup`] by
/// borrow. Unit tests, benches, and the differential oracle tests use it
/// in place of a live name node; `add_location` / `remove_location` model
/// replication churn (the caller mirrors those into
/// [`JobQueue::note_replica_added`] / [`JobQueue::note_replica_removed`],
/// exactly as the engine mirrors name-node promotions and evictions).
#[derive(Debug, Clone, Default)]
pub struct TableLookup {
    map: dare_simcore::FxHashMap<u64, Vec<NodeId>>,
    default_locs: Vec<NodeId>,
}

impl TableLookup {
    /// Empty table: every block resolves to no locations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Table from `(block, nodes)` pairs; unlisted blocks have no replicas.
    pub fn from_pairs(pairs: &[(u64, Vec<u32>)]) -> Self {
        let mut t = Self::new();
        for (b, nodes) in pairs {
            t.map
                .insert(*b, nodes.iter().map(|&n| NodeId(n)).collect());
        }
        t
    }

    /// Table where every block (listed or not) resolves to nodes `0..n`.
    pub fn everywhere(n: u32) -> Self {
        TableLookup {
            map: dare_simcore::FxHashMap::default(),
            default_locs: (0..n).map(NodeId).collect(),
        }
    }

    /// Set the full location list of one block.
    pub fn set(&mut self, block: u64, nodes: &[u32]) {
        self.map
            .insert(block, nodes.iter().map(|&n| NodeId(n)).collect());
    }

    /// Add one replica location; returns false if it was already present.
    pub fn add_location(&mut self, block: dare_dfs::BlockId, node: NodeId) -> bool {
        let locs = self.map.entry(block.0).or_default();
        if locs.contains(&node) {
            return false;
        }
        locs.push(node);
        true
    }

    /// Remove one replica location; returns false if it was not present.
    pub fn remove_location(&mut self, block: dare_dfs::BlockId, node: NodeId) -> bool {
        let Some(locs) = self.map.get_mut(&block.0) else {
            return false;
        };
        let before = locs.len();
        locs.retain(|&l| l != node);
        locs.len() != before
    }
}

impl LocationLookup for TableLookup {
    fn locations(&self, block: dare_dfs::BlockId) -> &[NodeId] {
        self.map
            .get(&block.0)
            .map(|v| v.as_slice())
            .unwrap_or(&self.default_locs)
    }
}

/// One delay-scheduling decline, recorded for tracing: the scheduler
/// passed over `job` on `node`'s free slot because the best task it could
/// launch there was only `offered`-local and the job had not yet burned
/// enough skips to accept that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipDecision {
    /// The job that was skipped.
    pub job: JobId,
    /// The node whose slot was declined.
    pub node: NodeId,
    /// Best locality the node could have offered the job.
    pub offered: Locality,
    /// The job's consecutive skip count *before* this decline.
    pub skips: u32,
}

/// A map-task scheduler: picks the next map task to run on a freed slot.
pub trait Scheduler {
    /// Offer one free map slot on `node` at `now`. On a hit, the task is
    /// removed from `queue`'s pending set, the job's running count is
    /// incremented, and the assignment (with its achieved locality) is
    /// returned.
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        now: SimTime,
    ) -> Option<Assignment>;

    /// Scheduler name for reports ("fifo", "fair").
    fn name(&self) -> &'static str;

    /// Enable or disable skip recording. Off by default; schedulers that
    /// have no delay logic (FIFO, capacity) ignore it.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Move the skip decisions recorded since the last drain into `out`
    /// (appending, in decision order). No-op unless tracing is enabled on
    /// a delay-scheduling implementation.
    fn drain_skips(&mut self, _out: &mut Vec<SkipDecision>) {}
}

//! Hadoop's default FIFO scheduler.
//!
//! Jobs are served strictly in arrival order. Within the job at the head of
//! the queue the scheduler prefers, for the heartbeating node, a node-local
//! map task, then a rack-local one, then any pending task. If the head job
//! has no pending maps (all handed out, some still running) the scheduler
//! falls through to the next job — Hadoop behaves the same way so slots
//! aren't wasted during a job's tail.
//!
//! Crucially, FIFO never *declines* a slot to wait for locality: the first
//! job with pending work always launches something. That head-of-line
//! behaviour is what caps vanilla FIFO locality near
//! `replication_factor / cluster_size` for small jobs.
//!
//! Task selection is answered by the queue's locality index
//! ([`JobQueue::pick_best_for`]) in O(log pending) without touching the
//! per-task location lists; [`crate::oracle::NaiveFifoScheduler`] keeps the
//! original scan for the differential tests.

use crate::queue::{Assignment, JobQueue};
use crate::{LocationLookup, Scheduler};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// The FIFO scheduler (no configuration).
#[derive(Debug, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Construct.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl Scheduler for FifoScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        _lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // First job (arrival order) with pending maps gets the slot.
        let job_id = queue.jobs().iter().find(|j| !j.pending().is_empty())?.id;
        let (idx, locality) = queue
            .pick_best_for(job_id, node, topo)
            .expect("job had pending tasks");
        let t = queue.take_task(job_id, idx);
        Some(Assignment {
            job: job_id,
            task: t.task,
            block: t.block,
            locality,
        })
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::Locality;
    use crate::queue::{JobId, PendingTask, TaskId};
    use crate::TableLookup;
    use dare_dfs::BlockId;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    #[test]
    fn prefers_node_local_within_head_job() {
        let topo = Topology::single_rack(4);
        let lookup = TableLookup::from_pairs(&[(10, vec![1]), (11, vec![2])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]), &lookup, &topo);
        let mut s = FifoScheduler::new();
        let a = s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.block, BlockId(11));
        assert_eq!(a.locality, Locality::NodeLocal);
    }

    #[test]
    fn head_job_launches_remote_rather_than_waiting() {
        let topo = Topology::single_rack(4);
        // Job 1's block is local to node 3, job 0's is not — FIFO must still
        // serve job 0 (remotely).
        let lookup = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![3])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]), &lookup, &topo);
        let mut s = FifoScheduler::new();
        let a = s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.job, JobId(0), "strict arrival order");
        // single rack: non-local means rack-local here
        assert_eq!(a.locality, Locality::RackLocal);
    }

    #[test]
    fn falls_through_when_head_job_drained() {
        let topo = Topology::single_rack(4);
        let lookup = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![1])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]), &lookup, &topo);
        let mut s = FifoScheduler::new();
        // Drain job 0's only task.
        s.pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("job 0 task");
        // Job 0 still running but has nothing pending: job 1 gets the slot.
        let a = s
            .pick_map(&mut q, NodeId(1), &lookup, &topo, SimTime::ZERO)
            .expect("job 1 task");
        assert_eq!(a.job, JobId(1));
        assert_eq!(a.locality, Locality::NodeLocal);
    }

    #[test]
    fn returns_none_when_nothing_pending() {
        let topo = Topology::single_rack(2);
        let lookup = TableLookup::new();
        let mut q = JobQueue::new();
        let mut s = FifoScheduler::new();
        assert!(s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn rack_local_beats_remote_on_multirack() {
        // node0+node1 in rack0; node2 in rack1
        let topo = Topology::explicit(vec![0, 0, 1], 10);
        // block 10 off-rack (node 2); block 11 rack-local to node 0 (node 1)
        let lookup = TableLookup::from_pairs(&[(10, vec![2]), (11, vec![1])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]), &lookup, &topo);
        let mut s = FifoScheduler::new();
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.block, BlockId(11));
        assert_eq!(a.locality, Locality::RackLocal);
    }
}

//! The Fair scheduler with delay scheduling (Zaharia et al., EuroSys 2010).
//!
//! Fair sharing: when a slot frees up, jobs are considered in order of
//! **fewest running map tasks** (deficit order — the job furthest below its
//! fair share goes first), ties broken by arrival. Delay scheduling then
//! decides *whether the job accepts the slot*:
//!
//! * a node-local task on the offered node is always launched (and resets
//!   the job's skip count);
//! * otherwise the job *skips* the opportunity — unless it has already
//!   skipped `d1` times (then it may launch rack-local) or `d2` times (then
//!   it may launch anywhere).
//!
//! Skipped jobs let jobs further down the order use the slot, which is the
//! whole point: some other job probably has local work here. The skip
//! thresholds are counted in scheduling opportunities, as in the original
//! paper (their `D` parameter); with heartbeats every 3 s on a loaded
//! cluster this approximates the 5-15 s wait times Zaharia et al. found
//! sufficient for near-perfect locality.

use crate::locality::{classify, Locality};
use crate::queue::{Assignment, JobId, JobQueue};
use crate::{LocationLookup, Scheduler};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// Fair scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairConfig {
    /// Skipped opportunities before a job may launch rack-local.
    pub d1: u32,
    /// Skipped opportunities before a job may launch anywhere.
    pub d2: u32,
}

impl Default for FairConfig {
    fn default() -> Self {
        // ~2 heartbeat rounds of patience for rack, ~4 for anywhere — the
        // EuroSys paper's sweet spot scaled to our 3 s heartbeats.
        FairConfig { d1: 4, d2: 8 }
    }
}

/// The Fair scheduler with delay scheduling.
#[derive(Debug, Default)]
pub struct FairScheduler {
    cfg: FairConfig,
}

impl FairScheduler {
    /// Scheduler with default skip thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scheduler with explicit thresholds (the `abl-delay` sweep).
    pub fn with_config(cfg: FairConfig) -> Self {
        assert!(cfg.d1 <= cfg.d2, "rack threshold must not exceed any");
        FairScheduler { cfg }
    }

    /// Active configuration.
    pub fn config(&self) -> FairConfig {
        self.cfg
    }
}

impl Scheduler for FairScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // Deficit order: fewest running maps first, then arrival order.
        let mut order: Vec<JobId> = queue
            .jobs()
            .iter()
            .filter(|j| !j.pending.is_empty())
            .map(|j| j.id)
            .collect();
        order.sort_by_key(|&id| {
            let j = queue.job(id).expect("listed job exists");
            (j.running_maps, j.arrival, j.id)
        });

        for job_id in order {
            let (skip_count, choice) = {
                let job = queue.job(job_id).expect("job exists");
                // Best pending task by locality for this node.
                let mut best: Option<(usize, Locality)> = None;
                for (idx, t) in job.pending.iter().enumerate() {
                    let loc = classify(t.block, node, lookup, topo);
                    match best {
                        Some((_, b)) if b <= loc => {}
                        _ => best = Some((idx, loc)),
                    }
                    if loc == Locality::NodeLocal {
                        break;
                    }
                }
                (job.skip_count, best.expect("pending non-empty"))
            };

            let (idx, loc) = choice;
            let allowed = match loc {
                Locality::NodeLocal => true,
                Locality::RackLocal => skip_count >= self.cfg.d1,
                Locality::Remote => skip_count >= self.cfg.d2,
            };
            if allowed {
                let job = queue.job_mut(job_id).expect("job exists");
                // Launching locally resets patience; a forced non-local
                // launch also resets it (the job got its slot).
                job.skip_count = 0;
                let t = queue.take_task(job_id, idx);
                return Some(Assignment {
                    job: job_id,
                    task: t.task,
                    block: t.block,
                    locality: loc,
                });
            }
            // Skip: remember the declined opportunity, try the next job.
            queue
                .job_mut(job_id)
                .expect("job exists")
                .skip_count += 1;
        }
        None
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PendingTask, TaskId};
    use dare_dfs::BlockId;
    use std::collections::HashMap;

    fn lookup_from(map: &[(u64, Vec<u32>)]) -> impl Fn(BlockId) -> Vec<NodeId> + '_ {
        let m: HashMap<u64, Vec<u32>> = map.iter().cloned().collect();
        move |b: BlockId| {
            m.get(&b.0)
                .map(|v| v.iter().map(|&n| NodeId(n)).collect())
                .unwrap_or_default()
        }
    }

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    #[test]
    fn skips_nonlocal_job_in_favor_of_local_one() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]));
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]));
        // job 0's data on node 0; job 1's data on node 3.
        let locs = [(10u64, vec![0u32]), (11, vec![3])];
        let lookup = lookup_from(&locs);
        let mut s = FairScheduler::new();
        // Offer node 3: job 0 (fewest running, earliest) is non-local and
        // must wait; job 1 launches node-local.
        let a = s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .expect("job 1 local launch");
        assert_eq!(a.job, JobId(1));
        assert_eq!(a.locality, Locality::NodeLocal);
        assert_eq!(q.job(JobId(0)).expect("active").skip_count, 1);
    }

    #[test]
    fn patience_exhausts_into_nonlocal_launch() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]));
        let locs = [(10u64, vec![0u32])];
        let lookup = lookup_from(&locs);
        let mut s = FairScheduler::with_config(FairConfig { d1: 2, d2: 2 });
        // Two declined offers on a non-local node...
        for i in 0..2 {
            assert!(
                s.pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
                    .is_none(),
                "offer {i} declined"
            );
        }
        // ...then the job gives up and launches non-locally.
        let a = s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .expect("patience exhausted");
        assert_eq!(a.job, JobId(0));
        assert_ne!(a.locality, Locality::NodeLocal);
        assert_eq!(q.job(JobId(0)).expect("active").skip_count, 0, "reset");
    }

    #[test]
    fn rack_local_allowed_before_remote() {
        // rack0: nodes 0,1 — rack1: nodes 2,3
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]));
        // block 10: replica on node 1 (rack-local to node 0);
        // block 11: replica on node 3 (remote to node 0).
        let locs = [(10u64, vec![1u32]), (11, vec![3])];
        let lookup = lookup_from(&locs);
        let mut s = FairScheduler::with_config(FairConfig { d1: 1, d2: 10 });
        assert!(
            s.pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
                .is_none(),
            "first offer declined"
        );
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("rack allowed after d1 skips");
        assert_eq!(a.block, BlockId(10));
        assert_eq!(a.locality, Locality::RackLocal);
    }

    #[test]
    fn fair_share_prefers_job_with_fewest_running() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 12]));
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]));
        // Everything local everywhere so locality never blocks.
        let locs = [
            (10u64, vec![0u32, 1, 2, 3]),
            (11, vec![0, 1, 2, 3]),
            (12, vec![0, 1, 2, 3]),
        ];
        let lookup = lookup_from(&locs);
        let mut s = FairScheduler::new();
        // Job 0 gets the first slot (tie at 0 running, earlier arrival).
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("slot");
        assert_eq!(a.job, JobId(0));
        // Now job 0 has 1 running, job 1 has 0: job 1 is next despite
        // arriving later.
        let b = s
            .pick_map(&mut q, NodeId(1), &lookup, &topo, SimTime::ZERO)
            .expect("slot");
        assert_eq!(b.job, JobId(1));
    }

    #[test]
    fn none_when_everything_waits() {
        let topo = Topology::single_rack(3);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]));
        let locs = [(10u64, vec![0u32])];
        let lookup = lookup_from(&locs);
        let mut s = FairScheduler::new(); // default d1=4
        assert!(s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_thresholds_rejected() {
        let _ = FairScheduler::with_config(FairConfig { d1: 5, d2: 1 });
    }
}

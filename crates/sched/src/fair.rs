//! The Fair scheduler with delay scheduling (Zaharia et al., EuroSys 2010).
//!
//! Fair sharing: when a slot frees up, jobs are considered in order of
//! **fewest running map tasks** (deficit order — the job furthest below its
//! fair share goes first), ties broken by arrival. Delay scheduling then
//! decides *whether the job accepts the slot*:
//!
//! * a node-local task on the offered node is always launched (and resets
//!   the job's skip count);
//! * otherwise the job *skips* the opportunity — unless it has already
//!   skipped `d1` times (then it may launch rack-local) or `d2` times (then
//!   it may launch anywhere).
//!
//! Skipped jobs let jobs further down the order use the slot, which is the
//! whole point: some other job probably has local work here. The skip
//! thresholds are counted in scheduling opportunities, as in the original
//! paper (their `D` parameter); with heartbeats every 3 s on a loaded
//! cluster this approximates the 5-15 s wait times Zaharia et al. found
//! sufficient for near-perfect locality.
//!
//! The deficit order comes from the queue's incrementally-maintained
//! `BTreeSet` ([`JobQueue::deficit_order_into`], filled into a reusable
//! scratch buffer) and per-job task selection from the locality index
//! ([`JobQueue::pick_best_for`]) — no sort and no allocation per offer.
//! [`crate::oracle::NaiveFairScheduler`] keeps the original
//! sort-plus-scan for the differential tests.

use crate::locality::Locality;
use crate::queue::{Assignment, JobId, JobQueue};
use crate::{LocationLookup, Scheduler, SkipDecision};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// Fair scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairConfig {
    /// Skipped opportunities before a job may launch rack-local.
    pub d1: u32,
    /// Skipped opportunities before a job may launch anywhere.
    pub d2: u32,
}

impl Default for FairConfig {
    fn default() -> Self {
        // ~2 heartbeat rounds of patience for rack, ~4 for anywhere — the
        // EuroSys paper's sweet spot scaled to our 3 s heartbeats.
        FairConfig { d1: 4, d2: 8 }
    }
}

/// The Fair scheduler with delay scheduling.
#[derive(Debug, Default)]
pub struct FairScheduler {
    cfg: FairConfig,
    /// Reused across offers so the steady state allocates nothing.
    order_scratch: Vec<JobId>,
    /// When true, declined opportunities are pushed onto `skip_log`.
    trace: bool,
    /// Skip decisions awaiting a [`Scheduler::drain_skips`] call.
    skip_log: Vec<SkipDecision>,
}

impl FairScheduler {
    /// Scheduler with default skip thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scheduler with explicit thresholds (the `abl-delay` sweep).
    pub fn with_config(cfg: FairConfig) -> Self {
        assert!(cfg.d1 <= cfg.d2, "rack threshold must not exceed any");
        FairScheduler {
            cfg,
            order_scratch: Vec::new(),
            trace: false,
            skip_log: Vec::new(),
        }
    }

    /// Active configuration.
    pub fn config(&self) -> FairConfig {
        self.cfg
    }
}

impl Scheduler for FairScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        _lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // Deficit order: fewest running maps first, then arrival order.
        let mut order = std::mem::take(&mut self.order_scratch);
        queue.deficit_order_into(&mut order);

        let mut picked = None;
        for &job_id in &order {
            let (idx, loc) = queue
                .pick_best_for(job_id, node, topo)
                .expect("listed jobs have pending work");
            let skip_count = queue.job(job_id).expect("job exists").skip_count;
            let allowed = match loc {
                Locality::NodeLocal => true,
                Locality::RackLocal => skip_count >= self.cfg.d1,
                Locality::Remote => skip_count >= self.cfg.d2,
            };
            if allowed {
                let job = queue.job_mut(job_id).expect("job exists");
                // Launching locally resets patience; a forced non-local
                // launch also resets it (the job got its slot).
                job.skip_count = 0;
                let t = queue.take_task(job_id, idx);
                picked = Some(Assignment {
                    job: job_id,
                    task: t.task,
                    block: t.block,
                    locality: loc,
                });
                break;
            }
            // Skip: remember the declined opportunity, try the next job.
            if self.trace {
                self.skip_log.push(SkipDecision {
                    job: job_id,
                    node,
                    offered: loc,
                    skips: skip_count,
                });
            }
            queue.job_mut(job_id).expect("job exists").skip_count += 1;
        }
        self.order_scratch = order;
        picked
    }

    fn name(&self) -> &'static str {
        "fair"
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled;
        if !enabled {
            self.skip_log.clear();
        }
    }

    fn drain_skips(&mut self, out: &mut Vec<SkipDecision>) {
        out.append(&mut self.skip_log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PendingTask, TaskId};
    use crate::TableLookup;
    use dare_dfs::BlockId;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    #[test]
    fn skips_nonlocal_job_in_favor_of_local_one() {
        let topo = Topology::single_rack(4);
        // job 0's data on node 0; job 1's data on node 3.
        let lookup = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![3])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]), &lookup, &topo);
        let mut s = FairScheduler::new();
        // Offer node 3: job 0 (fewest running, earliest) is non-local and
        // must wait; job 1 launches node-local.
        let a = s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .expect("job 1 local launch");
        assert_eq!(a.job, JobId(1));
        assert_eq!(a.locality, Locality::NodeLocal);
        assert_eq!(q.job(JobId(0)).expect("active").skip_count, 1);
    }

    #[test]
    fn patience_exhausts_into_nonlocal_launch() {
        let topo = Topology::single_rack(4);
        let lookup = TableLookup::from_pairs(&[(10, vec![0])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        let mut s = FairScheduler::with_config(FairConfig { d1: 2, d2: 2 });
        // Two declined offers on a non-local node...
        for i in 0..2 {
            assert!(
                s.pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
                    .is_none(),
                "offer {i} declined"
            );
        }
        // ...then the job gives up and launches non-locally.
        let a = s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .expect("patience exhausted");
        assert_eq!(a.job, JobId(0));
        assert_ne!(a.locality, Locality::NodeLocal);
        assert_eq!(q.job(JobId(0)).expect("active").skip_count, 0, "reset");
    }

    #[test]
    fn rack_local_allowed_before_remote() {
        // rack0: nodes 0,1 — rack1: nodes 2,3
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        // block 10: replica on node 1 (rack-local to node 0);
        // block 11: replica on node 3 (remote to node 0).
        let lookup = TableLookup::from_pairs(&[(10, vec![1]), (11, vec![3])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]), &lookup, &topo);
        let mut s = FairScheduler::with_config(FairConfig { d1: 1, d2: 10 });
        assert!(
            s.pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
                .is_none(),
            "first offer declined"
        );
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("rack allowed after d1 skips");
        assert_eq!(a.block, BlockId(10));
        assert_eq!(a.locality, Locality::RackLocal);
    }

    #[test]
    fn fair_share_prefers_job_with_fewest_running() {
        let topo = Topology::single_rack(4);
        // Everything local everywhere so locality never blocks.
        let lookup = TableLookup::everywhere(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 12]), &lookup, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[11]), &lookup, &topo);
        let mut s = FairScheduler::new();
        // Job 0 gets the first slot (tie at 0 running, earlier arrival).
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("slot");
        assert_eq!(a.job, JobId(0));
        // Now job 0 has 1 running, job 1 has 0: job 1 is next despite
        // arriving later.
        let b = s
            .pick_map(&mut q, NodeId(1), &lookup, &topo, SimTime::ZERO)
            .expect("slot");
        assert_eq!(b.job, JobId(1));
    }

    #[test]
    fn none_when_everything_waits() {
        let topo = Topology::single_rack(3);
        let lookup = TableLookup::from_pairs(&[(10, vec![0])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        let mut s = FairScheduler::new(); // default d1=4
        assert!(s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_thresholds_rejected() {
        let _ = FairScheduler::with_config(FairConfig { d1: 5, d2: 1 });
    }

    #[test]
    fn skip_decisions_are_recorded_only_when_tracing() {
        let topo = Topology::single_rack(4);
        let lookup = TableLookup::from_pairs(&[(10, vec![0])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lookup, &topo);
        let mut s = FairScheduler::with_config(FairConfig { d1: 2, d2: 2 });
        // Tracing off: declines happen but nothing is logged.
        assert!(s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .is_none());
        let mut out = Vec::new();
        s.drain_skips(&mut out);
        assert!(out.is_empty());

        s.set_tracing(true);
        assert!(s
            .pick_map(&mut q, NodeId(3), &lookup, &topo, SimTime::ZERO)
            .is_none());
        s.drain_skips(&mut out);
        assert_eq!(
            out,
            vec![SkipDecision {
                job: JobId(0),
                node: NodeId(3),
                offered: Locality::RackLocal,
                skips: 1,
            }],
            "second decline recorded with the pre-increment skip count"
        );
        // Drain is destructive.
        let mut again = Vec::new();
        s.drain_skips(&mut again);
        assert!(again.is_empty());
    }
}

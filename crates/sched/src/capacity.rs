//! A simplified Hadoop Capacity scheduler — the third classic Hadoop
//! scheduler, included to stress the paper's claim that DARE is
//! *scheduler-agnostic* beyond the two schedulers the paper evaluates.
//!
//! Model: jobs hash into `queues` organizational queues, each entitled to
//! an equal share of the cluster's map slots. When a slot frees up the
//! scheduler serves the **most underserved** queue (lowest
//! running/capacity ratio, ties to the lower queue id), FIFO within the
//! queue, with the same node-local > rack-local > any preference as FIFO.
//! Queues are *elastic*: an empty queue's share is usable by the others
//! (no hard caps), matching the Hadoop scheduler's default behaviour.

use crate::locality::{classify, Locality};
use crate::queue::{Assignment, JobId, JobQueue};
use crate::{LocationLookup, Scheduler};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// The Capacity scheduler.
#[derive(Debug)]
pub struct CapacityScheduler {
    queues: u32,
}

impl CapacityScheduler {
    /// Scheduler with `queues` equal-capacity queues (≥ 1).
    pub fn new(queues: u32) -> Self {
        assert!(queues >= 1, "need at least one queue");
        CapacityScheduler { queues }
    }

    /// Which queue a job belongs to.
    pub fn queue_of(&self, job: JobId) -> u32 {
        job.0 % self.queues
    }

    /// Number of configured queues.
    pub fn queues(&self) -> u32 {
        self.queues
    }
}

impl Scheduler for CapacityScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // Usage per organizational queue (running maps).
        let mut running = vec![0u32; self.queues as usize];
        let mut has_pending = vec![false; self.queues as usize];
        for j in queue.jobs() {
            let q = self.queue_of(j.id) as usize;
            running[q] += j.running_maps;
            has_pending[q] |= !j.pending.is_empty();
        }
        // Queues with pending work, most underserved first (equal
        // capacities, so raw running count orders them), ties by queue id.
        let mut order: Vec<u32> = (0..self.queues).filter(|&q| has_pending[q as usize]).collect();
        order.sort_by_key(|&q| (running[q as usize], q));

        // The most underserved queue with pending work gets the slot; like
        // FIFO, the capacity scheduler never declines an offer, so only the
        // first candidate queue is ever consulted.
        let q = *order.first()?;
        {
            // FIFO within the queue.
            let job_id = queue
                .jobs()
                .iter()
                .find(|j| self.queue_of(j.id) == q && !j.pending.is_empty())
                .map(|j| j.id)
                .expect("queues in `order` have pending work");
            let (idx, loc) = {
                let job = queue.job(job_id).expect("job listed");
                let mut best: Option<(usize, Locality)> = None;
                for (i, t) in job.pending.iter().enumerate() {
                    let l = classify(t.block, node, lookup, topo);
                    match best {
                        Some((_, b)) if b <= l => {}
                        _ => best = Some((i, l)),
                    }
                    if l == Locality::NodeLocal {
                        break;
                    }
                }
                best.expect("pending non-empty")
            };
            let t = queue.take_task(job_id, idx);
            Some(Assignment {
                job: job_id,
                task: t.task,
                block: t.block,
                locality: loc,
            })
        }
    }

    fn name(&self) -> &'static str {
        "capacity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PendingTask, TaskId};
    use dare_dfs::BlockId;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    fn anywhere(_: BlockId) -> Vec<NodeId> {
        (0..4).map(NodeId).collect()
    }

    #[test]
    fn serves_underserved_queue_first() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        // jobs 0 and 2 hash to queue 0; job 1 to queue 1 (2 queues).
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2, 3]));
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[4, 5]));
        let mut s = CapacityScheduler::new(2);
        // First slot: both queues at 0 running; tie -> queue 0 -> job 0.
        let a = s
            .pick_map(&mut q, NodeId(0), &anywhere, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.job, JobId(0));
        // Queue 0 now has 1 running; queue 1 is underserved -> job 1.
        let b = s
            .pick_map(&mut q, NodeId(1), &anywhere, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(b.job, JobId(1));
        // Even again: back to queue 0.
        let c = s
            .pick_map(&mut q, NodeId(2), &anywhere, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(c.job, JobId(0));
    }

    #[test]
    fn elastic_when_other_queue_is_empty() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2, 3, 4]));
        let mut s = CapacityScheduler::new(3);
        // Only queue 0 has work: it may use every slot.
        for _ in 0..4 {
            let a = s
                .pick_map(&mut q, NodeId(0), &anywhere, &topo, SimTime::ZERO)
                .expect("elastic capacity");
            assert_eq!(a.job, JobId(0));
        }
        assert!(s
            .pick_map(&mut q, NodeId(0), &anywhere, &topo, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn prefers_node_local_within_chosen_job() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]));
        let lookup = |b: BlockId| -> Vec<NodeId> {
            if b.0 == 11 {
                vec![NodeId(2)]
            } else {
                vec![NodeId(0)]
            }
        };
        let mut s = CapacityScheduler::new(2);
        let a = s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.block, BlockId(11));
        assert_eq!(a.locality, Locality::NodeLocal);
    }

    #[test]
    fn fifo_within_queue() {
        let topo = Topology::single_rack(4);
        let mut q = JobQueue::new();
        // jobs 0, 2, 4 all in queue 0 (2 queues)
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1]));
        q.add_job(JobId(2), SimTime::from_secs(1), tasks(&[2]));
        q.add_job(JobId(4), SimTime::from_secs(2), tasks(&[3]));
        let mut s = CapacityScheduler::new(2);
        let order: Vec<u32> = (0..3)
            .map(|_| {
                s.pick_map(&mut q, NodeId(0), &anywhere, &topo, SimTime::ZERO)
                    .expect("slot filled")
                    .job
                    .0
            })
            .collect();
        assert_eq!(order, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic]
    fn zero_queues_rejected() {
        let _ = CapacityScheduler::new(0);
    }
}

//! A simplified Hadoop Capacity scheduler — the third classic Hadoop
//! scheduler, included to stress the paper's claim that DARE is
//! *scheduler-agnostic* beyond the two schedulers the paper evaluates.
//!
//! Model: jobs hash into `queues` organizational queues, each entitled to
//! an equal share of the cluster's map slots. When a slot frees up the
//! scheduler serves the **most underserved** queue (lowest
//! running/capacity ratio, ties to the lower queue id), FIFO within the
//! queue, with the same node-local > rack-local > any preference as FIFO.
//! Queues are *elastic*: an empty queue's share is usable by the others
//! (no hard caps), matching the Hadoop scheduler's default behaviour.
//!
//! Within-job task selection uses the queue's locality index
//! ([`JobQueue::pick_best_for`]); [`crate::oracle::NaiveCapacityScheduler`]
//! keeps the original scan for the differential tests.

use crate::queue::{Assignment, JobId, JobQueue};
use crate::{LocationLookup, Scheduler};
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;

/// The Capacity scheduler.
#[derive(Debug)]
pub struct CapacityScheduler {
    queues: u32,
    /// Reused per offer: running maps and pending flags per queue.
    running_scratch: Vec<u32>,
    pending_scratch: Vec<bool>,
}

impl CapacityScheduler {
    /// Scheduler with `queues` equal-capacity queues (≥ 1).
    pub fn new(queues: u32) -> Self {
        assert!(queues >= 1, "need at least one queue");
        CapacityScheduler {
            queues,
            running_scratch: vec![0; queues as usize],
            pending_scratch: vec![false; queues as usize],
        }
    }

    /// Which queue a job belongs to.
    pub fn queue_of(&self, job: JobId) -> u32 {
        job.0 % self.queues
    }

    /// Number of configured queues.
    pub fn queues(&self) -> u32 {
        self.queues
    }
}

impl Scheduler for CapacityScheduler {
    fn pick_map(
        &mut self,
        queue: &mut JobQueue,
        node: NodeId,
        _lookup: &dyn LocationLookup,
        topo: &Topology,
        _now: SimTime,
    ) -> Option<Assignment> {
        // Usage per organizational queue (running maps).
        let running = &mut self.running_scratch;
        let has_pending = &mut self.pending_scratch;
        running.fill(0);
        has_pending.fill(false);
        for j in queue.jobs() {
            let q = (j.id.0 % self.queues) as usize;
            running[q] += j.running_maps();
            has_pending[q] |= !j.pending().is_empty();
        }
        // Most underserved queue with pending work (equal capacities, so
        // raw running count orders them), ties by queue id. Like FIFO, the
        // capacity scheduler never declines an offer, so only the first
        // candidate queue is ever consulted.
        let q = (0..self.queues)
            .filter(|&q| has_pending[q as usize])
            .min_by_key(|&q| (running[q as usize], q))?;
        // FIFO within the queue.
        let job_id = queue
            .jobs()
            .iter()
            .find(|j| j.id.0 % self.queues == q && !j.pending().is_empty())
            .map(|j| j.id)
            .expect("chosen queue has pending work");
        let (idx, loc) = queue
            .pick_best_for(job_id, node, topo)
            .expect("pending non-empty");
        let t = queue.take_task(job_id, idx);
        Some(Assignment {
            job: job_id,
            task: t.task,
            block: t.block,
            locality: loc,
        })
    }

    fn name(&self) -> &'static str {
        "capacity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::Locality;
    use crate::queue::{PendingTask, TaskId};
    use crate::TableLookup;
    use dare_dfs::BlockId;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    fn anywhere() -> TableLookup {
        TableLookup::everywhere(4)
    }

    #[test]
    fn serves_underserved_queue_first() {
        let topo = Topology::single_rack(4);
        let lookup = anywhere();
        let mut q = JobQueue::new();
        // jobs 0 and 2 hash to queue 0; job 1 to queue 1 (2 queues).
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2, 3]), &lookup, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[4, 5]), &lookup, &topo);
        let mut s = CapacityScheduler::new(2);
        // First slot: both queues at 0 running; tie -> queue 0 -> job 0.
        let a = s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.job, JobId(0));
        // Queue 0 now has 1 running; queue 1 is underserved -> job 1.
        let b = s
            .pick_map(&mut q, NodeId(1), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(b.job, JobId(1));
        // Even again: back to queue 0.
        let c = s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(c.job, JobId(0));
    }

    #[test]
    fn elastic_when_other_queue_is_empty() {
        let topo = Topology::single_rack(4);
        let lookup = anywhere();
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2, 3, 4]), &lookup, &topo);
        let mut s = CapacityScheduler::new(3);
        // Only queue 0 has work: it may use every slot.
        for _ in 0..4 {
            let a = s
                .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
                .expect("elastic capacity");
            assert_eq!(a.job, JobId(0));
        }
        assert!(s
            .pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn prefers_node_local_within_chosen_job() {
        let topo = Topology::single_rack(4);
        let lookup = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![2])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]), &lookup, &topo);
        let mut s = CapacityScheduler::new(2);
        let a = s
            .pick_map(&mut q, NodeId(2), &lookup, &topo, SimTime::ZERO)
            .expect("slot filled");
        assert_eq!(a.block, BlockId(11));
        assert_eq!(a.locality, Locality::NodeLocal);
    }

    #[test]
    fn fifo_within_queue() {
        let topo = Topology::single_rack(4);
        let lookup = anywhere();
        let mut q = JobQueue::new();
        // jobs 0, 2, 4 all in queue 0 (2 queues)
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1]), &lookup, &topo);
        q.add_job(JobId(2), SimTime::from_secs(1), tasks(&[2]), &lookup, &topo);
        q.add_job(JobId(4), SimTime::from_secs(2), tasks(&[3]), &lookup, &topo);
        let mut s = CapacityScheduler::new(2);
        let order: Vec<u32> = (0..3)
            .map(|_| {
                s.pick_map(&mut q, NodeId(0), &lookup, &topo, SimTime::ZERO)
                    .expect("slot filled")
                    .job
                    .0
            })
            .collect();
        assert_eq!(order, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic]
    fn zero_queues_rejected() {
        let _ = CapacityScheduler::new(0);
    }
}

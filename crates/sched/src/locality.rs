//! Task locality levels and classification.

use crate::LocationLookup;
use dare_dfs::BlockId;
use dare_net::{NodeId, Topology};

/// How close a map task runs to its input block. Ordering matters:
/// `NodeLocal < RackLocal < Remote` — smaller is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// The block has a replica on the task's node (disk read).
    NodeLocal,
    /// A replica exists in the task's rack (one-switch fetch).
    RackLocal,
    /// All replicas are off-rack (cross-fabric fetch).
    Remote,
}

impl Locality {
    /// Label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Locality::NodeLocal => "node-local",
            Locality::RackLocal => "rack-local",
            Locality::Remote => "remote",
        }
    }
}

/// Classify how local `block` would be if executed on `node`.
pub fn classify(
    block: BlockId,
    node: NodeId,
    lookup: &dyn LocationLookup,
    topo: &Topology,
) -> Locality {
    let locs = lookup.locations(block);
    if locs.contains(&node) {
        return Locality::NodeLocal;
    }
    if locs.iter().any(|&l| topo.same_rack(l, node)) {
        return Locality::RackLocal;
    }
    Locality::Remote
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_prefers_closer() {
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::Remote);
    }

    #[test]
    fn classify_levels() {
        // racks: node0/node1 in rack0, node2/node3 in rack1
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        let lookup =
            crate::TableLookup::from_pairs(&[(0, vec![0]), (1, vec![1]), (2, vec![3])]);
        assert_eq!(
            classify(BlockId(0), NodeId(0), &lookup, &topo),
            Locality::NodeLocal
        );
        assert_eq!(
            classify(BlockId(1), NodeId(0), &lookup, &topo),
            Locality::RackLocal
        );
        assert_eq!(
            classify(BlockId(2), NodeId(0), &lookup, &topo),
            Locality::Remote
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Locality::NodeLocal.label(), "node-local");
        assert_eq!(Locality::RackLocal.label(), "rack-local");
        assert_eq!(Locality::Remote.label(), "remote");
    }
}

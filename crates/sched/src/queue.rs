//! The shared job queue both schedulers operate on, with an **incremental
//! locality index**.
//!
//! The MapReduce engine owns job lifecycle (arrival, task completion, job
//! teardown); schedulers only *select* pending tasks. Keeping the pending
//! bookkeeping here lets the schedulers share it and keeps the engine
//! agnostic of scheduling policy.
//!
//! # The locality index
//!
//! The naive way to answer "best pending task of job J for node N" is to
//! scan J's pending vector and [`classify`](crate::locality::classify)
//! every task — O(tasks × replicas) per slot offer, the dominant cost of
//! large simulations. The queue instead maintains, per job, an inverted
//! index from node (and rack) to the pending tasks with a replica there,
//! ordered by pending position:
//!
//! * `by_node[n]` — `(position, task)` pairs for tasks with a replica on
//!   node `n`; the set minimum is the node-local pick.
//! * `by_rack[r]` — same for tasks with any replica in rack `r`; consulted
//!   only when `by_node` missed, so its minimum is the rack-local pick.
//! * neither hit → every pending task is remote → position 0 is the pick.
//!
//! That reproduces the scan's selection *bit-exactly*: the scan keeps the
//! first index of the best locality class (strict-improvement replacement,
//! early break on node-local), i.e. the minimum position within the best
//! class — precisely the set minima above. `tests/differential_oracle.rs`
//! enforces the equivalence against the retained scan implementation in
//! [`crate::oracle`] under replication churn on both schedulers.
//!
//! The index is maintained incrementally on every mutation (task taken:
//! `swap_remove` moves one task, so two tasks' entries are touched; task
//! requeued; replica promoted/evicted via [`JobQueue::note_replica_added`]
//! / [`JobQueue::note_replica_removed`]) and rebuilt wholesale only on
//! rare topology-wide events (node failure) via
//! [`JobQueue::rebuild_index`]. Queries and updates are allocation-free.
//!
//! The queue also keeps the Fair scheduler's **deficit order** — jobs
//! sorted by (running maps, arrival, id) — as a `BTreeSet` updated on the
//! same mutations, replacing a full sort per slot offer. The key is unique
//! per job, so set iteration order equals the stable sort it replaced.

use crate::locality::Locality;
use crate::LocationLookup;
use dare_dfs::BlockId;
use dare_net::{NodeId, Topology};
use dare_simcore::SimTime;
use dare_simcore::FxHashMap;
use std::collections::BTreeSet;

/// Identifier of a job (dense, in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Index into per-job vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a map task within its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// One not-yet-scheduled map task.
#[derive(Debug, Clone, Copy)]
pub struct PendingTask {
    /// Task index within the job.
    pub task: TaskId,
    /// Input block the task reads.
    pub block: BlockId,
}

/// The outcome of a successful slot offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Job the task belongs to.
    pub job: JobId,
    /// Task within the job.
    pub task: TaskId,
    /// Input block.
    pub block: BlockId,
    /// Locality achieved by this placement.
    pub locality: Locality,
}

/// Sentinel pending position for tasks that are not pending.
const NO_POS: u32 = u32::MAX;

/// Per-job inverted locality index (see module docs).
#[derive(Debug, Clone, Default)]
struct LocalityIndex {
    /// Task id → current position in the pending vector (`NO_POS` if the
    /// task is not pending).
    pos: Vec<u32>,
    /// Task id → replica nodes currently indexed for it.
    nodes: Vec<Vec<NodeId>>,
    /// Task id → distinct racks of those nodes.
    racks: Vec<Vec<u32>>,
    /// Node → (pending position, task) pairs with a replica there.
    by_node: FxHashMap<u32, BTreeSet<(u32, u32)>>,
    /// Rack → (pending position, task) pairs with a replica in the rack.
    by_rack: FxHashMap<u32, BTreeSet<(u32, u32)>>,
}

impl LocalityIndex {
    fn ensure(&mut self, task: u32) {
        let need = task as usize + 1;
        if self.pos.len() < need {
            self.pos.resize(need, NO_POS);
            self.nodes.resize(need, Vec::new());
            self.racks.resize(need, Vec::new());
        }
    }

    /// Index a freshly pending task at `pos` with replica set `locs`.
    fn index_task(&mut self, task: u32, pos: u32, locs: &[NodeId], topo: &Topology) {
        self.ensure(task);
        debug_assert_eq!(self.pos[task as usize], NO_POS, "task already indexed");
        self.pos[task as usize] = pos;
        for &n in locs {
            if self.nodes[task as usize].contains(&n) {
                continue; // defensive: location lists are unique by contract
            }
            self.nodes[task as usize].push(n);
            self.by_node.entry(n.0).or_default().insert((pos, task));
            let r = topo.rack_of(n).0;
            if !self.racks[task as usize].contains(&r) {
                self.racks[task as usize].push(r);
                self.by_rack.entry(r).or_default().insert((pos, task));
            }
        }
    }

    /// Remove every index entry of `task` (it left the pending set).
    fn unindex_task(&mut self, task: u32) {
        self.ensure(task);
        let pos = self.pos[task as usize];
        debug_assert_ne!(pos, NO_POS, "task not indexed");
        for n in self.nodes[task as usize].drain(..) {
            if let Some(set) = self.by_node.get_mut(&n.0) {
                set.remove(&(pos, task));
            }
        }
        for r in self.racks[task as usize].drain(..) {
            if let Some(set) = self.by_rack.get_mut(&r) {
                set.remove(&(pos, task));
            }
        }
        self.pos[task as usize] = NO_POS;
    }

    /// The task moved inside the pending vector (`swap_remove` back-fill).
    fn set_pos(&mut self, task: u32, new_pos: u32) {
        let old = self.pos[task as usize];
        debug_assert_ne!(old, NO_POS);
        if old == new_pos {
            return;
        }
        for &n in &self.nodes[task as usize] {
            let set = self.by_node.get_mut(&n.0).expect("indexed node entry");
            set.remove(&(old, task));
            set.insert((new_pos, task));
        }
        for &r in &self.racks[task as usize] {
            let set = self.by_rack.get_mut(&r).expect("indexed rack entry");
            set.remove(&(old, task));
            set.insert((new_pos, task));
        }
        self.pos[task as usize] = new_pos;
    }

    /// A new replica of the task's block became visible on `node`.
    fn add_replica(&mut self, task: u32, node: NodeId, topo: &Topology) {
        self.ensure(task);
        let pos = self.pos[task as usize];
        if pos == NO_POS || self.nodes[task as usize].contains(&node) {
            return;
        }
        self.nodes[task as usize].push(node);
        self.by_node.entry(node.0).or_default().insert((pos, task));
        let r = topo.rack_of(node).0;
        if !self.racks[task as usize].contains(&r) {
            self.racks[task as usize].push(r);
            self.by_rack.entry(r).or_default().insert((pos, task));
        }
    }

    /// A replica of the task's block stopped being visible on `node`.
    fn remove_replica(&mut self, task: u32, node: NodeId, topo: &Topology) {
        self.ensure(task);
        let pos = self.pos[task as usize];
        if pos == NO_POS || !self.nodes[task as usize].contains(&node) {
            return;
        }
        self.nodes[task as usize].retain(|&n| n != node);
        if let Some(set) = self.by_node.get_mut(&node.0) {
            set.remove(&(pos, task));
        }
        let r = topo.rack_of(node).0;
        let rack_still_covered = self.nodes[task as usize]
            .iter()
            .any(|&n| topo.rack_of(n).0 == r);
        if !rack_still_covered {
            self.racks[task as usize].retain(|&x| x != r);
            if let Some(set) = self.by_rack.get_mut(&r) {
                set.remove(&(pos, task));
            }
        }
    }
}

/// Scheduler-visible state of one active job.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// Job identifier.
    pub id: JobId,
    /// Submission time (FIFO order, GMTT baseline).
    pub arrival: SimTime,
    /// Unscheduled map tasks. Private: every mutation must go through the
    /// queue so the locality index and deficit order stay consistent.
    pending: Vec<PendingTask>,
    /// Currently running map tasks (private for the same reason).
    running_maps: u32,
    /// Delay-scheduling state: consecutive scheduling opportunities this
    /// job declined for lack of a node-local task. Owned by the Fair
    /// scheduler; does not feed the index.
    pub skip_count: u32,
    index: LocalityIndex,
}

impl JobEntry {
    /// Unscheduled map tasks, in pending order.
    pub fn pending(&self) -> &[PendingTask] {
        &self.pending
    }

    /// Currently running map tasks.
    pub fn running_maps(&self) -> u32 {
        self.running_maps
    }

    /// True when every map task has been handed out.
    pub fn maps_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Queue-depth snapshot for telemetry sampling (see [`JobQueue::depth`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueDepth {
    /// Jobs with unfinished maps.
    pub jobs: usize,
    /// Unscheduled map tasks across jobs.
    pub pending_tasks: usize,
    /// Map attempts currently handed out to slots.
    pub running_maps: usize,
}

/// Active jobs in arrival order, plus the locality index and deficit order.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: Vec<JobEntry>,
    /// Job id → position in `jobs` (kept dense on retire).
    by_id: FxHashMap<u32, usize>,
    /// Fair-scheduler deficit order: (running maps, arrival, id), unique
    /// per job, covering *all* active jobs (drained jobs are filtered at
    /// iteration time).
    deficit: BTreeSet<(u32, SimTime, JobId)>,
    /// Block → pending (job, task) pairs reading it; routes replica
    /// visibility changes to the per-job indexes.
    block_watchers: FxHashMap<u64, Vec<(JobId, TaskId)>>,
}

impl JobQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a job with its map tasks, indexing them under the block
    /// locations `lookup` reports *now* (kept current afterwards via the
    /// `note_replica_*` notifications). Jobs must be added in
    /// non-decreasing arrival order (the engine's event loop guarantees it).
    pub fn add_job(
        &mut self,
        id: JobId,
        arrival: SimTime,
        tasks: Vec<PendingTask>,
        lookup: &dyn LocationLookup,
        topo: &Topology,
    ) {
        if let Some(last) = self.jobs.last() {
            debug_assert!(last.arrival <= arrival, "jobs must arrive in order");
        }
        let mut index = LocalityIndex::default();
        for (pos, t) in tasks.iter().enumerate() {
            index.index_task(t.task.0, pos as u32, lookup.locations(t.block), topo);
            self.block_watchers
                .entry(t.block.0)
                .or_default()
                .push((id, t.task));
        }
        self.by_id.insert(id.0, self.jobs.len());
        self.jobs.push(JobEntry {
            id,
            arrival,
            pending: tasks,
            running_maps: 0,
            skip_count: 0,
            index,
        });
        self.deficit.insert((0, arrival, id));
    }

    /// All active jobs, in arrival order.
    pub fn jobs(&self) -> &[JobEntry] {
        &self.jobs
    }

    /// Mutable access by job id (only `skip_count` is mutable from outside).
    pub fn job_mut(&mut self, id: JobId) -> Option<&mut JobEntry> {
        let &i = self.by_id.get(&id.0)?;
        Some(&mut self.jobs[i])
    }

    /// Shared access by job id.
    pub fn job(&self, id: JobId) -> Option<&JobEntry> {
        let &i = self.by_id.get(&id.0)?;
        Some(&self.jobs[i])
    }

    /// Best pending task of job `id` for a slot on `node`, answered from
    /// the locality index: `(pending position, locality)`, matching the
    /// naive scan bit-exactly (first position within the best class).
    /// `None` iff the job is unknown or has nothing pending.
    pub fn pick_best_for(
        &self,
        id: JobId,
        node: NodeId,
        topo: &Topology,
    ) -> Option<(usize, Locality)> {
        let job = self.job(id)?;
        if job.pending.is_empty() {
            return None;
        }
        if let Some(set) = job.index.by_node.get(&node.0) {
            if let Some(&(pos, _)) = set.first() {
                return Some((pos as usize, Locality::NodeLocal));
            }
        }
        let rack = topo.rack_of(node).0;
        if let Some(set) = job.index.by_rack.get(&rack) {
            if let Some(&(pos, _)) = set.first() {
                return Some((pos as usize, Locality::RackLocal));
            }
        }
        // No replica on the node or in its rack: every pending task is
        // remote, and the scan would settle on the first one.
        Some((0, Locality::Remote))
    }

    /// Fill `out` with active jobs in deficit order (fewest running maps,
    /// then arrival, then id), skipping jobs with nothing pending. The
    /// caller owns `out` as a reusable scratch buffer, so steady-state
    /// offers allocate nothing.
    pub fn deficit_order_into(&self, out: &mut Vec<JobId>) {
        out.clear();
        for &(_, _, id) in &self.deficit {
            let i = self.by_id[&id.0];
            if !self.jobs[i].pending.is_empty() {
                out.push(id);
            }
        }
    }

    /// Take the pending task at `pending_idx` from job `id`, marking it
    /// running. Callers got `pending_idx` from [`Self::pick_best_for`] or
    /// an immutable scan.
    pub fn take_task(&mut self, id: JobId, pending_idx: usize) -> PendingTask {
        let (t, old_running, arrival) = {
            let job = self.job_mut(id).expect("taking task from unknown job");
            let t = job.pending.swap_remove(pending_idx);
            job.index.unindex_task(t.task.0);
            if pending_idx < job.pending.len() {
                // swap_remove moved the former tail into the hole.
                let moved = job.pending[pending_idx];
                job.index.set_pos(moved.task.0, pending_idx as u32);
            }
            let old = job.running_maps;
            job.running_maps += 1;
            (t, old, job.arrival)
        };
        self.deficit.remove(&(old_running, arrival, id));
        self.deficit.insert((old_running + 1, arrival, id));
        self.remove_watcher(t.block, id, t.task);
        t
    }

    /// Return a task to the pending set (task attempt aborted, e.g. its
    /// node failed). The task is appended, matching the naive path, and
    /// indexed under the locations `lookup` reports now.
    pub fn requeue_task(
        &mut self,
        id: JobId,
        task: TaskId,
        block: BlockId,
        lookup: &dyn LocationLookup,
        topo: &Topology,
    ) {
        let (old_running, arrival) = {
            let job = self.job_mut(id).expect("requeue on unknown job");
            let pos = job.pending.len() as u32;
            job.pending.push(PendingTask { task, block });
            job.index
                .index_task(task.0, pos, lookup.locations(block), topo);
            let old = job.running_maps;
            job.running_maps = job.running_maps.saturating_sub(1);
            (old, job.arrival)
        };
        self.deficit.remove(&(old_running, arrival, id));
        self.deficit.insert((old_running.saturating_sub(1), arrival, id));
        self.block_watchers
            .entry(block.0)
            .or_default()
            .push((id, task));
    }

    /// A running map task of `id` finished.
    pub fn on_map_complete(&mut self, id: JobId) {
        let Some(job) = self.job_mut(id) else {
            return;
        };
        debug_assert!(job.running_maps > 0);
        let old = job.running_maps;
        let arrival = job.arrival;
        job.running_maps -= 1;
        self.deficit.remove(&(old, arrival, id));
        self.deficit.insert((old - 1, arrival, id));
    }

    /// Drop a job whose map phase is fully done (no pending, no running).
    /// The engine calls this when the job leaves the map phase; reduces are
    /// tracked by the engine.
    pub fn retire_job(&mut self, id: JobId) {
        let Some(pos) = self.jobs.iter().position(|j| j.id == id) else {
            return;
        };
        let j = self.jobs.remove(pos);
        debug_assert!(j.pending.is_empty() && j.running_maps == 0);
        self.deficit.remove(&(j.running_maps, j.arrival, j.id));
        self.by_id.remove(&id.0);
        for (i, job) in self.jobs.iter().enumerate().skip(pos) {
            self.by_id.insert(job.id.0, i);
        }
        // Robustness for release builds: drop any leftover watchers.
        for t in &j.pending {
            Self::remove_watcher_in(&mut self.block_watchers, t.block, j.id, t.task);
        }
    }

    /// Drop a job *with* unscheduled and running work remaining — the job
    /// failed (a map task exhausted its retry budget under faults). Every
    /// pending task is unwatched; running attempts are the caller's
    /// problem (the engine kills them and ignores their completions).
    /// Unknown ids are a no-op, so the call is idempotent.
    pub fn abandon_job(&mut self, id: JobId) {
        let Some(pos) = self.jobs.iter().position(|j| j.id == id) else {
            return;
        };
        let j = self.jobs.remove(pos);
        self.deficit.remove(&(j.running_maps, j.arrival, j.id));
        self.by_id.remove(&id.0);
        for (i, job) in self.jobs.iter().enumerate().skip(pos) {
            self.by_id.insert(job.id.0, i);
        }
        for t in &j.pending {
            Self::remove_watcher_in(&mut self.block_watchers, t.block, j.id, t.task);
        }
    }

    /// A replica of `block` became scheduler-visible on `node` (dynamic
    /// replica promoted). Updates every pending task reading the block.
    pub fn note_replica_added(&mut self, block: BlockId, node: NodeId, topo: &Topology) {
        let Some(watchers) = self.block_watchers.get(&block.0) else {
            return;
        };
        for &(jid, tid) in watchers {
            if let Some(&i) = self.by_id.get(&jid.0) {
                self.jobs[i].index.add_replica(tid.0, node, topo);
            }
        }
    }

    /// A replica of `block` stopped being visible on `node` (evicted or
    /// its node failed). Updates every pending task reading the block.
    pub fn note_replica_removed(&mut self, block: BlockId, node: NodeId, topo: &Topology) {
        let Some(watchers) = self.block_watchers.get(&block.0) else {
            return;
        };
        for &(jid, tid) in watchers {
            if let Some(&i) = self.by_id.get(&jid.0) {
                self.jobs[i].index.remove_replica(tid.0, node, topo);
            }
        }
    }

    /// Rebuild every job's index from scratch against `lookup`. For rare
    /// bulk location changes (node failure re-replication, balancer pass)
    /// where per-replica notifications would be tedious and error-prone.
    pub fn rebuild_index(&mut self, lookup: &dyn LocationLookup, topo: &Topology) {
        self.block_watchers.clear();
        for job in &mut self.jobs {
            job.index = LocalityIndex::default();
            for (pos, t) in job.pending.iter().enumerate() {
                job.index
                    .index_task(t.task.0, pos as u32, lookup.locations(t.block), topo);
                self.block_watchers
                    .entry(t.block.0)
                    .or_default()
                    .push((job.id, t.task));
            }
        }
    }

    /// True when any job still has unscheduled map tasks.
    pub fn has_pending(&self) -> bool {
        self.jobs.iter().any(|j| !j.pending.is_empty())
    }

    /// Total unscheduled map tasks across jobs.
    pub fn total_pending(&self) -> usize {
        self.jobs.iter().map(|j| j.pending.len()).sum()
    }

    /// Snapshot of the queue's depth for telemetry: active jobs,
    /// unscheduled map tasks, and map attempts the queue believes are
    /// running. One pass over the jobs, no allocation.
    pub fn depth(&self) -> QueueDepth {
        let mut d = QueueDepth {
            jobs: self.jobs.len(),
            pending_tasks: 0,
            running_maps: 0,
        };
        for j in &self.jobs {
            d.pending_tasks += j.pending.len();
            d.running_maps += j.running_maps() as usize;
        }
        d
    }

    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are active.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    fn remove_watcher(&mut self, block: BlockId, id: JobId, task: TaskId) {
        Self::remove_watcher_in(&mut self.block_watchers, block, id, task);
    }

    fn remove_watcher_in(
        watchers: &mut FxHashMap<u64, Vec<(JobId, TaskId)>>,
        block: BlockId,
        id: JobId,
        task: TaskId,
    ) {
        if let Some(ws) = watchers.get_mut(&block.0) {
            if let Some(p) = ws.iter().position(|&(j, t)| j == id && t == task) {
                ws.swap_remove(p);
            }
            if ws.is_empty() {
                watchers.remove(&block.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableLookup;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    fn empty_lookup() -> TableLookup {
        TableLookup::new()
    }

    #[test]
    fn add_take_complete_retire() {
        let topo = Topology::single_rack(4);
        let lk = empty_lookup();
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2]), &lk, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[3]), &lk, &topo);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pending(), 3);
        assert!(q.has_pending());

        let t = q.take_task(JobId(0), 0);
        assert_eq!(t.block, BlockId(1));
        assert_eq!(q.job(JobId(0)).expect("active").running_maps(), 1);
        assert_eq!(q.total_pending(), 2);

        let t2 = q.take_task(JobId(0), 0);
        assert_eq!(t2.block, BlockId(2));
        assert!(q.job(JobId(0)).expect("active").maps_exhausted());

        q.on_map_complete(JobId(0));
        q.on_map_complete(JobId(0));
        q.retire_job(JobId(0));
        assert_eq!(q.len(), 1);
        assert!(q.job(JobId(0)).is_none());
        assert!(q.has_pending(), "job 1 still pending");
    }

    #[test]
    fn depth_tracks_pending_and_running() {
        let topo = Topology::single_rack(4);
        let lk = empty_lookup();
        let mut q = JobQueue::new();
        assert_eq!(q.depth(), QueueDepth::default());
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2]), &lk, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[3]), &lk, &topo);
        q.take_task(JobId(0), 0);
        let d = q.depth();
        assert_eq!(d.jobs, 2);
        assert_eq!(d.pending_tasks, 2);
        assert_eq!(d.running_maps, 1);
    }

    #[test]
    fn retire_unknown_job_is_noop() {
        let mut q = JobQueue::new();
        q.retire_job(JobId(9));
        assert!(q.is_empty());
    }

    #[test]
    fn abandon_job_with_pending_and_running_work() {
        let topo = Topology::single_rack(4);
        let lk = TableLookup::from_pairs(&[(1, vec![0]), (2, vec![1]), (3, vec![2])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2]), &lk, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[3]), &lk, &topo);
        // One attempt of job 0 is running, one task still pending.
        q.take_task(JobId(0), 0);
        assert_eq!(q.total_pending(), 2);

        q.abandon_job(JobId(0));
        assert_eq!(q.len(), 1);
        assert!(q.job(JobId(0)).is_none());
        assert_eq!(q.total_pending(), 1, "only job 1's task remains");
        // by_id remap: job 1 must still be addressable.
        assert_eq!(
            q.pick_best_for(JobId(1), NodeId(2), &topo),
            Some((0, Locality::NodeLocal))
        );
        // Stale watcher entries must not resurface on replica churn.
        q.note_replica_added(BlockId(1), NodeId(3), &topo);
        q.note_replica_removed(BlockId(2), NodeId(1), &topo);
        // Idempotent.
        q.abandon_job(JobId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn jobs_keep_arrival_order() {
        let topo = Topology::single_rack(4);
        let lk = empty_lookup();
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.add_job(
                JobId(i),
                SimTime::from_secs(i as u64),
                tasks(&[i as u64]),
                &lk,
                &topo,
            );
        }
        let order: Vec<u32> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn index_answers_node_and_rack_hits() {
        // rack 0: nodes 0,1 — rack 1: nodes 2,3
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        let lk = TableLookup::from_pairs(&[(10, vec![1]), (11, vec![3])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11]), &lk, &topo);

        // Node 1 holds block 10 -> node-local at pending position 0.
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(1), &topo),
            Some((0, Locality::NodeLocal))
        );
        // Node 0 shares a rack with node 1 -> rack-local, still position 0.
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(0), &topo),
            Some((0, Locality::RackLocal))
        );
        // Node 2: block 11 lives on node 3, same rack -> rack-local pick is
        // position 1 (the first position within the best class).
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(2), &topo),
            Some((1, Locality::RackLocal))
        );
    }

    #[test]
    fn index_follows_swap_remove_moves() {
        let topo = Topology::single_rack(4);
        let lk = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![1]), (12, vec![2])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11, 12]), &lk, &topo);

        // Take position 0 (block 10): block 12 swaps into position 0.
        let t = q.take_task(JobId(0), 0);
        assert_eq!(t.block, BlockId(10));
        assert_eq!(q.job(JobId(0)).expect("job").pending()[0].block, BlockId(12));
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(2), &topo),
            Some((0, Locality::NodeLocal)),
            "moved task found at its new position"
        );
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(1), &topo),
            Some((1, Locality::NodeLocal))
        );
        // The taken task's entries are gone.
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(0), &topo),
            Some((0, Locality::RackLocal)),
            "block 10 no longer pending; node 0 only rack-local now"
        );
    }

    #[test]
    fn replica_churn_updates_index() {
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        let mut lk = TableLookup::from_pairs(&[(10, vec![0])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lk, &topo);

        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(3), &topo),
            Some((0, Locality::Remote))
        );
        // A dynamic replica appears on node 3.
        assert!(lk.add_location(BlockId(10), NodeId(3)));
        q.note_replica_added(BlockId(10), NodeId(3), &topo);
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(3), &topo),
            Some((0, Locality::NodeLocal))
        );
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(2), &topo),
            Some((0, Locality::RackLocal))
        );
        // And is evicted again.
        assert!(lk.remove_location(BlockId(10), NodeId(3)));
        q.note_replica_removed(BlockId(10), NodeId(3), &topo);
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(3), &topo),
            Some((0, Locality::Remote))
        );
    }

    #[test]
    fn removing_one_replica_keeps_rack_entry_when_covered() {
        // Both replicas in rack 0; dropping one must keep the rack hit.
        let topo = Topology::explicit(vec![0, 0, 1], 10);
        let mut lk = TableLookup::from_pairs(&[(10, vec![0, 1])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lk, &topo);

        assert!(lk.remove_location(BlockId(10), NodeId(0)));
        q.note_replica_removed(BlockId(10), NodeId(0), &topo);
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(0), &topo),
            Some((0, Locality::RackLocal)),
            "node 1 still covers rack 0"
        );
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(1), &topo),
            Some((0, Locality::NodeLocal))
        );
    }

    #[test]
    fn requeue_restores_pending_and_index() {
        let topo = Topology::single_rack(3);
        let lk = TableLookup::from_pairs(&[(10, vec![2])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10]), &lk, &topo);
        let t = q.take_task(JobId(0), 0);
        assert!(q.job(JobId(0)).expect("job").maps_exhausted());

        q.requeue_task(JobId(0), t.task, t.block, &lk, &topo);
        let job = q.job(JobId(0)).expect("job");
        assert_eq!(job.pending().len(), 1);
        assert_eq!(job.running_maps(), 0);
        assert_eq!(
            q.pick_best_for(JobId(0), NodeId(2), &topo),
            Some((0, Locality::NodeLocal))
        );
    }

    #[test]
    fn deficit_order_tracks_running_counts() {
        let topo = Topology::single_rack(4);
        let lk = empty_lookup();
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2]), &lk, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[3, 4]), &lk, &topo);

        let mut order = Vec::new();
        q.deficit_order_into(&mut order);
        assert_eq!(order, vec![JobId(0), JobId(1)], "tie broken by arrival");

        // Job 0 launches one task: job 1 is now more underserved.
        q.take_task(JobId(0), 0);
        q.deficit_order_into(&mut order);
        assert_eq!(order, vec![JobId(1), JobId(0)]);

        // It completes: back to arrival order.
        q.on_map_complete(JobId(0));
        q.deficit_order_into(&mut order);
        assert_eq!(order, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn deficit_order_skips_drained_jobs() {
        let topo = Topology::single_rack(4);
        let lk = empty_lookup();
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1]), &lk, &topo);
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[2]), &lk, &topo);
        q.take_task(JobId(0), 0);

        let mut order = Vec::new();
        q.deficit_order_into(&mut order);
        assert_eq!(order, vec![JobId(1)], "drained job filtered out");
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let topo = Topology::explicit(vec![0, 0, 1, 1], 10);
        let mut lk = TableLookup::from_pairs(&[(10, vec![0]), (11, vec![2]), (12, vec![3])]);
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[10, 11, 12]), &lk, &topo);
        q.take_task(JobId(0), 1);
        lk.add_location(BlockId(10), NodeId(3));
        q.note_replica_added(BlockId(10), NodeId(3), &topo);

        // Snapshot incremental answers, rebuild, and compare.
        let before: Vec<_> = (0..4)
            .map(|n| q.pick_best_for(JobId(0), NodeId(n), &topo))
            .collect();
        q.rebuild_index(&lk, &topo);
        let after: Vec<_> = (0..4)
            .map(|n| q.pick_best_for(JobId(0), NodeId(n), &topo))
            .collect();
        assert_eq!(before, after);
    }
}

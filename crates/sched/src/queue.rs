//! The shared job queue both schedulers operate on.
//!
//! The MapReduce engine owns job lifecycle (arrival, task completion, job
//! teardown); schedulers only *select* pending tasks. Keeping the pending
//! bookkeeping here lets the two schedulers share it and keeps the engine
//! agnostic of scheduling policy.

use crate::locality::Locality;
use dare_dfs::BlockId;
use dare_simcore::SimTime;

/// Identifier of a job (dense, in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Index into per-job vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a map task within its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// One not-yet-scheduled map task.
#[derive(Debug, Clone, Copy)]
pub struct PendingTask {
    /// Task index within the job.
    pub task: TaskId,
    /// Input block the task reads.
    pub block: BlockId,
}

/// The outcome of a successful slot offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Job the task belongs to.
    pub job: JobId,
    /// Task within the job.
    pub task: TaskId,
    /// Input block.
    pub block: BlockId,
    /// Locality achieved by this placement.
    pub locality: Locality,
}

/// Scheduler-visible state of one active job.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// Job identifier.
    pub id: JobId,
    /// Submission time (FIFO order, GMTT baseline).
    pub arrival: SimTime,
    /// Unscheduled map tasks.
    pub pending: Vec<PendingTask>,
    /// Currently running map tasks.
    pub running_maps: u32,
    /// Delay-scheduling state: consecutive scheduling opportunities this
    /// job declined for lack of a node-local task.
    pub skip_count: u32,
}

impl JobEntry {
    /// True when every map task has been handed out.
    pub fn maps_exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Active jobs in arrival order.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: Vec<JobEntry>,
}

impl JobQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a job with its map tasks. Jobs must be added in
    /// non-decreasing arrival order (the engine's event loop guarantees it).
    pub fn add_job(&mut self, id: JobId, arrival: SimTime, tasks: Vec<PendingTask>) {
        if let Some(last) = self.jobs.last() {
            debug_assert!(last.arrival <= arrival, "jobs must arrive in order");
        }
        self.jobs.push(JobEntry {
            id,
            arrival,
            pending: tasks,
            running_maps: 0,
            skip_count: 0,
        });
    }

    /// All active jobs, in arrival order.
    pub fn jobs(&self) -> &[JobEntry] {
        &self.jobs
    }

    /// Mutable access by job id (linear scan; active-job counts are small).
    pub fn job_mut(&mut self, id: JobId) -> Option<&mut JobEntry> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    /// Shared access by job id.
    pub fn job(&self, id: JobId) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Take the pending task at `pending_idx` from job `id`, marking it
    /// running. Callers got `pending_idx` from an immutable scan.
    pub fn take_task(&mut self, id: JobId, pending_idx: usize) -> PendingTask {
        let job = self.job_mut(id).expect("taking task from unknown job");
        let t = job.pending.swap_remove(pending_idx);
        job.running_maps += 1;
        t
    }

    /// A running map task of `id` finished.
    pub fn on_map_complete(&mut self, id: JobId) {
        if let Some(job) = self.job_mut(id) {
            debug_assert!(job.running_maps > 0);
            job.running_maps -= 1;
        }
    }

    /// Drop a job whose map phase is fully done (no pending, no running).
    /// The engine calls this when the job leaves the map phase; reduces are
    /// tracked by the engine.
    pub fn retire_job(&mut self, id: JobId) {
        if let Some(pos) = self.jobs.iter().position(|j| j.id == id) {
            let j = &self.jobs[pos];
            debug_assert!(j.pending.is_empty() && j.running_maps == 0);
            self.jobs.remove(pos);
        }
    }

    /// True when any job still has unscheduled map tasks.
    pub fn has_pending(&self) -> bool {
        self.jobs.iter().any(|j| !j.pending.is_empty())
    }

    /// Total unscheduled map tasks across jobs.
    pub fn total_pending(&self) -> usize {
        self.jobs.iter().map(|j| j.pending.len()).sum()
    }

    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are active.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(blocks: &[u64]) -> Vec<PendingTask> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| PendingTask {
                task: TaskId(i as u32),
                block: BlockId(b),
            })
            .collect()
    }

    #[test]
    fn add_take_complete_retire() {
        let mut q = JobQueue::new();
        q.add_job(JobId(0), SimTime::ZERO, tasks(&[1, 2]));
        q.add_job(JobId(1), SimTime::from_secs(1), tasks(&[3]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pending(), 3);
        assert!(q.has_pending());

        let t = q.take_task(JobId(0), 0);
        assert_eq!(t.block, BlockId(1));
        assert_eq!(q.job(JobId(0)).expect("active").running_maps, 1);
        assert_eq!(q.total_pending(), 2);

        let t2 = q.take_task(JobId(0), 0);
        assert_eq!(t2.block, BlockId(2));
        assert!(q.job(JobId(0)).expect("active").maps_exhausted());

        q.on_map_complete(JobId(0));
        q.on_map_complete(JobId(0));
        q.retire_job(JobId(0));
        assert_eq!(q.len(), 1);
        assert!(q.job(JobId(0)).is_none());
        assert!(q.has_pending(), "job 1 still pending");
    }

    #[test]
    fn retire_unknown_job_is_noop() {
        let mut q = JobQueue::new();
        q.retire_job(JobId(9));
        assert!(q.is_empty());
    }

    #[test]
    fn jobs_keep_arrival_order() {
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.add_job(JobId(i), SimTime::from_secs(i as u64), tasks(&[i as u64]));
        }
        let order: Vec<u32> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}

//! # dare-metrics — the paper's evaluation metrics
//!
//! Pure functions from simulation outcomes to the numbers Section V
//! reports:
//!
//! * **data locality** — fraction of map tasks that ran node-local
//!   (Figs. 7a, 8, 9, 10a);
//! * **GMTT** — geometric mean of job turnaround times, Eq. 1 (Figs. 7b,
//!   10b), plus the vanilla-normalized form the figures actually plot;
//! * **slowdown** — turnaround on the loaded cluster divided by the
//!   runtime on a dedicated, 100 %-local cluster (Figs. 7c, 10c);
//! * **popularity-index coefficient of variation** — the replica-placement
//!   uniformity score of Fig. 11;
//! * **blocks created per job** — the replication-cost axis of Figs. 8-9.

#![warn(missing_docs)]

use dare_simcore::stats::{coefficient_of_variation, geometric_mean, quantile};
use dare_simcore::{SimDuration, SimTime};

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// All maps and reduces finished.
    Completed,
    /// A map task exhausted its retry budget (node failures); the job was
    /// abandoned. `completed` records the abandonment time.
    Failed,
}

/// Everything recorded about one finished job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: u32,
    /// How the job ended. Failed jobs are excluded from the turnaround
    /// and locality aggregates and counted in [`RunMetrics::failed_jobs`].
    pub status: JobStatus,
    /// Submission time.
    pub arrival: SimTime,
    /// Completion time (last reduce done).
    pub completed: SimTime,
    /// Total map tasks.
    pub maps: u32,
    /// Map tasks that ran node-local.
    pub node_local: u32,
    /// Map tasks that ran rack-local (not node-local).
    pub rack_local: u32,
    /// Map tasks that read off-rack.
    pub remote: u32,
    /// Analytic runtime on a dedicated cluster with 100 % locality
    /// (the paper's slowdown denominator).
    pub dedicated: SimDuration,
}

impl JobOutcome {
    /// Turnaround time: completion − arrival.
    pub fn turnaround(&self) -> SimDuration {
        self.completed.saturating_since(self.arrival)
    }

    /// Slowdown: turnaround / dedicated runtime (≥ 1 in a well-formed sim).
    pub fn slowdown(&self) -> f64 {
        let d = self.dedicated.as_secs_f64();
        if d <= 0.0 {
            1.0
        } else {
            self.turnaround().as_secs_f64() / d
        }
    }
}

/// Aggregate metrics over one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Jobs completed.
    pub jobs: usize,
    /// Map tasks executed.
    pub maps: u64,
    /// Fraction of map tasks that ran node-local ∈ [0, 1] (task-weighted).
    pub locality: f64,
    /// Mean over jobs of each job's node-local fraction — the paper's
    /// "data locality of jobs" (Fig. 7a): small jobs count as much as
    /// whales, which is exactly why FIFO scores so poorly on small-job
    /// workloads.
    pub job_locality: f64,
    /// Fraction of map tasks at least rack-local.
    pub rack_or_better: f64,
    /// Geometric mean turnaround time, seconds (Eq. 1).
    pub gmtt_secs: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Median job slowdown.
    pub p50_slowdown: f64,
    /// 95th-percentile job slowdown (the straggler tail DARE shortens).
    pub p95_slowdown: f64,
    /// Makespan: last completion, seconds.
    pub makespan_secs: f64,
    /// Jobs that failed (map retry budget exhausted under faults).
    /// Excluded from every other aggregate above.
    pub failed_jobs: usize,
}

/// Failure-handling and recovery counters for one run. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Nodes declared dead after the missed-heartbeat timeout.
    pub nodes_declared_dead: u64,
    /// Nodes that rejoined after a transient outage.
    pub nodes_rejoined: u64,
    /// Blocks re-replicated by the recovery queue.
    pub blocks_re_replicated: u64,
    /// Bytes moved by recovery transfers (contending with map fetches).
    pub recovery_bytes: u64,
    /// Blocks permanently lost (every physical copy destroyed).
    pub blocks_lost: u64,
    /// Map attempts killed by faults and retried.
    pub tasks_retried: u64,
    /// Map tasks that exhausted their retry budget.
    pub tasks_failed: u64,
    /// Jobs abandoned because a task failed permanently.
    pub jobs_failed: u64,
    /// Replicas whose bytes silently rotted (injections that landed on a
    /// resident copy).
    pub replicas_corrupted: u64,
    /// Corrupt replicas detected by a failed read-path checksum.
    pub checksum_failures: u64,
    /// Corrupt replicas detected by the background block scanner.
    pub scrub_detections: u64,
    /// Detected corrupt replicas quarantined (dropped from the location
    /// map and the disk).
    pub replicas_quarantined: u64,
    /// Bytes read by completed background scrub passes.
    pub scrub_bytes: u64,
    /// Blocks permanently lost because corruption destroyed the last
    /// physical copy (disjoint from the crash-path `blocks_lost`).
    pub blocks_lost_corruption: u64,
}

impl FaultStats {
    /// Field-wise difference `self − prev`, saturating at zero. The
    /// telemetry sampler uses this to report per-interval fault activity
    /// from the engine's cumulative counters.
    pub fn delta(&self, prev: &FaultStats) -> FaultStats {
        FaultStats {
            nodes_declared_dead: self
                .nodes_declared_dead
                .saturating_sub(prev.nodes_declared_dead),
            nodes_rejoined: self.nodes_rejoined.saturating_sub(prev.nodes_rejoined),
            blocks_re_replicated: self
                .blocks_re_replicated
                .saturating_sub(prev.blocks_re_replicated),
            recovery_bytes: self.recovery_bytes.saturating_sub(prev.recovery_bytes),
            blocks_lost: self.blocks_lost.saturating_sub(prev.blocks_lost),
            tasks_retried: self.tasks_retried.saturating_sub(prev.tasks_retried),
            tasks_failed: self.tasks_failed.saturating_sub(prev.tasks_failed),
            jobs_failed: self.jobs_failed.saturating_sub(prev.jobs_failed),
            replicas_corrupted: self
                .replicas_corrupted
                .saturating_sub(prev.replicas_corrupted),
            checksum_failures: self
                .checksum_failures
                .saturating_sub(prev.checksum_failures),
            scrub_detections: self.scrub_detections.saturating_sub(prev.scrub_detections),
            replicas_quarantined: self
                .replicas_quarantined
                .saturating_sub(prev.replicas_quarantined),
            scrub_bytes: self.scrub_bytes.saturating_sub(prev.scrub_bytes),
            blocks_lost_corruption: self
                .blocks_lost_corruption
                .saturating_sub(prev.blocks_lost_corruption),
        }
    }
}

/// Reduce a set of job outcomes to run-level metrics.
///
/// Failed jobs count only toward `failed_jobs`; if *every* job failed the
/// turnaround/locality aggregates are all zero.
pub fn summarize(outcomes: &[JobOutcome]) -> RunMetrics {
    assert!(!outcomes.is_empty(), "no jobs completed");
    let failed_jobs = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Failed)
        .count();
    let done: Vec<&JobOutcome> = outcomes
        .iter()
        .filter(|o| o.status == JobStatus::Completed)
        .collect();
    if done.is_empty() {
        return RunMetrics {
            jobs: 0,
            maps: 0,
            locality: 0.0,
            job_locality: 0.0,
            rack_or_better: 0.0,
            gmtt_secs: 0.0,
            mean_slowdown: 0.0,
            p50_slowdown: 0.0,
            p95_slowdown: 0.0,
            makespan_secs: 0.0,
            failed_jobs,
        };
    }
    let maps: u64 = done.iter().map(|o| o.maps as u64).sum();
    let local: u64 = done.iter().map(|o| o.node_local as u64).sum();
    let rack: u64 = done.iter().map(|o| o.rack_local as u64).sum();
    let tts: Vec<f64> = done.iter().map(|o| o.turnaround().as_secs_f64()).collect();
    let slowdowns: Vec<f64> = done.iter().map(|o| o.slowdown()).collect();
    let job_locality = done
        .iter()
        .map(|o| o.node_local as f64 / o.maps.max(1) as f64)
        .sum::<f64>()
        / done.len() as f64;
    RunMetrics {
        jobs: done.len(),
        maps,
        locality: local as f64 / maps.max(1) as f64,
        job_locality,
        rack_or_better: (local + rack) as f64 / maps.max(1) as f64,
        gmtt_secs: geometric_mean(&tts),
        mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
        p50_slowdown: quantile(&slowdowns, 0.5),
        p95_slowdown: quantile(&slowdowns, 0.95),
        makespan_secs: done
            .iter()
            .map(|o| o.completed.as_secs_f64())
            .fold(0.0, f64::max),
        failed_jobs,
    }
}

/// GMTT of `run` normalized by the vanilla baseline (what Figs. 7b and 10b
/// plot: vanilla = 1.0, smaller is better).
pub fn normalized_gmtt(run: &RunMetrics, vanilla: &RunMetrics) -> f64 {
    if vanilla.gmtt_secs <= 0.0 {
        return 1.0;
    }
    run.gmtt_secs / vanilla.gmtt_secs
}

/// Popularity index of one data node:
/// `PI_i = Σ_j blockSize_j × blockPopularity_j` over the blocks `j`
/// resident on node `i` (Section V-A).
pub fn popularity_index(blocks: &[(u64, f64)]) -> f64 {
    blocks
        .iter()
        .map(|&(bytes, pop)| bytes as f64 * pop)
        .sum()
}

/// Coefficient of variation of the per-node popularity indices — Fig. 11's
/// uniformity measure (smaller = more uniform placement).
pub fn popularity_cv(per_node_blocks: &[Vec<(u64, f64)>]) -> f64 {
    let pis: Vec<f64> = per_node_blocks
        .iter()
        .map(|b| popularity_index(b))
        .collect();
    coefficient_of_variation(&pis)
}

/// Average dynamically replicated blocks per job (Figs. 8-9 bottom panels).
pub fn blocks_created_per_job(replicas_created: u64, jobs: usize) -> f64 {
    replicas_created as f64 / jobs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, arr: u64, done: u64, maps: u32, local: u32, ded: u64) -> JobOutcome {
        JobOutcome {
            id,
            status: JobStatus::Completed,
            arrival: SimTime::from_secs(arr),
            completed: SimTime::from_secs(done),
            maps,
            node_local: local,
            rack_local: maps - local,
            remote: 0,
            dedicated: SimDuration::from_secs(ded),
        }
    }

    #[test]
    fn turnaround_and_slowdown() {
        let o = outcome(0, 10, 40, 4, 2, 15);
        assert_eq!(o.turnaround(), SimDuration::from_secs(30));
        assert!((o.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_aggregates() {
        let outs = vec![outcome(0, 0, 10, 4, 4, 10), outcome(1, 0, 40, 4, 0, 10)];
        let m = summarize(&outs);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.maps, 8);
        assert!((m.locality - 0.5).abs() < 1e-12);
        assert!((m.job_locality - 0.5).abs() < 1e-12);
        assert!((m.rack_or_better - 1.0).abs() < 1e-12);
        assert!((m.gmtt_secs - 20.0).abs() < 1e-9, "gm(10,40)=20");
        assert!((m.mean_slowdown - 2.5).abs() < 1e-12);
        assert!(m.p50_slowdown <= m.p95_slowdown);
        assert!((m.p95_slowdown - 3.85).abs() < 1e-9, "p95 {}", m.p95_slowdown);
        assert_eq!(m.makespan_secs, 40.0);
    }

    #[test]
    fn normalization_against_vanilla() {
        let v = summarize(&[outcome(0, 0, 100, 1, 0, 50)]);
        let d = summarize(&[outcome(0, 0, 80, 1, 1, 50)]);
        assert!((normalized_gmtt(&d, &v) - 0.8).abs() < 1e-12);
        assert!((normalized_gmtt(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_index_and_cv() {
        // Two nodes with identical popularity mass: cv = 0.
        let uniform = vec![vec![(100u64, 1.0)], vec![(50, 2.0)]];
        assert!(popularity_cv(&uniform) < 1e-12);
        // One hot node, one cold: cv large.
        let skewed = vec![vec![(100u64, 10.0)], vec![(100, 0.1)]];
        assert!(popularity_cv(&skewed) > 0.9);
        assert_eq!(popularity_index(&[(10, 0.5), (20, 0.25)]), 10.0);
    }

    #[test]
    fn zero_dedicated_slowdown_is_one() {
        let o = JobOutcome {
            dedicated: SimDuration::ZERO,
            ..outcome(0, 0, 5, 1, 1, 1)
        };
        assert_eq!(o.slowdown(), 1.0);
    }

    #[test]
    fn failed_jobs_are_excluded_from_aggregates() {
        let mut failed = outcome(1, 0, 200, 4, 0, 10);
        failed.status = JobStatus::Failed;
        let outs = vec![outcome(0, 0, 10, 4, 4, 10), failed];
        let m = summarize(&outs);
        assert_eq!(m.jobs, 1, "only the completed job counts");
        assert_eq!(m.failed_jobs, 1);
        assert_eq!(m.maps, 4);
        assert!((m.locality - 1.0).abs() < 1e-12);
        assert!((m.gmtt_secs - 10.0).abs() < 1e-9);
        assert_eq!(m.makespan_secs, 10.0, "failed job does not extend makespan");

        let mut f2 = outcome(0, 0, 50, 2, 0, 10);
        f2.status = JobStatus::Failed;
        let all_failed = summarize(&[f2]);
        assert_eq!(all_failed.jobs, 0);
        assert_eq!(all_failed.failed_jobs, 1);
        assert_eq!(all_failed.gmtt_secs, 0.0);
    }

    #[test]
    fn fault_stats_default_is_zero() {
        let s = FaultStats::default();
        assert_eq!(s.nodes_declared_dead + s.nodes_rejoined, 0);
        assert_eq!(s.blocks_re_replicated + s.recovery_bytes + s.blocks_lost, 0);
        assert_eq!(s.tasks_retried + s.tasks_failed + s.jobs_failed, 0);
    }

    #[test]
    fn fault_stats_delta_is_fieldwise_and_saturating() {
        let prev = FaultStats {
            nodes_declared_dead: 1,
            blocks_re_replicated: 3,
            recovery_bytes: 100,
            ..Default::default()
        };
        let now = FaultStats {
            nodes_declared_dead: 2,
            blocks_re_replicated: 7,
            recovery_bytes: 50, // regressed counter saturates to 0
            tasks_retried: 4,
            replicas_corrupted: 3,
            scrub_bytes: 1024,
            ..Default::default()
        };
        let d = now.delta(&prev);
        assert_eq!(d.nodes_declared_dead, 1);
        assert_eq!(d.blocks_re_replicated, 4);
        assert_eq!(d.recovery_bytes, 0);
        assert_eq!(d.tasks_retried, 4);
        assert_eq!(d.replicas_corrupted, 3);
        assert_eq!(d.scrub_bytes, 1024);
        assert_eq!(now.delta(&now), FaultStats::default());
    }

    #[test]
    fn blocks_per_job() {
        assert!((blocks_created_per_job(100, 50) - 2.0).abs() < 1e-12);
        assert_eq!(blocks_created_per_job(5, 0), 5.0);
    }
}
